"""E10 — Proposition 3.7: degenerate H-queries have OBDDs in PTIME.

Regenerates the claim's observable shape: for a degenerate phi, the
single-OBDD lineage of Q_phi on complete instances grows linearly in the
variable order's length (constant width per level, Appendix B.1), and its
probability agrees with the brute-force oracle on small instances.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.degenerate import degenerate_lineage_obdd
from repro.queries.hqueries import HQuery


def degenerate_phi():
    # h_0 ∧ ¬h_1 combined freely with h_3: ignores variable 2.
    v0 = BooleanFunction.variable(0, 4)
    v1 = BooleanFunction.variable(1, 4)
    v3 = BooleanFunction.variable(3, 4)
    return (v0 & ~v1) | v3


def test_prop37_obdd_scaling(benchmark):
    print(banner("E10 / Prop 3.7", "OBDD size scaling for a degenerate query"))
    phi = degenerate_phi()
    assert phi.is_degenerate() and not phi.depends_on(2)
    print(f"{'n':>3} {'order len':>10} {'obdd nodes':>11} {'max width':>10}")
    rows = []
    for n in (1, 2, 3, 4, 6, 8):
        tid = complete_tid(3, n, n)
        manager, root = degenerate_lineage_obdd(phi, tid.instance)
        width = max(manager.width_profile(root).values() or [0])
        rows.append((len(manager.order), manager.size(root), width))
        print(f"{n:>3} {rows[-1][0]:>10} {rows[-1][1]:>11} {width:>10}")
    # Constant-width claim: the max width must not grow with n.
    widths = [w for _, _, w in rows]
    assert max(widths) == widths[-1] or max(widths) <= max(widths[:2]) + 2
    # Linear-size claim with a generous constant.
    for order_len, size, _ in rows:
        assert size <= 16 * order_len + 20
    tid = complete_tid(3, 6, 6)
    benchmark(degenerate_lineage_obdd, phi, tid.instance)


def test_prop37_exactness():
    print(banner("E10 / Prop 3.7", "OBDD probability vs brute force"))
    phi = degenerate_phi()
    tid = complete_tid(3, 1, 2, prob=Fraction(1, 3))
    manager, root = degenerate_lineage_obdd(phi, tid.instance)
    obdd_value = manager.probability(root, tid.probability_map())
    oracle = probability_by_world_enumeration(HQuery(3, phi), tid)
    print(f"|D| = {len(tid)}: OBDD Pr = {obdd_value}, brute force = {oracle}")
    assert obdd_value == oracle

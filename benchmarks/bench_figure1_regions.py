"""E1 — Figure 1: the region picture of the H-queries.

Regenerates Figure 1 numerically: for k = 1..3, every Boolean function on
``V = {0..k}`` is classified into the four regions (degenerate / zero-Euler
/ provably #P-hard / conjectured hard), with the monotone (UCQ) row split
into safe and unsafe.  Also checks footnote 6's closed-form count of
zero-Euler functions against the sweep.
"""

from __future__ import annotations

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.euler import count_zero_euler_functions
from repro.pqe.dichotomy import Region, classify_function


def sweep(k: int) -> dict:
    counts = {region: 0 for region in Region}
    monotone_safe = monotone_unsafe = 0
    zero_euler_total = 0
    for table in range(1 << (1 << (k + 1))):
        phi = BooleanFunction(k + 1, table)
        result = classify_function(phi)
        counts[result.region] += 1
        if result.euler == 0:
            zero_euler_total += 1
        if result.is_ucq:
            if result.safe:
                monotone_safe += 1
            else:
                monotone_unsafe += 1
    return {
        "counts": counts,
        "monotone_safe": monotone_safe,
        "monotone_unsafe": monotone_unsafe,
        "zero_euler_total": zero_euler_total,
    }


def print_table(k: int, data: dict) -> None:
    print(f"\nk = {k}  ({1 << (1 << (k + 1))} H-queries)")
    print(f"{'region':<42}{'count':>12}")
    for region, count in data["counts"].items():
        print(f"{region.value:<42}{count:>12}")
    print(
        f"{'monotone (UCQ) safe / unsafe':<42}"
        f"{data['monotone_safe']:>6} /{data['monotone_unsafe']:>4}"
    )
    formula = count_zero_euler_functions(k)
    print(
        f"{'zero-Euler total (sweep vs footnote 6)':<42}"
        f"{data['zero_euler_total']:>6} vs {formula}"
    )
    assert data["zero_euler_total"] == formula


def test_figure1_regions_k1_k2(benchmark):
    print(banner("E1 / Figure 1", "region counts of the H-queries"))
    for k in (1, 2):
        print_table(k, sweep(k))
    from repro.viz.figure1 import render_figure1

    print()
    print(render_figure1(2))
    result = benchmark(sweep, 2)
    assert sum(result["counts"].values()) == 1 << 8


def test_figure1_regions_k3():
    # k = 3 is the paper's running arity: 65536 functions, printed once
    # (not timed: the sweep is the artefact, not the primitive).
    print(banner("E1 / Figure 1", "region counts for k = 3"))
    print_table(3, sweep(3))

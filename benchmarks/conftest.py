"""Shared helpers for the benchmark harness.

Every bench regenerates one artefact of the paper (a figure, a worked
example, or an in-text experimental claim — see DESIGN.md §4 and
EXPERIMENTS.md) and prints the reproduced rows/series with ``-s``; the
pytest-benchmark fixture times the core computation.
"""

from __future__ import annotations

import pytest


def banner(experiment: str, description: str) -> str:
    line = "=" * 72
    return f"\n{line}\n{experiment}: {description}\n{line}"


@pytest.fixture(autouse=True)
def _spacer(capsys):
    # Keep bench output readable under -s.
    yield

"""E19 — ablations: the design choices behind the compilation pipeline.

DESIGN.md calls out three internal choices; this bench quantifies each:

* **A1 — template strategy**: matching-based negation-free templates
  (Section 7) vs the general ⊥-derivation ¬-∨-templates (Prop. 5.8), on
  functions where both apply — holes, ¬-gates and compiled circuit sizes.
* **A2 — degenerate construction**: the single shared OBDD with apply
  (Prop. 3.7's literal statement) vs the per-pair circuit disjunction used
  inside the pipeline — node/gate counts on the same queries.
* **A3 — lineage representation**: the naive Boolean-combination lineage
  (polynomial to *build*, exponential to weight-count) vs the compiled
  d-D (polynomial for both) — the reason knowledge compilation exists.
"""

from __future__ import annotations

import random
import time
from fractions import Fraction

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import fragment, fragment_via_matching
from repro.db.generator import complete_tid
from repro.matching.perfect_matching import colored_matching
from repro.pqe.degenerate import (
    degenerate_lineage_circuit,
    degenerate_lineage_obdd,
)
from repro.pqe.intensional import _plug_template, compile_lineage
from repro.queries.hqueries import HQuery
from repro.queries.lineage import hquery_lineage_circuit_naive


def test_ablation_template_strategy(benchmark):
    print(banner("E19 / A1", "matching template vs ⊥-derivation template"))
    rng = random.Random(191)
    tid = complete_tid(3, 2, 2)
    print(f"{'#SAT':>5} {'holes m/d':>10} {'¬ m/d':>8} {'gates m/d':>12}")
    pairs = []
    while len(pairs) < 8:
        phi = BooleanFunction.random(4, rng)
        if phi.euler_characteristic() != 0 or phi.is_degenerate():
            continue
        matching = colored_matching(phi)
        if matching is None:
            continue
        matched = fragment_via_matching(phi, matching)
        derived = fragment(phi)
        circuit_m = _plug_template(matched, 3, tid.instance)
        circuit_d = _plug_template(derived, 3, tid.instance)
        gm, gd = matched.template.count_gates(), derived.template.count_gates()
        print(f"{phi.sat_count():>5} {gm['hole']:>4}/{gd['hole']:<5} "
              f"{gm['not']:>3}/{gd['not']:<4} "
              f"{len(circuit_m):>5}/{len(circuit_d):<6}")
        pairs.append((len(circuit_m), len(circuit_d)))
    mean_ratio = sum(d / m for m, d in pairs) / len(pairs)
    print(f"mean size ratio (derivation / matching): {mean_ratio:.2f}x "
          f"-> the matching shortcut is the cheaper route when available")

    phi = BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}, {0, 1, 2}])
    matching = colored_matching(phi)
    benchmark(fragment_via_matching, phi, matching)


def test_ablation_degenerate_construction(benchmark):
    print(banner("E19 / A2", "single OBDD (apply) vs circuit disjunction"))
    v0 = BooleanFunction.variable(0, 4)
    v1 = BooleanFunction.variable(1, 4)
    v3 = BooleanFunction.variable(3, 4)
    phi = (v0 & ~v1) | v3  # ignores variable 2
    print(f"{'n':>3} {'obdd nodes':>11} {'circuit gates':>14}")
    for n in (1, 2, 3, 4):
        tid = complete_tid(3, n, n)
        manager, root = degenerate_lineage_obdd(phi, tid.instance)
        circuit = degenerate_lineage_circuit(phi, tid.instance)
        print(f"{n:>3} {manager.size(root):>11} {len(circuit):>14}")
        # Same probabilities, of course.
        assert manager.probability(
            root, tid.probability_map()
        ) == _circuit_probability(circuit, tid)
    tid = complete_tid(3, 3, 3)
    benchmark(degenerate_lineage_circuit, phi, tid.instance)


def _circuit_probability(circuit, tid):
    from repro.circuits import probability

    return probability(circuit, tid.probability_map())


def test_ablation_naive_vs_compiled_lineage():
    print(banner("E19 / A3", "naive lineage + enumeration WMC vs d-D"))
    query = HQuery(
        3,
        BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}, {0, 1, 2}]),
    )
    print(f"{'n':>3} {'|D|':>5} {'naive gates':>12} {'naive WMC':>12} "
          f"{'d-D gates':>10} {'d-D Pr':>10}")
    for n in (1, 2):
        tid = complete_tid(3, n, n, prob=Fraction(1, 2))
        naive = hquery_lineage_circuit_naive(query, tid.instance)
        start = time.perf_counter()
        naive_value = _wmc_by_enumeration(naive, tid)
        naive_time = time.perf_counter() - start
        compiled = compile_lineage(query, tid.instance)
        start = time.perf_counter()
        dd_value = compiled.probability(tid)
        dd_time = time.perf_counter() - start
        assert naive_value == dd_value
        print(f"{n:>3} {len(tid):>5} {len(naive):>12} "
              f"{naive_time * 1e3:>10.1f}ms {len(compiled.circuit):>10} "
              f"{dd_time * 1e3:>8.1f}ms")
    print("naive WMC is 2^|D| — already at n = 3 (|D| = 33) it is "
          "untouchable, while the d-D pass stays linear in circuit size")


def _wmc_by_enumeration(circuit, tid) -> Fraction:
    from repro.db.tid import valuation_probability

    prob = tid.probability_map()
    tuple_ids = tid.instance.tuple_ids()
    total = Fraction(0)
    for mask in range(1 << len(tuple_ids)):
        present = frozenset(
            tuple_ids[j] for j in range(len(tuple_ids)) if mask >> j & 1
        )
        assignment = {t: t in present for t in tuple_ids}
        if circuit.evaluate(assignment):
            total += valuation_probability(prob, present)
    return total

"""E16 — Section 7: the d-DNNF special case (phi ∼−* ⊥ via matchings).

When the colored subgraph of G_V[phi] has a perfect matching, the template
needs no ¬-gates and the compiled lineage is a d-DNNF.  Regenerates the
comparison: for random zero-Euler functions, how often the matching exists,
and the circuit statistics of the d-DNNF path vs the general ¬-∨ path on
the same query (the general path is forced by passing the ⊥-derivation
template explicitly).
"""

from __future__ import annotations

import random

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import fragment, fragment_via_matching
from repro.db.generator import complete_tid
from repro.matching.perfect_matching import colored_matching
from repro.pqe.intensional import (
    _plug_template,
    compile_lineage_ddnnf,
)
from repro.queries.hqueries import HQuery, phi_9


def test_matching_frequency():
    print(banner("E16 / Section 7", "how often the colored matching exists "
                                    "(zero-Euler functions, 4 variables)"))
    rng = random.Random(716)
    with_pm = without_pm = 0
    monotone_with = monotone_total = 0
    while with_pm + without_pm < 300:
        phi = BooleanFunction.random(4, rng)
        if phi.euler_characteristic() != 0:
            continue
        if colored_matching(phi) is not None:
            with_pm += 1
            if phi.is_monotone():
                monotone_with += 1
        else:
            without_pm += 1
        if phi.is_monotone():
            monotone_total += 1
    print(f"random zero-Euler: {with_pm} with colored PM, "
          f"{without_pm} without "
          f"({100 * with_pm / (with_pm + without_pm):.0f}% matchable)")
    print(f"monotone among them: {monotone_with}/{monotone_total} matchable "
          f"(Conjecture 1 predicts the colored-or-uncolored disjunction)")
    assert with_pm > 0 and without_pm > 0


def test_ddnnf_vs_dd_on_phi9(benchmark):
    print(banner("E16 / Section 7", "d-DNNF vs general ¬-∨ d-D on q_9"))
    tid = complete_tid(3, 3, 3)
    query = HQuery(3, phi_9())
    ddnnf = compile_lineage_ddnnf(query, tid.instance)
    general = _plug_template(fragment(phi_9()), 3, tid.instance)
    matching = colored_matching(phi_9())
    matched_template = fragment_via_matching(phi_9(), matching)
    print(f"matching template: {matched_template.template.count_gates()}")
    print(f"⊥-derivation template: "
          f"{fragment(phi_9()).template.count_gates()}")
    print(f"d-DNNF circuit: {ddnnf.circuit.stats()}")
    print(f"general d-D circuit: {general.stats()}")
    assert ddnnf.is_nnf
    benchmark(compile_lineage_ddnnf, query, tid.instance)

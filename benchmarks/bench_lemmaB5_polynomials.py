"""E17 — Appendix B.2 / Lemma B.5: the three characteristic polynomials.

Regenerates the appendix's computational content: for nondegenerate
monotone functions, the probability polynomial ``P^phi(t)``, its CNF-lattice
expression and its DNF-lattice expression coincide coefficient-by-
coefficient (exact rationals), and a fourth route — Lagrange interpolation
through ``n + 1`` exact PQE evaluations — recovers the same polynomial.
Prints the polynomial for phi_9 and sweeps k = 1..2 exhaustively.
"""

from __future__ import annotations

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.enumeration.monotone import enumerate_nondegenerate_monotone
from repro.lattice.polynomials import (
    cnf_polynomial,
    dnf_polynomial,
    interpolated_polynomial,
    probability_polynomial,
    verify_lemma_b5,
)
from repro.queries.hqueries import phi_9


def sweep(k: int) -> int:
    checked = 0
    for phi in enumerate_nondegenerate_monotone(k + 1):
        if phi.is_bottom() or phi.is_top():
            continue
        assert verify_lemma_b5(phi), phi
        checked += 1
    return checked


def test_lemmaB5_phi9(benchmark):
    print(banner("E17 / Lemma B.5", "characteristic polynomials of phi_9"))
    phi = phi_9()

    def all_four():
        return (
            probability_polynomial(phi),
            cnf_polynomial(phi),
            dnf_polynomial(phi),
            interpolated_polynomial(phi),
        )

    base, cnf, dnf, interp = benchmark(all_four)
    print(f"P^phi9(t)      = {base}")
    print(f"P_CNF(t)       = {cnf}")
    print(f"P_DNF(t)       = {dnf}")
    print(f"interpolated   = {interp}")
    assert base == cnf == dnf == interp
    # Leading coefficient is zero — the polynomial shadow of e(phi_9) = 0.
    assert base.coefficient(4) == 0
    print("t^4 coefficient = 0  (the polynomial shadow of e(phi_9) = 0)")


def test_lemmaB5_exhaustive():
    print(banner("E17 / Lemma B.5", "exhaustive sweeps"))
    for k in (1, 2):
        checked = sweep(k)
        print(f"k = {k}: verified on all {checked} nondegenerate monotone "
              f"functions")
        assert checked > 0


def test_lemmaB5_any_function_polynomial():
    # P^phi is defined for all functions; check the e-coefficient link on
    # non-monotone ones too (the proof's observation, without the lattice
    # side).
    print(banner("E17 / Lemma B.5", "leading coefficient = ±e(phi) beyond "
                                    "monotone functions"))
    import random

    rng = random.Random(17)
    rows = 0
    for _ in range(50):
        phi = BooleanFunction.random(4, rng)
        coefficient = probability_polynomial(phi).coefficient(4)
        # Each model nu contributes (-1)^{n-|nu|} to the t^n coefficient,
        # so the coefficient equals (-1)^n e(phi); here n = 4 is even.
        assert coefficient == phi.euler_characteristic()
        rows += 1
    print(f"checked t^(k+1) coefficient = (-1)^(k+1) e(phi) on {rows} "
          f"random (not necessarily monotone) functions")

"""E15 — the three engines: exact agreement and the tractability gap.

Regenerates the dichotomy's practical shape on q_9: the brute-force oracle
is exponential in |D| while both polynomial engines (extensional lifted
inference; intensional d-D compilation) scale past it, agreeing exactly
(Fractions) wherever the oracle can still run.  The printed series shows
the crossover; the benchmark rounds time each engine on a fixed instance.
"""

from __future__ import annotations

import time
from fractions import Fraction

from conftest import banner

from repro.db.generator import complete_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.intensional import probability as intensional_probability
from repro.queries.hqueries import q9


def test_engines_agree_and_crossover():
    print(banner("E15 / engines", "exact agreement + scaling of the three "
                                  "engines on q_9"))
    print(f"{'n':>2} {'|D|':>5} {'brute force':>13} {'extensional':>13} "
          f"{'intensional':>13} {'agree':>6}")
    for n in (1, 2, 3, 4, 6):
        tid = complete_tid(3, n, n, prob=Fraction(1, 2))
        timings = {}
        values = {}
        if len(tid) <= 18:
            t0 = time.perf_counter()
            values["bf"] = probability_by_world_enumeration(q9(), tid)
            timings["bf"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        values["ext"] = extensional_probability(q9(), tid)
        timings["ext"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        values["int"] = intensional_probability(q9(), tid)
        timings["int"] = time.perf_counter() - t0
        agree = len(set(values.values())) == 1
        bf_cell = (
            f"{timings['bf'] * 1e3:10.1f}ms" if "bf" in timings else
            f"{'2^' + str(len(tid)) + ' skip':>13}"
        )
        print(f"{n:>2} {len(tid):>5} {bf_cell:>13} "
              f"{timings['ext'] * 1e3:10.1f}ms "
              f"{timings['int'] * 1e3:10.1f}ms {str(agree):>6}")
        assert agree


def test_bench_extensional(benchmark):
    tid = complete_tid(3, 5, 5, prob=Fraction(1, 2))
    benchmark(extensional_probability, q9(), tid)


def test_bench_intensional(benchmark):
    tid = complete_tid(3, 5, 5, prob=Fraction(1, 2))
    benchmark(intensional_probability, q9(), tid)


def test_bench_brute_force(benchmark):
    tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    benchmark(probability_by_world_enumeration, q9(), tid)

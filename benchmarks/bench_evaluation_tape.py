"""PR-1 perf bench: compiled evaluation tapes vs. the seed hot path.

The intensional payoff claimed throughout the paper's introduction — once
``Lin(Q_phi, D)`` is a d-D, (re-)evaluation is cheap — is only as real as
the constant factors.  This bench regenerates the before/after picture for
the three hot paths this PR compiled: float probability of a compiled
lineage (tape codegen vs. per-gate loop), batched probability over many
maps (one vectorized sweep vs. sequential passes), and lineage grounding
(index-backed join vs. nested-loop backtracking).

``run_evaluation_bench.py`` (same measurements, standalone) additionally
dumps ``BENCH_evaluation.json`` for trend tracking.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import banner
from run_evaluation_bench import (
    bench_batch,
    bench_exact,
    bench_grounding,
    bench_single_float,
)

from repro.circuits.evaluator import tape_for
from repro.db.generator import complete_tid
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import q9


def test_single_float_probability_speedup(benchmark):
    print(banner(
        "PR-1 / evaluation tape",
        "float probability of a compiled >=1k-gate lineage",
    ))
    result = bench_single_float()
    print(
        f"gates={result['gates']} seed={result['seed_ms']:.3f}ms "
        f"tape={result['tape_ms']:.3f}ms "
        f"(one-time codegen {result['codegen_once_ms']:.1f}ms) "
        f"speedup={result['speedup']:.1f}x drift={result['max_abs_drift']:.2e}"
    )
    assert result["gates"] >= 1000
    assert result["max_abs_drift"] < 1e-9
    assert result["speedup"] >= 10

    tid = complete_tid(3, 8, 8, prob=Fraction(1, 2))
    compiled = compile_lineage(q9(), tid.instance)
    tape = tape_for(compiled.circuit)
    prob = {t: 0.5 for t in tid.instance.tuple_ids()}
    benchmark(tape.evaluate_floats, prob)


def test_batched_probability_speedup():
    print(banner(
        "PR-1 / evaluation tape",
        "256-map batch: one vectorized sweep vs sequential seed passes",
    ))
    result = bench_batch()
    print(
        f"gates={result['gates']} B={result['batch_size']} "
        f"sequential={result['sequential_seed_ms']:.1f}ms "
        f"batch(maps)={result['batch_maps_ms']:.1f}ms "
        f"[{result['speedup_maps']:.1f}x] "
        f"batch(matrix)={result['batch_matrix_ms']:.1f}ms "
        f"[{result['speedup_matrix']:.1f}x] "
        f"drift={result['max_abs_drift']:.2e}"
    )
    assert result["max_abs_drift"] < 1e-9
    assert result["speedup_maps"] >= 10
    assert result["speedup_matrix"] >= 50


def test_exact_probability_stays_identical():
    print(banner(
        "PR-1 / evaluation tape",
        "exact Fraction pass: tape interpreter vs seed loop",
    ))
    result = bench_exact()
    print(
        f"gates={result['gates']} seed={result['seed_ms']:.2f}ms "
        f"tape={result['tape_ms']:.2f}ms speedup={result['speedup']:.2f}x "
        f"bit-identical={result['bit_identical']}"
    )
    assert result["bit_identical"]


def test_indexed_grounding_speedup():
    print(banner(
        "PR-1 / indexed grounding",
        "grounding_sets of h_{3,i} on a >=500-tuple instance",
    ))
    result = bench_grounding()
    print(
        f"tuples={result['tuples']} naive={result['naive_ms']:.1f}ms "
        f"indexed={result['indexed_ms']:.1f}ms "
        f"speedup={result['speedup']:.2f}x "
        f"identical={result['witness_sets_identical']}"
    )
    assert result["tuples"] >= 500
    assert result["witness_sets_identical"]
    assert result["speedup"] > 1.2

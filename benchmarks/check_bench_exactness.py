"""Perf-smoke exactness gate over ``BENCH_evaluation.json``.

The benchmarks are informational (wall-clock ratios flake on shared
runners), but the *exactness* flags they record are correctness claims:
tape results bit-identical to the seed loop, extensional == intensional
Fractions across the conjecture suite, serving bit-for-float equal to
the single-threaded batch path.  This script walks the JSON and fails
(exit 1) if any flag whose name ends in ``_identical`` or starts with
``bit_identical`` — at any nesting depth — is false, so an exactness
regression can never land behind a green-but-ignored bench step.

    PYTHONPATH=src python benchmarks/check_bench_exactness.py \
        [path/to/BENCH_evaluation.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_evaluation.json"

#: Flags that must be *present* (a silently dropped exactness claim is
#: as bad as a false one): the thread/process backend identity and the
#: deterministic-degradation identity, by dotted path.
REQUIRED_FLAGS = (
    "serving.backends_identical",
    "resilience.degraded_identical",
    "lifted.lifted_identical",
    "lifted.h_parity_identical",
    "lifted.serving_backends_identical",
    "replication.hedged_identical",
    "gateway.recovered_identical",
)


def is_exactness_flag(key: str) -> bool:
    return key.endswith("_identical") or key.startswith("bit_identical")


def collect_flags(node, prefix=""):
    """Yield ``(dotted_path, value)`` for every exactness flag in the
    document, at any nesting depth (dicts and lists)."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if is_exactness_flag(str(key)):
                yield path, value
            else:
                yield from collect_flags(value, path)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from collect_flags(value, f"{prefix}[{index}]")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = Path(argv[0]) if argv else DEFAULT_PATH
    if not path.exists():
        print(f"exactness gate: {path} not found", file=sys.stderr)
        return 1
    document = json.loads(path.read_text())
    flags = list(collect_flags(document))
    if not flags:
        print(
            f"exactness gate: no *_identical flags found in {path}",
            file=sys.stderr,
        )
        return 1
    failed = [(flag, value) for flag, value in flags if value is not True]
    present = {flag for flag, _ in flags}
    missing = [flag for flag in REQUIRED_FLAGS if flag not in present]
    for flag, value in sorted(flags):
        marker = "ok " if value is True else "FAIL"
        print(f"  [{marker}] {flag} = {value}")
    for flag in missing:
        print(f"  [MISS] {flag} (required, not recorded)")
    if missing:
        print(
            f"exactness gate: {len(missing)} required flags missing",
            file=sys.stderr,
        )
        return 1
    if failed:
        print(
            f"exactness gate: {len(failed)} of {len(flags)} flags not true",
            file=sys.stderr,
        )
        return 1
    print(f"exactness gate: all {len(flags)} flags true")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E11 — Proposition 6.1 / Theorem 6.2: equal Euler ⇔ ≃, constructively.

Regenerates the claim as data: (a) an exhaustive check for k = 1 (all 256
pairs of 2-variable... here k=1 means 2 variables) that ``transform``
succeeds exactly on equal-Euler pairs; (b) derivation-length statistics on
random pairs for k = 2, 3; (c) the Theorem 6.2(b) lineage *transfer*
between two equal-Euler queries, with the circuit-size overhead printed.
"""

from __future__ import annotations

import random

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.transformation import transform, verify_steps
from repro.db.generator import complete_tid
from repro.pqe.intensional import compile_lineage, transfer_lineage
from repro.queries.hqueries import HQuery, phi_9


def exhaustive_pairs(nvars: int):
    transformed = skipped = 0
    for ta in range(1 << (1 << nvars)):
        for tb in range(1 << (1 << nvars)):
            a, b = BooleanFunction(nvars, ta), BooleanFunction(nvars, tb)
            if a.euler_characteristic() != b.euler_characteristic():
                skipped += 1
                continue
            assert verify_steps(a, transform(a, b), b)
            transformed += 1
    return transformed, skipped


def test_prop61_exhaustive_2vars(benchmark):
    print(banner("E11 / Prop 6.1", "exhaustive ≃ check on 2 variables"))
    transformed, skipped = benchmark(exhaustive_pairs, 2)
    print(f"pairs transformed: {transformed}; unequal-Euler pairs skipped: "
          f"{skipped}; total: {transformed + skipped} = 16*16")
    assert transformed + skipped == 256


def test_prop61_derivation_lengths():
    print(banner("E11 / Prop 6.1", "derivation lengths on random pairs"))
    rng = random.Random(611)
    for nvars in (3, 4, 5):
        lengths = []
        trials = 0
        while len(lengths) < 30 and trials < 3000:
            trials += 1
            a = BooleanFunction.random(nvars, rng)
            b = BooleanFunction.random(nvars, rng)
            if a.euler_characteristic() != b.euler_characteristic():
                continue
            steps = transform(a, b)
            assert verify_steps(a, steps, b)
            lengths.append(len(steps))
        print(f"nvars={nvars}: {len(lengths)} pairs; "
              f"steps min/mean/max = {min(lengths)}/"
              f"{sum(lengths) / len(lengths):.1f}/{max(lengths)} "
              f"(table size {1 << nvars})")
        assert max(lengths) <= (1 << nvars) * (1 << nvars)


def test_theorem62b_lineage_transfer(benchmark):
    print(banner("E11 / Thm 6.2(b)", "d-D transfer between equal-Euler "
                                     "queries"))
    rng = random.Random(622)
    phi_b = None
    while phi_b is None or phi_b.euler_characteristic() != 0:
        phi_b = BooleanFunction.random(4, rng)
    source, target = HQuery(3, phi_9()), HQuery(3, phi_b)
    tid = complete_tid(3, 2, 2)
    compiled = compile_lineage(source, tid.instance)

    def do_transfer():
        return transfer_lineage(compiled, target, tid.instance)

    transferred = benchmark(do_transfer)
    print(f"source circuit: {len(compiled.circuit)} gates; transferred: "
          f"{len(transferred.circuit)} gates "
          f"(+{len(transferred.circuit) - len(compiled.circuit)})")
    direct = compile_lineage(target, tid.instance)
    print(f"direct compilation of the target: {len(direct.circuit)} gates")
    assert transferred.probability(tid) == direct.probability(tid)

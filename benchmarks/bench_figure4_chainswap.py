"""E4 — Figure 4: single steps of the ± transformation along a path
(a chainswap).

Figure 4 shows a 5-node path whose endpoint color travels to the other end
through four ± moves.  We reproduce it literally: a path nu_0 .. nu_4 with
nu_0 colored, everything else uncolored, chainswapped so that only nu_4
ends up colored — printing the coloring after every move — and then time
chainswaps on longer paths.
"""

from __future__ import annotations

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.transformation import apply_steps, chainswap_steps
from repro.core.valuations import hypercube_path


def figure4_path():
    # A simple 5-node path in G_V for V = {0..4}: flip variables one at a
    # time (both endpoints even size, interior length 3: a chainswap).
    return hypercube_path(0b00000, 0b01111)


def run_chainswap():
    path = figure4_path()
    phi = BooleanFunction.from_satisfying(5, [path[0]])
    steps = chainswap_steps(phi, path)
    return phi, steps


def test_figure4_chainswap(benchmark):
    print(banner("E4 / Figure 4", "a chainswap as four ± moves"))
    phi, steps = benchmark(run_chainswap)
    path = figure4_path()
    print("path:", " - ".join(f"{m:05b}" for m in path))
    current = phi
    print(f"start : colored = {sorted(current.satisfying_masks())}")
    for step in steps:
        current = apply_steps(current, [step])
        print(f"{str(step):<16}: colored = {sorted(current.satisfying_masks())}")
    assert len(steps) == 4  # two additions, two removals
    assert set(current.satisfying_masks()) == {path[-1]}


def test_chainswap_scaling(benchmark):
    # Chainswaps across the longest even-to-even path of a 10-variable
    # hypercube (both endpoints even size, so the interior is odd).
    path = hypercube_path(0, (1 << 10) - 1)
    phi = BooleanFunction.from_satisfying(10, [path[0]])

    def swap():
        return chainswap_steps(phi, path)

    steps = benchmark(swap)
    assert set(apply_steps(phi, steps).satisfying_masks()) == {path[-1]}

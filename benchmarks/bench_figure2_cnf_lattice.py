"""E2 — Figure 2: the Hasse diagram of the CNF lattice of phi_9.

Regenerates the lattice, prints it with the Möbius annotations the figure
carries, and asserts every value (1 at the top; -1 on the four atoms; +1 on
the three middle elements; 0 at the bottom — which is exactly why q_9 is
safe).  The benchmark times the lattice + Möbius computation.
"""

from __future__ import annotations

from conftest import banner

from repro.lattice.cnf_lattice import cnf_lattice, dnf_lattice
from repro.queries.hqueries import phi_9
from repro.viz.hasse import render_hasse

EXPECTED = {
    (): 1,
    (0, 3): -1,
    (1, 3): -1,
    (2, 3): -1,
    (0, 1, 2): -1,
    (0, 1, 3): 1,
    (0, 2, 3): 1,
    (1, 2, 3): 1,
    (0, 1, 2, 3): 0,
}


def build_and_annotate():
    lattice = cnf_lattice(phi_9())
    return lattice, lattice.mobius_column()


def test_figure2_hasse(benchmark):
    print(banner("E2 / Figure 2", "CNF lattice of phi_9 with Möbius values"))
    lattice, column = benchmark(build_and_annotate)
    print(render_hasse(lattice))
    got = {tuple(sorted(e)): value for e, value in column.items()}
    assert got == EXPECTED
    assert lattice.mobius_bottom_top() == 0


def test_figure2_dnf_side():
    # Lemma 3.8's (-1)^k companion on the DNF lattice.
    print(banner("E2 / Figure 2 (DNF)", "DNF-lattice Möbius value of phi_9"))
    lattice = dnf_lattice(phi_9())
    value = lattice.mobius_bottom_top()
    print(f"mu_DNF(0-hat, 1-hat) = {value}   (Lemma 3.8: e = (-1)^3 * mu_DNF)")
    assert value == 0

"""E5 — Figure 5: the function phi_noPM (k = 4, non-monotone).

The figure's role: witness that Conjecture 1 must be restricted to
monotone functions, and that the +/- transformation genuinely needs both
move directions.  The exact node colors are not recoverable from the text
(see DESIGN.md §3), so we search for a function with every property the
paper states — ``e = 0``; colored node {3,4} isolated among colored nodes;
uncolored node {0,3,4} isolated among uncolored ones; no perfect matching
on either side — print it, and verify all of them.
"""

from __future__ import annotations

from conftest import banner

from repro.core.zoo import find_phi_no_pm, is_phi_no_pm_witness
from repro.matching.graph import ColoredGraph
from repro.matching.perfect_matching import has_perfect_matching
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import HQuery
from repro.db.generator import complete_tid
from repro.viz.colored_graph import render_colored_graph, render_matching_facts


def test_figure5_witness(benchmark):
    print(banner("E5 / Figure 5", "phi_noPM: e=0 but no perfect matching"))
    phi = benchmark(find_phi_no_pm)
    print(render_colored_graph(phi))
    print(render_matching_facts(phi))
    assert is_phi_no_pm_witness(phi)
    colored = ColoredGraph(phi)
    assert not has_perfect_matching(colored.colored_subgraph())
    assert not has_perfect_matching(colored.uncolored_subgraph())
    assert not phi.is_monotone()


def test_figure5_still_compiles_to_dd():
    # The point of Section 5: even without any perfect matching, e = 0
    # makes Q_phi compilable into a d-D (using both + and - moves).
    print(banner("E5 / Figure 5 (follow-up)",
                 "phi_noPM compiles to a d-D despite the missing matchings"))
    phi = find_phi_no_pm()
    tid = complete_tid(4, 1, 1)
    compiled = compile_lineage(HQuery(4, phi), tid.instance)
    gates = compiled.circuit.stats()
    print(f"circuit gates: {gates}")
    print(f"uses negation gates: {gates['NOT'] > 0}, NNF: {compiled.is_nnf}")
    assert gates["TOTAL"] > 0

"""E18 — the read-once / hierarchical baseline region.

The paper's introduction maps the knowledge-compilation landscape the
H-queries sit in: hierarchical(-read-once) queries admit read-once
lineages; the H-queries' building blocks ``h_{k,i}`` are themselves
hierarchical and self-join-free.  This bench regenerates that baseline:

* every ``h_{k,i}`` passes the hierarchy test and compiles to a read-once
  lineage whose probability matches the safe plan exactly;
* the classical non-hierarchical query ``R(x), S(x,y), T(y)`` is refused;
* the read-once plan scales linearly while the naive DNF lineage needs
  exponential-time weighted model counting (printed as the series shape).
"""

from __future__ import annotations

import time
from fractions import Fraction

from conftest import banner

from repro.circuits import probability as circuit_probability
from repro.db.generator import complete_tid
from repro.pqe.safe_plans import disjunction_probability
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.hierarchical import (
    is_hierarchical,
    is_read_once_circuit,
    read_once_lineage,
    safe_plan_probability,
)
from repro.queries.hqueries import h_query


def test_h_blocks_are_hierarchical(benchmark):
    print(banner("E18 / read-once region", "the h_{k,i} building blocks"))
    k = 3
    tid = complete_tid(k, 3, 3, prob=Fraction(1, 2))
    for i in range(k + 1):
        query = h_query(k, i)
        assert is_hierarchical(query)
        circuit = read_once_lineage(query, tid)
        assert is_read_once_circuit(circuit)
        plan = safe_plan_probability(query, tid)
        compiled = circuit_probability(circuit, tid.probability_map())
        lifted = disjunction_probability([i], k, tid)
        print(f"h_{{3,{i}}}: hierarchical, read-once lineage "
              f"({len(circuit)} gates), Pr = {float(plan):.6f}, "
              f"three routes agree: {plan == compiled == lifted}")
        assert plan == compiled == lifted
    benchmark(read_once_lineage, h_query(k, 1), tid)


def test_non_hierarchical_refused():
    print(banner("E18 / read-once region", "the hard query R,S,T refused"))
    query = ConjunctiveQuery(
        (Atom("R", ("x",)), Atom("S1", ("x", "y")), Atom("T", ("y",)))
    )
    assert not is_hierarchical(query)
    tid = complete_tid(1, 2, 2)
    import pytest

    from repro.queries.hierarchical import NotHierarchicalError

    with pytest.raises(NotHierarchicalError):
        safe_plan_probability(query, tid)
    print("R(x), S1(x,y), T(y): not hierarchical -> safe plan refused "
          "(the #P-hard side of the self-join-free CQ dichotomy)")


def test_readonce_scaling():
    print(banner("E18 / read-once region", "read-once plan scaling"))
    k = 3
    query = h_query(k, 1)
    print(f"{'n':>3} {'|D|':>6} {'gates':>7} {'time':>10}")
    for n in (2, 4, 8, 12):
        tid = complete_tid(k, n, n, prob=Fraction(1, 2))
        start = time.perf_counter()
        circuit = read_once_lineage(query, tid)
        value = circuit_probability(circuit, tid.probability_map())
        elapsed = time.perf_counter() - start
        print(f"{n:>3} {len(tid):>6} {len(circuit):>7} "
              f"{elapsed * 1e3:>8.1f}ms")
        assert 0 <= value <= 1

"""E8 — Lemma 3.8: e(phi) = mu_CNF(0̂,1̂) = (-1)^k mu_DNF(0̂,1̂).

Sweeps *all* nondegenerate non-constant monotone Boolean functions for
k = 1..3 and tabulates the three quantities; the identity must hold on
every row.  The benchmark times one full k = 2 sweep.
"""

from __future__ import annotations

from conftest import banner

from repro.core.euler import euler_characteristic
from repro.enumeration.monotone import enumerate_nondegenerate_monotone
from repro.lattice.cnf_lattice import mobius_cnf_value, mobius_dnf_value


def sweep(k: int):
    sign = -1 if k & 1 else 1
    rows = []
    for phi in enumerate_nondegenerate_monotone(k + 1):
        if phi.is_bottom() or phi.is_top():
            continue
        euler = euler_characteristic(phi)
        mobius_cnf = mobius_cnf_value(phi)
        mobius_dnf = mobius_dnf_value(phi)
        assert euler == mobius_cnf == sign * mobius_dnf, phi
        rows.append((euler, mobius_cnf, mobius_dnf))
    return rows


def test_lemma38_sweep_k1_k2(benchmark):
    print(banner("E8 / Lemma 3.8", "Euler = Möbius over monotone functions"))
    for k in (1, 2):
        rows = sweep(k)
        histogram: dict[int, int] = {}
        for euler, _, _ in rows:
            histogram[euler] = histogram.get(euler, 0) + 1
        print(f"k={k}: {len(rows)} nondegenerate monotone functions; "
              f"e-histogram: {dict(sorted(histogram.items()))}")
    rows = benchmark(sweep, 2)
    assert rows


def test_lemma38_sweep_k3():
    print(banner("E8 / Lemma 3.8", "full k = 3 sweep (168-function family "
                                   "lives at k = 3 on 4 variables)"))
    rows = sweep(3)
    histogram: dict[int, int] = {}
    for euler, _, _ in rows:
        histogram[euler] = histogram.get(euler, 0) + 1
    print(f"k=3: {len(rows)} nondegenerate monotone functions; "
          f"e-histogram: {dict(sorted(histogram.items()))}")
    # Safe queries are exactly the e = 0 rows (Corollary 3.9).
    print(f"safe (e=0): {histogram.get(0, 0)}; "
          f"#P-hard: {len(rows) - histogram.get(0, 0)}")
    assert rows

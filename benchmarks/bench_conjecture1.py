"""E13 — Section 7 / [26]: the Conjecture-1 verification experiment.

The paper reports checking Conjecture 1 (monotone, e = 0 ⇒ the colored or
the uncolored induced subgraph has a perfect matching) with a SAT solver
for all monotone functions with k ≤ 5 (~20M non-isomorphic functions).
Our offline substitute (DESIGN.md §3): Hopcroft–Karp matchings,
exhaustively over the Dedekind enumeration for k ≤ 4 and sampled for
k = 5.  The conjecture must hold on every function checked.
"""

from __future__ import annotations

from conftest import banner

from repro.matching.conjecture import verify_exhaustive, verify_sampled


def test_conjecture1_exhaustive_small_k(benchmark):
    print(banner("E13 / Conjecture 1", "exhaustive check, k = 1..3"))
    print(f"{'k':>2} {'monotone':>9} {'e=0':>6} {'colored PM':>11} "
          f"{'uncolored PM':>13} {'both':>6} {'holds':>6}")
    for k in (1, 2, 3):
        report = verify_exhaustive(k)
        print(f"{k:>2} {report.checked:>9} {report.zero_euler:>6} "
              f"{report.colored_pm:>11} {report.uncolored_pm:>13} "
              f"{report.both_pm:>6} {str(report.holds):>6}")
        assert report.holds
    benchmark(verify_exhaustive, 3)


def test_conjecture1_exhaustive_k4():
    print(banner("E13 / Conjecture 1", "exhaustive check, k = 4 "
                                       "(all M(5) = 7581 monotone functions)"))
    report = verify_exhaustive(4)
    print(f"checked {report.checked}, zero-Euler {report.zero_euler}, "
          f"colored-PM {report.colored_pm}, uncolored-PM "
          f"{report.uncolored_pm}, both {report.both_pm}, "
          f"holds: {report.holds}")
    assert report.holds
    assert report.checked == 7581


def test_conjecture1_sampled_k5():
    print(banner("E13 / Conjecture 1", "sampled check, k = 5 "
                                       "(scaled-down substitute for the "
                                       "paper's 20M-function SAT sweep)"))
    report = verify_sampled(5, samples=300, seed=13)
    print(f"sampled {report.checked} monotone functions, zero-Euler "
          f"{report.zero_euler}, holds: {report.holds}")
    assert report.holds

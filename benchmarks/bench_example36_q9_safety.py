"""E7 — Examples 3.3 / 3.6: the query q_9 and its safety.

Regenerates the worked example: q_9's Boolean function, its safety verdict
through both criteria (Möbius value of the CNF lattice; Euler
characteristic), and its exact probability on growing complete instances
via the extensional engine (timed).
"""

from __future__ import annotations

from fractions import Fraction

from conftest import banner

from repro.core.euler import euler_characteristic
from repro.db.generator import complete_tid
from repro.lattice.cnf_lattice import mobius_cnf_value
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.extensional import is_safe, probability
from repro.queries.hqueries import phi_9, q9


def test_example36_safety_criteria(benchmark):
    print(banner("E7 / Example 3.6", "q_9 safety: Möbius vs Euler"))
    phi = phi_9()

    def both_criteria():
        return mobius_cnf_value(phi), euler_characteristic(phi)

    mobius, euler = benchmark(both_criteria)
    print(f"mu_CNF(0-hat,1-hat) = {mobius};  e(phi_9) = {euler}")
    print(f"=> q_9 safe (PTIME): {is_safe(q9())}")
    assert mobius == euler == 0
    assert is_safe(q9())


def test_q9_extensional_probability(benchmark):
    print(banner("E7 / Example 3.6", "Pr(q_9) on complete instances"))
    small = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    exact = probability(q9(), small)
    oracle = probability_by_world_enumeration(q9(), small)
    print(f"n=2: Pr = {exact} (= {float(exact):.6f}), brute force agrees: "
          f"{exact == oracle}")
    assert exact == oracle
    for n in (4, 6, 8):
        tid = complete_tid(3, n, n, prob=Fraction(1, 2))
        value = probability(q9(), tid)
        print(f"n={n}: |D|={len(tid):4d}  Pr = {float(value):.9f}")
    big = complete_tid(3, 8, 8, prob=Fraction(1, 2))
    benchmark(probability, q9(), big)

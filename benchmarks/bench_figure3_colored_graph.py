"""E3 — Figure 3: the colored hypercube graph G_V[phi_9].

Regenerates the 16-node colored graph, prints it by levels, and checks the
structural facts the figure displays: 8 colored nodes, zero Euler
characteristic, and (feeding Example 4.3) a perfect matching of the colored
subgraph.
"""

from __future__ import annotations

from conftest import banner

from repro.matching.graph import ColoredGraph
from repro.matching.perfect_matching import colored_matching
from repro.queries.hqueries import phi_9
from repro.viz.colored_graph import render_colored_graph, render_matching_facts


def build():
    phi = phi_9()
    colored = ColoredGraph(phi)
    return colored, colored_matching(phi)


def test_figure3_colored_graph(benchmark):
    print(banner("E3 / Figure 3", "colored graph G_V[phi_9]"))
    colored, matching = benchmark(build)
    print(render_colored_graph(colored.phi))
    print(render_matching_facts(colored.phi))
    assert len(colored.colored) == 8
    assert colored.euler_characteristic() == 0
    assert matching is not None and len(matching) == 4

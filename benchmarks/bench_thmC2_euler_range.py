"""E14 — Theorem C.2 / Proposition 6.4: the monotone Euler range.

Regenerates the hardness-range table: for each k, the extremes of the
Euler characteristic over monotone functions (slice closed form, verified
exhaustively for small k), the Björner–Kalai maximizer, and the count of
H-queries that Proposition 6.4 proves #P-hard vs those left to Open
problem 1 (like phi_maxEuler, whose value 2^k escapes the range).
"""

from __future__ import annotations

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.euler import (
    bjorner_kalai_maximizer,
    max_monotone_euler,
    monotone_euler_extremes,
)
from repro.core.zoo import phi_max_euler
from repro.enumeration.monotone import enumerate_monotone_functions
from repro.pqe.dichotomy import Region, classify_function


def test_thmC2_range_table(benchmark):
    print(banner("E14 / Thm C.2", "monotone Euler extremes per k"))
    print(f"{'k':>2} {'min e':>7} {'max e':>7} {'max |e|':>8} "
          f"{'e(phi_maxEuler)':>16} {'in range':>9}")
    for k in (1, 2, 3, 4, 5, 6):
        low, high = monotone_euler_extremes(k)
        maximum = max_monotone_euler(k)
        unreachable = 1 << k
        print(f"{k:>2} {low:>7} {high:>7} {maximum:>8} {unreachable:>16} "
              f"{str(low <= unreachable <= high):>9}")
        assert unreachable > high  # phi_maxEuler always escapes
    benchmark(monotone_euler_extremes, 8)


def test_thmC2_exhaustive_validation():
    print(banner("E14 / Thm C.2", "closed form vs exhaustive enumeration"))
    for k in (1, 2, 3, 4):
        values = [
            phi.euler_characteristic()
            for phi in enumerate_monotone_functions(k + 1)
        ]
        exhaustive = (min(values), max(values))
        closed = monotone_euler_extremes(k)
        print(f"k={k}: exhaustive {exhaustive}, slice closed form {closed}")
        assert exhaustive == closed
        maximizer = bjorner_kalai_maximizer(k)
        assert abs(maximizer.euler_characteristic()) == max(
            abs(v) for v in values
        )


def test_prop64_hardness_coverage():
    print(banner("E14 / Prop 6.4", "hard vs conjectured-hard among "
                                   "nonzero-Euler functions (k = 2)"))
    hard = conjectured = 0
    for table in range(256):
        phi = BooleanFunction(3, table)
        region = classify_function(phi).region
        if region is Region.HARD:
            hard += 1
        elif region is Region.CONJECTURED_HARD:
            conjectured += 1
    print(f"#P-hard by Prop 6.4 / Cor 3.9: {hard}; "
          f"left to Open problem 1: {conjectured}")
    assert hard > 0 and conjectured > 0
    assert classify_function(phi_max_euler(2)).region is (
        Region.CONJECTURED_HARD
    )

"""E9 — Theorem 5.2 / Corollary 5.3: d-D compilation in PTIME.

The paper's main claim is asymptotic: lineages of zero-Euler H-queries
(in particular the safe H+-query q_9) have d-Ds constructible in
*polynomial time* in the database.  We regenerate the claim's observable
shape: compile q_9's lineage on complete instances of growing domain size
``n`` (|D| = 2n + 3n²) and report circuit size and probability; the series
must grow polynomially (we fit a power law and check the exponent), and
the probability must agree with the extensional engine exactly.
"""

from __future__ import annotations

import math
from fractions import Fraction

from conftest import banner

from repro.db.generator import complete_tid
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import q9


def compile_on(n: int):
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    compiled = compile_lineage(q9(), tid.instance)
    return tid, compiled


def test_theorem52_qd_scaling(benchmark):
    print(banner("E9 / Theorem 5.2", "d-D size and exactness for q_9"))
    print(f"{'n':>3} {'|D|':>6} {'gates':>8} {'wires':>8} "
          f"{'Pr (d-D)':>12} {'= extensional':>14}")
    sizes = []
    for n in (1, 2, 3, 4, 5, 6):
        tid, compiled = compile_on(n)
        value = compiled.probability(tid)
        reference = extensional_probability(q9(), tid)
        agree = value == reference
        print(f"{n:>3} {len(tid):>6} {len(compiled.circuit):>8} "
              f"{compiled.circuit.num_wires():>8} {float(value):>12.8f} "
              f"{str(agree):>14}")
        assert agree
        sizes.append((len(tid), len(compiled.circuit)))
    # Power-law fit of gates vs |D|: the exponent must stay comfortably
    # polynomial (the construction is ~linear per pair-query circuit).
    (d0, g0), (d1, g1) = sizes[1], sizes[-1]
    exponent = math.log(g1 / g0) / math.log(d1 / d0)
    print(f"fitted size exponent: {exponent:.2f} (polynomial, expect < 2.5)")
    assert exponent < 2.5
    benchmark(compile_on, 4)


def test_theorem52_compile_all_zero_euler_k2(benchmark):
    # Corollary 5.4's reach on one fixed database: every zero-Euler
    # function on 3 variables compiles.
    print(banner("E9 / Theorem 5.2", "all 70 zero-Euler functions (k = 2)"))
    from repro.core.boolean_function import BooleanFunction
    from repro.queries.hqueries import HQuery

    tid = complete_tid(2, 2, 2, prob=Fraction(1, 2))

    def compile_all():
        total_gates = 0
        count = 0
        for table in range(256):
            phi = BooleanFunction(3, table)
            if phi.euler_characteristic() != 0:
                continue
            compiled = compile_lineage(HQuery(2, phi), tid.instance)
            total_gates += len(compiled.circuit)
            count += 1
        return count, total_gates

    count, total_gates = benchmark(compile_all)
    print(f"compiled {count} queries; mean circuit size "
          f"{total_gates / count:.1f} gates")
    assert count == 70

"""E20 — approximation beyond the dichotomy (extension bench).

The paper's hard region (non-zero Euler characteristic) is #P-hard for
*exact* evaluation; the practical extension every probabilistic database
ships is randomized approximation.  This bench runs naive Monte Carlo and
the Karp–Luby DNF estimator on both a safe query (cross-checked against
the exact engines) and the canonical hard query H_k (cross-checked against
brute force where feasible), and exhibits Karp–Luby's advantage in the
small-probability regime where naive MC needs quadratically more samples.
"""

from __future__ import annotations

import random
from fractions import Fraction

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.approximate import karp_luby_probability, monte_carlo_probability
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.extensional import probability as ext_probability
from repro.queries.hqueries import HQuery, q9


def hard_query(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def test_approximation_on_safe_query(benchmark):
    print(banner("E20 / approximation", "safe query: estimators vs exact"))
    tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    truth = float(ext_probability(q9(), tid))
    rng = random.Random(20)
    mc = monte_carlo_probability(q9(), tid, 600, rng)
    kl = karp_luby_probability(q9(), tid, 600, rng)
    print(f"exact: {truth:.6f}")
    print(f"monte carlo (600 samples): {mc.value:.4f} ± {mc.half_width:.4f}")
    print(f"karp–luby   (600 samples): {kl.value:.4f} ± {kl.half_width:.4f}")
    assert abs(mc.value - truth) <= max(mc.half_width * 1.8, 0.08)
    assert abs(kl.value - truth) <= max(kl.half_width * 1.8, 0.08)
    benchmark(
        monte_carlo_probability, q9(), tid, 200, random.Random(21)
    )


def test_approximation_on_hard_query():
    print(banner("E20 / approximation", "the #P-hard H_k, approximated"))
    query = hard_query(2)
    tid = complete_tid(2, 2, 2, prob=Fraction(1, 4))
    truth = float(probability_by_world_enumeration(query, tid))
    rng = random.Random(22)
    mc = monte_carlo_probability(query, tid, 1000, rng)
    kl = karp_luby_probability(query, tid, 1000, rng)
    print(f"brute-force truth: {truth:.6f}")
    print(f"monte carlo: {mc.value:.4f} ± {mc.half_width:.4f}")
    print(f"karp–luby:   {kl.value:.4f} ± {kl.half_width:.4f}")
    assert abs(mc.value - truth) <= max(mc.half_width * 1.8, 0.06)
    assert abs(kl.value - truth) <= max(kl.half_width * 1.8, 0.06)


def test_small_probability_regime():
    print(banner("E20 / approximation", "tiny probabilities: where "
                                        "Karp–Luby earns its keep"))
    query = hard_query(2)
    tid = complete_tid(2, 1, 1, prob=Fraction(1, 40))
    truth = float(probability_by_world_enumeration(query, tid))
    rng = random.Random(23)
    mc = monte_carlo_probability(query, tid, 1500, rng)
    kl = karp_luby_probability(query, tid, 1500, rng)
    rel_mc = abs(mc.value - truth) / truth
    rel_kl = abs(kl.value - truth) / truth
    print(f"truth = {truth:.6f}")
    print(f"monte carlo: {mc.value:.6f}  (relative error {rel_mc:.1%})")
    print(f"karp–luby:   {kl.value:.6f}  (relative error {rel_kl:.1%})")
    assert rel_kl <= 0.35
    print("karp–luby stays within tight relative error; naive MC often "
          "reports 0 here")

"""E12 — Corollary 5.4: fragmentable ⇔ zero Euler characteristic.

Regenerates the equivalence as an exhaustive sweep for k = 1, 2 (every
function either fragments with a verified witness or has e != 0) plus
template-size statistics: holes, ∨-gates and ¬-gates of the produced
¬-∨-templates, separating the matching-based (negation-free) cases.
"""

from __future__ import annotations

import random

from conftest import banner

from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import fragment, is_fragmentable
from repro.matching.perfect_matching import colored_matching


def sweep(nvars: int):
    fragmented = rejected = 0
    for table in range(1 << (1 << nvars)):
        phi = BooleanFunction(nvars, table)
        if phi.euler_characteristic() == 0:
            assert fragment(phi).verify()
            fragmented += 1
        else:
            assert not is_fragmentable(phi)
            rejected += 1
    return fragmented, rejected


def test_cor54_exhaustive(benchmark):
    print(banner("E12 / Cor 5.4", "fragmentable ⇔ e = 0 (exhaustive)"))
    for nvars in (2, 3):
        fragmented, rejected = sweep(nvars)
        print(f"nvars={nvars}: fragmented {fragmented}, "
              f"non-fragmentable {rejected}, total {fragmented + rejected}")
    fragmented, rejected = benchmark(sweep, 2)
    assert fragmented == 6 and rejected == 10  # C(4,2)=6 zero-Euler on 2 vars


def test_cor54_template_statistics():
    print(banner("E12 / Cor 5.4", "template sizes on random zero-Euler "
                                  "functions (4 variables)"))
    rng = random.Random(54)
    rows = []
    while len(rows) < 40:
        phi = BooleanFunction.random(4, rng)
        if phi.euler_characteristic() != 0:
            continue
        fragmentation = fragment(phi)
        gates = fragmentation.template.count_gates()
        has_matching = colored_matching(phi) is not None
        rows.append((phi.sat_count(), gates, has_matching))
    with_pm = [r for r in rows if r[2]]
    without_pm = [r for r in rows if not r[2]]
    print(f"{len(with_pm)} functions with colored PM, "
          f"{len(without_pm)} without")
    for label, subset in (("with PM", with_pm), ("without PM", without_pm)):
        if not subset:
            continue
        mean_holes = sum(r[1]["hole"] for r in subset) / len(subset)
        mean_nots = sum(r[1]["not"] for r in subset) / len(subset)
        print(f"  {label:<12} mean holes {mean_holes:5.1f}, "
              f"mean ¬-gates {mean_nots:5.1f}")
    assert rows

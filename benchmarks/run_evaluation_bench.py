"""Measure the compiled-evaluation fast path and dump machine-readable
results.

Compares, on q_9's compiled d-D lineage and on grounding workloads:

* float-mode probability: compiled tape vs. the seed per-gate loop;
* a 256-map batch: one vectorized tape sweep (both the pre-resolved
  matrix form and the probability-map form) vs. sequential seed passes;
* exact Fraction probability: tape interpreter vs. the seed loop;
* ``grounding_sets``: index-backed join matching vs. the seed
  nested-loop backtracking matcher.

Run as a script to write ``BENCH_evaluation.json`` at the repository
root, so future PRs can track the perf trajectory:

    PYTHONPATH=src python benchmarks/run_evaluation_bench.py

(The script falls back to inserting ``src/`` on ``sys.path`` itself.)
"""

from __future__ import annotations

import json
import platform
import sys
import time
from fractions import Fraction
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # Standalone invocation without PYTHONPATH=src.
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import random

from repro.circuits.circuit import GateKind
from repro.circuits.evaluator import tape_for
from repro.db.generator import complete_tid
from repro.pqe.intensional import compile_lineage
from repro.queries.cq import Constant
from repro.queries.hqueries import h_query, q9

RESULT_PATH = _REPO_ROOT / "BENCH_evaluation.json"


# ----------------------------------------------------------------------
# Seed reference implementations (the "before" side of every comparison)
# ----------------------------------------------------------------------


def seed_gate_probabilities(circuit, prob):
    """The pre-tape per-gate loop over ``Gate`` objects, verbatim."""
    one = Fraction(1)
    for value in prob.values():
        one = Fraction(1) if isinstance(value, Fraction) else 1.0
        break
    values = [0] * len(circuit)
    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR:
            values[gate_id] = prob.get(gate.payload, 0)
        elif gate.kind is GateKind.CONST:
            values[gate_id] = one if gate.payload else one - one
        elif gate.kind is GateKind.NOT:
            values[gate_id] = one - values[gate.inputs[0]]
        elif gate.kind is GateKind.AND:
            product = one
            for input_id in gate.inputs:
                product = product * values[input_id]
            values[gate_id] = product
        else:
            total = one - one
            for input_id in gate.inputs:
                total = total + values[input_id]
            values[gate_id] = total
    return values


def seed_probability(circuit, prob):
    return seed_gate_probabilities(circuit, prob)[circuit.output]


def seed_grounding_sets(query, db):
    """The pre-index nested-loop matcher, verbatim, as witness sets."""

    def match_atoms(atoms, binding):
        if not atoms:
            yield dict(binding)
            return
        atom, rest = atoms[0], atoms[1:]
        try:
            relation = db.relation(atom.relation)
        except KeyError:
            return
        for values in relation:
            if len(values) != len(atom.terms):
                continue
            extended = dict(binding)
            consistent = True
            for term, value in zip(atom.terms, values):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                elif term in extended:
                    if extended[term] != value:
                        consistent = False
                        break
                else:
                    extended[term] = value
            if consistent:
                yield from match_atoms(rest, extended)

    witnesses = set()
    for found in match_atoms(list(query.atoms), {}):
        witnesses.add(
            frozenset(
                db.add(
                    atom.relation,
                    tuple(
                        t.value if isinstance(t, Constant) else found[t]
                        for t in atom.terms
                    ),
                )
                for atom in query.atoms
            )
        )
    return witnesses


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _compiled_fixture(n):
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    compiled = compile_lineage(q9(), tid.instance)
    return tid, compiled


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def bench_single_float(n=8, repeats=15):
    """One float-mode probability pass: compiled tape vs. seed loop."""
    tid, compiled = _compiled_fixture(n)
    circuit = compiled.circuit
    prob = {t: 0.5 for t in tid.instance.tuple_ids()}
    tape = tape_for(circuit)
    codegen_start = time.perf_counter()
    tape._compiled()  # One-time compilation, reported separately.
    codegen_seconds = time.perf_counter() - codegen_start
    seed_seconds = _best_of(lambda: seed_probability(circuit, prob), repeats)
    tape_seconds = _best_of(lambda: tape.evaluate_floats(prob), repeats)
    drift = abs(
        tape.evaluate_floats(prob) - seed_probability(circuit, prob)
    )
    return {
        "gates": len(circuit),
        "tuples": len(tid),
        "seed_ms": seed_seconds * 1e3,
        "tape_ms": tape_seconds * 1e3,
        "codegen_once_ms": codegen_seconds * 1e3,
        "speedup": seed_seconds / tape_seconds,
        "max_abs_drift": drift,
    }


def bench_batch(n=8, batch_size=256, repeats=3):
    """A ``batch_size``-map batch: one tape sweep vs. sequential seed
    passes.  Both input conventions of the batch API are measured — maps
    (dicts, as served to the seed loop) and the pre-resolved slot matrix
    (the native shape of sweep/Monte-Carlo drivers)."""
    tid, compiled = _compiled_fixture(n)
    circuit = compiled.circuit
    tape = tape_for(circuit)
    tape._compiled()
    rng = random.Random(0)
    labels = tid.instance.tuple_ids()
    maps = [
        {t: rng.random() for t in labels} for _ in range(batch_size)
    ]
    matrix = [
        [m[label] for m in maps] for label in tape.var_labels
    ]
    sequential_seconds = _best_of(
        lambda: [seed_probability(circuit, m) for m in maps], 1
    )
    batch_maps_seconds = _best_of(
        lambda: tape.evaluate_batch(maps), repeats
    )
    batch_matrix_seconds = _best_of(
        lambda: tape.evaluate_batch(matrix=matrix), repeats
    )
    reference = [seed_probability(circuit, m) for m in maps]
    got = tape.evaluate_batch(matrix=matrix)
    drift = max(abs(a - b) for a, b in zip(got, reference))
    return {
        "gates": len(circuit),
        "batch_size": batch_size,
        "sequential_seed_ms": sequential_seconds * 1e3,
        "batch_maps_ms": batch_maps_seconds * 1e3,
        "batch_matrix_ms": batch_matrix_seconds * 1e3,
        "speedup_maps": sequential_seconds / batch_maps_seconds,
        "speedup_matrix": sequential_seconds / batch_matrix_seconds,
        "max_abs_drift": drift,
    }


def bench_exact(n=6, repeats=5):
    """Exact Fraction probability: tape interpreter vs. seed loop; the
    results must be identical, not just close."""
    tid, compiled = _compiled_fixture(n)
    circuit = compiled.circuit
    prob = tid.probability_map()
    tape = tape_for(circuit)
    seed_seconds = _best_of(lambda: seed_probability(circuit, prob), repeats)
    tape_seconds = _best_of(lambda: tape.evaluate(prob), repeats)
    identical = tape.evaluate(prob) == seed_probability(circuit, prob)
    return {
        "gates": len(circuit),
        "seed_ms": seed_seconds * 1e3,
        "tape_ms": tape_seconds * 1e3,
        "speedup": seed_seconds / tape_seconds,
        "bit_identical": identical,
    }


def bench_grounding(n=20, repeats=3):
    """``grounding_sets`` of the ``h_{3,i}`` on a complete instance:
    index-backed matching vs. the seed backtracking join."""
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    db = tid.instance
    queries = [h_query(3, i) for i in range(4)]

    def naive():
        return [seed_grounding_sets(q, db) for q in queries]

    def indexed():
        return [q.grounding_sets(db) for q in queries]

    naive_seconds = _best_of(naive, repeats)
    indexed_seconds = _best_of(indexed, repeats)
    agree = naive() == indexed()
    return {
        "tuples": len(db),
        "naive_ms": naive_seconds * 1e3,
        "indexed_ms": indexed_seconds * 1e3,
        "speedup": naive_seconds / indexed_seconds,
        "witness_sets_identical": agree,
    }


def run_all():
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": numpy_version,
            "unix_time": time.time(),
        },
        "single_float": bench_single_float(),
        "batch": bench_batch(),
        "exact": bench_exact(),
        "grounding": bench_grounding(),
    }


def main():
    results = run_all()
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()

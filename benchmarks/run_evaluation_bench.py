"""Measure the compiled-evaluation fast path and dump machine-readable
results.

Compares, on q_9's compiled d-D lineage and on grounding workloads:

* float-mode probability: compiled tape vs. the seed per-gate loop;
* a 256-map batch: one vectorized tape sweep (both the pre-resolved
  matrix form and the probability-map form) vs. sequential seed passes;
* exact Fraction probability: tape backends vs. the seed loop;
* ``grounding_sets``: index-backed join matching vs. the seed
  nested-loop backtracking matcher;
* **compilation** (PR 2): cold/warm d-D compilation of a zero-Euler
  H-query workload through the shared-order OBDD families, tabular
  automata and hash-consed arenas vs. the seed per-pair construction
  (closure automata, fresh managers, append-only arenas — reimplemented
  verbatim below), plus the circuit-size reduction from sharing.

* **serving** (PR 3): the sharded concurrent service
  (:mod:`repro.serving`) — cold/warm sweep throughput over a
  multi-instance workload spread across the shards, a 256-request
  hot-instance microbatch wave, bit-for-float agreement with the
  single-threaded ``evaluate_batch``, and per-shard cache/latency stats.

* **extensional** (PR 4): the vectorized extensional fast path — the
  seed per-term ``Fraction`` loops vs. the columnar Möbius-batched
  evaluator (exact integer backend and numpy float backend) on a
  ≥ 1k-tuple instance, batch throughput over many probability maps, and
  the headline *conjecture suite*: a generated family of safe H+-queries
  whose extensional results are checked bit-for-``Fraction`` against the
  intensional compiled path.

* **lifted** (PR 8): general Dalvi–Suciu lifted inference on a non-h
  schema — safe-plan search time, plan-IR exact/float evaluation and
  batch throughput, exact-Fraction agreement with the possible-world
  oracle (``lifted_identical``), bit-identity of the lowered h-query
  plans against the seed loops (``h_parity_identical``), and the
  ``engine="lifted"`` serving route under both backends
  (``serving_backends_identical``).

* **sampling** (PR 5): the vectorized sampling engine for #P-hard
  queries — scalar vs vectorized Karp–Luby and Monte-Carlo samples/sec
  on a ≥ 1k-tuple hard instance, the numpy-vs-pure-Python
  ``draws_identical`` gate, and budget-adaptive vs fixed-count sample
  economics (run in CI under ``PYTHONHASHSEED=0``).

* **resilience** (PR 6): sustained overload under injected faults — an
  under-provisioned service flooded with deadline-carrying mixed-route
  traffic must resolve every request (answer or typed error), keep the
  served p99 within the SLO by shedding and degrading instead of
  queueing, and produce bit-identical degraded answers across clock
  jitter (the ``degraded_identical`` exactness gate).

Run as a script to write ``BENCH_evaluation.json`` at the repository
root, so future PRs can track the perf trajectory:

    PYTHONPATH=src python benchmarks/run_evaluation_bench.py

``--sections serving`` (or any subset) reruns just those sections and
merges them into the existing ``BENCH_evaluation.json``, preserving the
untouched sections; every section records its own
``recorded_unix_time``, so partial reruns never lose the trajectory of
the sections they skipped.  (The script falls back to inserting ``src/``
on ``sys.path`` itself.)
"""

from __future__ import annotations

import json
import platform
import sys
import time
from fractions import Fraction
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
try:
    import repro  # noqa: F401
except ImportError:  # Standalone invocation without PYTHONPATH=src.
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import random

from repro.circuits.circuit import Circuit, GateKind
from repro.circuits.evaluator import tape_for
from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import (
    Hole,
    NotNode,
    OrNode,
    fragment,
    fragment_via_matching,
)
from repro.db.generator import complete_tid
from repro.db.relation import TupleId
from repro.matching.perfect_matching import colored_matching
from repro.obdd.builder import LayeredAutomaton, build_obdd
from repro.obdd.obdd import ObddManager
from repro.pqe.intensional import compile_lineage
from repro.queries.cq import Constant
from repro.queries.hqueries import HQuery, h_query, q9

RESULT_PATH = _REPO_ROOT / "BENCH_evaluation.json"


# ----------------------------------------------------------------------
# Seed reference implementations (the "before" side of every comparison)
# ----------------------------------------------------------------------


def seed_gate_probabilities(circuit, prob):
    """The pre-tape per-gate loop over ``Gate`` objects, verbatim."""
    one = Fraction(1)
    for value in prob.values():
        one = Fraction(1) if isinstance(value, Fraction) else 1.0
        break
    values = [0] * len(circuit)
    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR:
            values[gate_id] = prob.get(gate.payload, 0)
        elif gate.kind is GateKind.CONST:
            values[gate_id] = one if gate.payload else one - one
        elif gate.kind is GateKind.NOT:
            values[gate_id] = one - values[gate.inputs[0]]
        elif gate.kind is GateKind.AND:
            product = one
            for input_id in gate.inputs:
                product = product * values[input_id]
            values[gate_id] = product
        else:
            total = one - one
            for input_id in gate.inputs:
                total = total + values[input_id]
            values[gate_id] = total
    return values


def seed_probability(circuit, prob):
    return seed_gate_probabilities(circuit, prob)[circuit.output]


def seed_grounding_sets(query, db):
    """The pre-index nested-loop matcher, verbatim, as witness sets."""

    def match_atoms(atoms, binding):
        if not atoms:
            yield dict(binding)
            return
        atom, rest = atoms[0], atoms[1:]
        try:
            relation = db.relation(atom.relation)
        except KeyError:
            return
        for values in relation:
            if len(values) != len(atom.terms):
                continue
            extended = dict(binding)
            consistent = True
            for term, value in zip(atom.terms, values):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                elif term in extended:
                    if extended[term] != value:
                        consistent = False
                        break
                else:
                    extended[term] = value
            if consistent:
                yield from match_atoms(rest, extended)

    witnesses = set()
    for found in match_atoms(list(query.atoms), {}):
        witnesses.add(
            frozenset(
                db.add(
                    atom.relation,
                    tuple(
                        t.value if isinstance(t, Constant) else found[t]
                        for t in atom.terms
                    ),
                )
                for atom in query.atoms
            )
        )
    return witnesses


# ----------------------------------------------------------------------
# Seed d-D compiler (the PR-1 construction, verbatim): closure automata,
# one fresh ObddManager per pair-query side, per-gate arena appends.
# ----------------------------------------------------------------------


def seed_sides(db):
    xs, ys = set(), set()
    for tuple_id in db.tuple_ids():
        if tuple_id.relation == "R":
            xs.add(tuple_id.values[0])
        elif tuple_id.relation == "T":
            ys.add(tuple_id.values[0])
        elif tuple_id.relation.startswith("S"):
            xs.add(tuple_id.values[0])
            ys.add(tuple_id.values[1])
    return sorted(xs, key=repr), sorted(ys, key=repr)


def seed_left_order(l, db):
    xs, ys = seed_sides(db)
    order = []
    for x in xs:
        order.append(TupleId("R", (x,)))
        for y in ys:
            for i in range(1, l + 1):
                order.append(TupleId(f"S{i}", (x, y)))
    return order


def seed_right_order(l, k, db):
    xs, ys = seed_sides(db)
    order = []
    for y in ys:
        order.append(TupleId("T", (y,)))
        for x in xs:
            for i in range(k, l, -1):
                order.append(TupleId(f"S{i}", (x, y)))
    return order


class SeedSideAutomaton:
    def __init__(self, order, events):
        self.order = order
        self.events = events

    def automaton(self, accepting_mask):
        events = self.events

        def transition(state, position, value):
            mask, unary, prev = state
            kind = events[position]
            if kind[0] == "unary":
                return (mask, value, False)
            chain_position = kind[1]
            if chain_position == 0:
                if unary and value:
                    mask |= 1
                return (mask, unary, value)
            if prev and value:
                mask |= 1 << chain_position
            return (mask, unary, value)

        return LayeredAutomaton(
            order=self.order,
            initial=(0, False, False),
            transition=transition,
            accepting=lambda state: state[0] == accepting_mask,
        )


def seed_left_machine(l, db):
    order = seed_left_order(l, db)
    events = []
    for tuple_id in order:
        if tuple_id.relation == "R":
            events.append(("unary",))
        else:
            events.append(("s", int(tuple_id.relation[1:]) - 1))
    return SeedSideAutomaton(order, events)


def seed_right_machine(l, k, db):
    order = seed_right_order(l, k, db)
    events = []
    for tuple_id in order:
        if tuple_id.relation == "T":
            events.append(("unary",))
        else:
            events.append(("s", k - int(tuple_id.relation[1:])))
    return SeedSideAutomaton(order, events)


def seed_obdd_into_circuit(manager, root, circuit):
    gate_of = {
        0: circuit.add_const(False),
        1: circuit.add_const(True),
    }
    order = manager.order
    stack = [root]
    while stack:
        node_id = stack[-1]
        if node_id in gate_of:
            stack.pop()
            continue
        _, low, high = manager.node(node_id)
        pending = [c for c in (low, high) if c not in gate_of]
        if pending:
            stack.extend(pending)
            continue
        level, low, high = manager.node(node_id)
        var_gate = circuit.add_var(order[level])
        not_gate = circuit.add_not(var_gate)
        low_branch = circuit.add_and([not_gate, gate_of[low]])
        high_branch = circuit.add_and([var_gate, gate_of[high]])
        gate_of[node_id] = circuit.add_or([low_branch, high_branch])
        stack.pop()
    return gate_of[root]


def seed_pair_query_circuit(k, l, pattern, db, circuit):
    parts = []
    if l > 0:
        machine = seed_left_machine(l, db)
        manager = ObddManager(machine.order)
        _, root = build_obdd(
            machine.automaton(pattern & ((1 << l) - 1)), manager
        )
        parts.append(seed_obdd_into_circuit(manager, root, circuit))
    if l < k:
        mask = 0
        for i in range(l + 1, k + 1):
            if pattern >> i & 1:
                mask |= 1 << (k - i)
        machine = seed_right_machine(l, k, db)
        manager = ObddManager(machine.order)
        _, root = build_obdd(machine.automaton(mask), manager)
        parts.append(seed_obdd_into_circuit(manager, root, circuit))
    return circuit.add_and(parts)


def seed_leaf_circuit(leaf, k, db, circuit):
    if leaf.is_bottom():
        return circuit.add_const(False)
    models = list(leaf.satisfying_masks())
    if len(models) == 2 and (models[0] ^ models[1]).bit_count() == 1:
        flip_variable = (models[0] ^ models[1]).bit_length() - 1
        return seed_pair_query_circuit(
            k, flip_variable, models[0], db, circuit
        )
    raise NotImplementedError("bench leaves are always pair functions")


def seed_compile_lineage(query, db):
    """The seed compile path for nondegenerate zero-Euler phi: template
    from the colored matching when one exists, filled with per-pair OBDD
    circuits, in an append-only arena."""
    phi = query.phi
    matching = colored_matching(phi)
    if matching is not None:
        fragmentation = fragment_via_matching(phi, matching)
    else:
        fragmentation = fragment(phi)
    circuit = Circuit()
    leaf_gates = [
        seed_leaf_circuit(leaf, query.k, db, circuit)
        for leaf in fragmentation.leaves
    ]

    def build(node):
        if isinstance(node, Hole):
            return leaf_gates[node.index]
        if isinstance(node, NotNode):
            return circuit.add_not(build(node.child))
        assert isinstance(node, OrNode)
        return circuit.add_or([build(child) for child in node.children])

    circuit.set_output(build(fragmentation.template.root))
    return circuit


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _compiled_fixture(n):
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    compiled = compile_lineage(q9(), tid.instance)
    return tid, compiled


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def bench_single_float(n=8, repeats=15):
    """One float-mode probability pass: compiled tape vs. seed loop."""
    tid, compiled = _compiled_fixture(n)
    circuit = compiled.circuit
    prob = {t: 0.5 for t in tid.instance.tuple_ids()}
    tape = tape_for(circuit)
    codegen_start = time.perf_counter()
    tape._compiled()  # One-time compilation, reported separately.
    codegen_seconds = time.perf_counter() - codegen_start
    seed_seconds = _best_of(lambda: seed_probability(circuit, prob), repeats)
    tape_seconds = _best_of(lambda: tape.evaluate_floats(prob), repeats)
    drift = abs(
        tape.evaluate_floats(prob) - seed_probability(circuit, prob)
    )
    return {
        "gates": len(circuit),
        "tuples": len(tid),
        "seed_ms": seed_seconds * 1e3,
        "tape_ms": tape_seconds * 1e3,
        "codegen_once_ms": codegen_seconds * 1e3,
        "speedup": seed_seconds / tape_seconds,
        "max_abs_drift": drift,
    }


def bench_batch(n=8, batch_size=256, repeats=3):
    """A ``batch_size``-map batch: one tape sweep vs. sequential seed
    passes.  Both input conventions of the batch API are measured — maps
    (dicts, as served to the seed loop) and the pre-resolved slot matrix
    (the native shape of sweep/Monte-Carlo drivers)."""
    tid, compiled = _compiled_fixture(n)
    circuit = compiled.circuit
    tape = tape_for(circuit)
    tape._compiled()
    rng = random.Random(0)
    labels = tid.instance.tuple_ids()
    maps = [
        {t: rng.random() for t in labels} for _ in range(batch_size)
    ]
    matrix = [
        [m[label] for m in maps] for label in tape.var_labels
    ]
    sequential_seconds = _best_of(
        lambda: [seed_probability(circuit, m) for m in maps], 1
    )
    batch_maps_seconds = _best_of(
        lambda: tape.evaluate_batch(maps), repeats
    )
    batch_matrix_seconds = _best_of(
        lambda: tape.evaluate_batch(matrix=matrix), repeats
    )
    reference = [seed_probability(circuit, m) for m in maps]
    got = tape.evaluate_batch(matrix=matrix)
    drift = max(abs(a - b) for a, b in zip(got, reference))
    return {
        "gates": len(circuit),
        "batch_size": batch_size,
        "sequential_seed_ms": sequential_seconds * 1e3,
        "batch_maps_ms": batch_maps_seconds * 1e3,
        "batch_matrix_ms": batch_matrix_seconds * 1e3,
        "speedup_maps": sequential_seconds / batch_maps_seconds,
        "speedup_matrix": sequential_seconds / batch_matrix_seconds,
        "max_abs_drift": drift,
    }


def bench_exact(n=6, repeats=5):
    """Exact Fraction probability: tape interpreter vs. seed loop; the
    results must be identical, not just close."""
    tid, compiled = _compiled_fixture(n)
    circuit = compiled.circuit
    prob = tid.probability_map()
    tape = tape_for(circuit)
    seed_seconds = _best_of(lambda: seed_probability(circuit, prob), repeats)
    tape_seconds = _best_of(lambda: tape.evaluate(prob), repeats)
    identical = tape.evaluate(prob) == seed_probability(circuit, prob)
    return {
        "gates": len(circuit),
        "seed_ms": seed_seconds * 1e3,
        "tape_ms": tape_seconds * 1e3,
        "speedup": seed_seconds / tape_seconds,
        "bit_identical": identical,
    }


def bench_grounding(n=20, repeats=3):
    """``grounding_sets`` of the ``h_{3,i}`` on a complete instance:
    index-backed matching vs. the seed backtracking join."""
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    db = tid.instance
    queries = [h_query(3, i) for i in range(4)]

    def naive():
        return [seed_grounding_sets(q, db) for q in queries]

    def indexed():
        return [q.grounding_sets(db) for q in queries]

    naive_seconds = _best_of(naive, repeats)
    indexed_seconds = _best_of(indexed, repeats)
    agree = naive() == indexed()
    return {
        "tuples": len(db),
        "naive_ms": naive_seconds * 1e3,
        "indexed_ms": indexed_seconds * 1e3,
        "speedup": naive_seconds / indexed_seconds,
        "witness_sets_identical": agree,
    }


def bench_compilation(n=8, num_queries=24, repeats=5):
    """Cold/warm d-D compilation of a zero-Euler H-query workload:
    the shared fast path (tabular automata, one family sweep per side,
    hash-consed arenas) vs. the seed per-pair construction.

    * ``seed_cold_ms`` / ``fastpath_cold_ms`` — compile the whole suite
      on a *fresh* instance (no shared state anywhere);
    * ``fastpath_warm_ms`` — recompile the suite against the same
      instance (side machines, managers and OBDD families memoized; the
      arena and template are still rebuilt);
    * ``single_query_*`` — the same comparison for one ``q_9`` compile;
    * gate counts document the sharing: the seed arena for ``q_9`` vs.
      the consed arena plus its ``gates_saved`` cons hits.

    Exact probabilities of seed and fast-path circuits are compared as
    ``Fraction``s — any mismatch marks the whole section invalid.
    """
    rng = random.Random(0x5EED2)
    queries = [q9()]
    while len(queries) < num_queries:
        phi = BooleanFunction.random(4, rng)
        if (
            phi.euler_characteristic() == 0
            and not phi.is_degenerate()
            and not phi.is_bottom()
        ):
            queries.append(HQuery(3, phi))

    def fresh_instance():
        return complete_tid(3, n, n, prob=Fraction(1, 2)).instance

    def timed_over_fresh(compile_suite):
        best = float("inf")
        for _ in range(repeats):
            db = fresh_instance()
            start = time.perf_counter()
            compile_suite(db)
            best = min(best, time.perf_counter() - start)
        return best

    seed_cold = timed_over_fresh(
        lambda db: [seed_compile_lineage(q, db) for q in queries]
    )
    fast_cold = timed_over_fresh(
        lambda db: [compile_lineage(q, db) for q in queries]
    )
    warm_db = fresh_instance()
    for query in queries:
        compile_lineage(query, warm_db)
    fast_warm = _best_of(
        lambda: [compile_lineage(q, warm_db) for q in queries], repeats
    )
    single_seed = timed_over_fresh(
        lambda db: seed_compile_lineage(q9(), db)
    )
    single_fast = timed_over_fresh(lambda db: compile_lineage(q9(), db))

    check_db = fresh_instance()
    prob = {t: Fraction(1, 2) for t in check_db.tuple_ids()}
    identical = True
    seed_gates = fast_gates = gates_saved = 0
    for query in queries:
        seed_circuit = seed_compile_lineage(query, check_db)
        compiled = compile_lineage(query, check_db)
        from repro.circuits.probability import probability as exact_prob

        identical = identical and (
            exact_prob(seed_circuit, prob)
            == exact_prob(compiled.circuit, prob)
        )
        seed_gates += len(seed_circuit)
        fast_gates += len(compiled.circuit)
        gates_saved += compiled.gates_saved
    return {
        "tuples": n + n + 3 * n * n,
        "queries": len(queries),
        "seed_cold_ms": seed_cold * 1e3,
        "fastpath_cold_ms": fast_cold * 1e3,
        "fastpath_warm_ms": fast_warm * 1e3,
        "speedup_cold": seed_cold / fast_cold,
        "speedup_warm": seed_cold / fast_warm,
        "single_query_seed_ms": single_seed * 1e3,
        "single_query_fastpath_ms": single_fast * 1e3,
        "single_query_speedup": single_seed / single_fast,
        "seed_gates": seed_gates,
        "fastpath_gates": fast_gates,
        "gates_saved_by_sharing": gates_saved,
        "gate_reduction": 1 - fast_gates / seed_gates,
        "exact_probabilities_identical": identical,
    }


def bench_serving(
    shards=4, requests_per_instance=64, hot_requests=256, workers=2
):
    """The sharded service vs. the single-threaded batch path.

    Workload one (*spread*): distinct-content instances covering every
    shard, ``requests_per_instance`` q9-evaluations each, submitted as
    one ``submit_batch`` wave — cold (caches empty, compiles on every
    shard) then warm.  Workload two (*hot*): ``hot_requests`` requests
    against a single instance, exercising the microbatcher on one shard.
    Both must agree bit-for-float with ``evaluate_batch``; throughput is
    warm requests per second, and per-shard stats document the cache hit
    rates and p50/p95 the service saw.

    The same two workloads then run on ``backend="processes"`` —
    ``backends_identical`` asserts every process-backend float equals
    its thread-backend counterpart (the exactness gate for the worker
    tier) — and a scaling sweep runs the spread workload over 1/2/4
    worker processes, recording ``rps_per_core``.  The curve is honest
    about the machine: ``cores_available`` is recorded next to it, and
    on a single-core runner the per-worker rps simply documents the
    overhead of the process boundary rather than a speedup.
    """
    import os

    from repro.pqe.engine import CompilationCache, evaluate_batch
    from repro.serving import ShardedService

    query = q9()
    service = ShardedService(shards=shards, workers_per_shard=workers)
    tids, covered, size = [], set(), 0
    while len(covered) < shards and size < 64:
        size += 1
        tid = complete_tid(3, 1 + size, 2, prob=Fraction(1, 2))
        index = service.shard_of(tid)
        if index not in covered:
            covered.add(index)
            tids.append(tid)
    requests = [tid for tid in tids for _ in range(requests_per_instance)]

    single_cache = CompilationCache()
    start = time.perf_counter()
    reference = evaluate_batch(query, requests, cache=single_cache)
    single_cold = time.perf_counter() - start
    start = time.perf_counter()
    reference_warm = evaluate_batch(query, requests, cache=single_cache)
    single_warm = time.perf_counter() - start

    start = time.perf_counter()
    cold_wave = service.submit_batch(query, requests)
    service_cold = time.perf_counter() - start
    start = time.perf_counter()
    warm_wave = service.submit_batch(query, requests)
    service_warm = time.perf_counter() - start

    identical = (
        [r.probability for r in cold_wave] == reference.probabilities
        and [r.probability for r in warm_wave]
        == reference_warm.probabilities
    )

    hot = [tids[0]] * hot_requests
    hot_reference = evaluate_batch(query, hot, cache=single_cache)
    start = time.perf_counter()
    hot_wave = service.submit_batch(query, hot)
    hot_seconds = time.perf_counter() - start
    identical = identical and (
        [r.probability for r in hot_wave] == hot_reference.probabilities
    )

    stats = service.stats()
    service.close()

    # -- process backend: identity, then per-core scaling --------------
    process_service = ShardedService(
        shards=shards, workers_per_shard=workers, backend="processes"
    )
    try:
        process_cold = process_service.submit_batch(query, requests)
        start = time.perf_counter()
        process_warm = process_service.submit_batch(query, requests)
        process_warm_seconds = time.perf_counter() - start
        start = time.perf_counter()
        process_hot = process_service.submit_batch(query, hot)
        process_hot_seconds = time.perf_counter() - start
    finally:
        process_service.stop(wait=True)
    backends_identical = (
        [r.probability for r in process_cold]
        == [r.probability for r in cold_wave]
        and [r.probability for r in process_warm]
        == [r.probability for r in warm_wave]
        and [r.probability for r in process_hot]
        == [r.probability for r in hot_wave]
    )

    scaling = []
    for worker_count in (1, 2, 4):
        scaled = ShardedService(
            shards=worker_count,
            workers_per_shard=workers,
            backend="processes",
        )
        try:
            scaled.submit_batch(query, requests)  # warm every worker
            start = time.perf_counter()
            wave = scaled.submit_batch(query, requests)
            seconds = time.perf_counter() - start
        finally:
            scaled.stop(wait=True)
        backends_identical = backends_identical and (
            [r.probability for r in wave] == reference_warm.probabilities
        )
        scaling.append(
            {
                "worker_processes": worker_count,
                "warm_throughput_rps": len(requests) / seconds,
                "rps_per_core": len(requests) / seconds / worker_count,
            }
        )

    return {
        "shards": shards,
        "workers_per_shard": workers,
        "instances": len(tids),
        "spread_requests": len(requests),
        "single_thread_cold_ms": single_cold * 1e3,
        "single_thread_warm_ms": single_warm * 1e3,
        "service_cold_ms": service_cold * 1e3,
        "service_warm_ms": service_warm * 1e3,
        "warm_throughput_rps": len(requests) / service_warm,
        "hot_requests": hot_requests,
        "hot_wave_ms": hot_seconds * 1e3,
        "hot_throughput_rps": hot_requests / hot_seconds,
        "bit_identical_with_evaluate_batch": identical,
        "process_warm_throughput_rps": (
            len(requests) / process_warm_seconds
        ),
        "process_hot_throughput_rps": hot_requests / process_hot_seconds,
        "backends_identical": backends_identical,
        "cores_available": os.cpu_count(),
        "worker_scaling": scaling,
        "p50_ms": stats.p50_ms,
        "p95_ms": stats.p95_ms,
        "compile_ms": stats.compile_ms,
        "microbatched_requests": stats.microbatched_requests,
        "per_shard": [
            {
                "shard": s.shard,
                "requests": s.requests,
                "batches": s.batches,
                "max_batch_size": s.max_batch_size,
                "cache_hits": s.cache.hits,
                "cache_misses": s.cache.misses,
                "cache_hit_rate": s.cache_hit_rate,
                "compile_ms": s.compile_ms,
                "p50_ms": s.p50_ms,
                "p95_ms": s.p95_ms,
            }
            for s in stats.shards
        ],
    }


# ----------------------------------------------------------------------
# Seed extensional evaluator (the pre-columnar PR-0 implementation,
# verbatim: per-term Fraction loops, per-call lattice construction)
# ----------------------------------------------------------------------


def seed_chain_probability(
    probabilities, satisfied_by_first=False, satisfied_by_last=False
):
    states = {(False, False): Fraction(1)}
    for position, p in enumerate(probabilities):
        first = position == 0
        last = position == len(probabilities) - 1
        nxt = {}
        for (prev, satisfied), mass in states.items():
            for present in (False, True):
                weight = p if present else (1 - p)
                if weight == 0:
                    continue
                now_satisfied = satisfied
                if present and prev:
                    now_satisfied = True
                if present and first and satisfied_by_first:
                    now_satisfied = True
                if present and last and satisfied_by_last:
                    now_satisfied = True
                key = (present, now_satisfied)
                nxt[key] = nxt.get(key, Fraction(0)) + mass * weight
        states = nxt
    return sum(
        (mass for (_, satisfied), mass in states.items() if satisfied),
        Fraction(0),
    )


def seed_tuple_probability(tid, relation, values):
    if not tid.instance.has(relation, values):
        return Fraction(0)
    return tid.probability_of(TupleId(relation, values))


def seed_run_probability(run, k, tid):
    a, b = run
    xs, ys = seed_sides(tid.instance)
    if a == 0:
        miss_all = Fraction(1)
        for x in xs:
            p_r = seed_tuple_probability(tid, "R", (x,))
            miss_without = Fraction(1)
            miss_with = Fraction(1)
            for y in ys:
                chain = [
                    seed_tuple_probability(tid, f"S{i}", (x, y))
                    for i in range(1, b + 2)
                ]
                miss_without *= 1 - seed_chain_probability(chain)
                miss_with *= 1 - seed_chain_probability(
                    chain, satisfied_by_first=True
                )
            hit = p_r * (1 - miss_with) + (1 - p_r) * (1 - miss_without)
            miss_all *= 1 - hit
        return 1 - miss_all
    if b == k:
        miss_all = Fraction(1)
        for y in ys:
            p_t = seed_tuple_probability(tid, "T", (y,))
            miss_without = Fraction(1)
            miss_with = Fraction(1)
            for x in xs:
                chain = [
                    seed_tuple_probability(tid, f"S{i}", (x, y))
                    for i in range(a, k + 1)
                ]
                miss_without *= 1 - seed_chain_probability(chain)
                miss_with *= 1 - seed_chain_probability(
                    chain, satisfied_by_last=True
                )
            hit = p_t * (1 - miss_with) + (1 - p_t) * (1 - miss_without)
            miss_all *= 1 - hit
        return 1 - miss_all
    miss_all = Fraction(1)
    for x in xs:
        for y in ys:
            chain = [
                seed_tuple_probability(tid, f"S{i}", (x, y))
                for i in range(a, b + 2)
            ]
            miss_all *= 1 - seed_chain_probability(chain)
    return 1 - miss_all


def seed_extensional_probability(query, tid):
    """The seed ``extensional.probability``, verbatim: lattice and Möbius
    column rebuilt on every call (no plan cache), every term's runs
    re-lifted with per-tuple dict probes (no columns, no sharing)."""
    from repro.lattice.cnf_lattice import ClauseLattice
    from repro.pqe.safe_plans import runs_of

    phi = query.phi
    if phi.is_bottom():
        return Fraction(0)
    if phi.is_top():
        return Fraction(1)
    lattice = ClauseLattice(phi.minimized_cnf())  # uncached, as seeded
    column = lattice.mobius_column()
    total = Fraction(0)
    for element, mobius_value in column.items():
        if element == lattice.top or mobius_value == 0:
            continue
        miss_all = Fraction(1)
        for run in runs_of(element):
            miss_all *= 1 - seed_run_probability(run, query.k, tid)
        total += -mobius_value * (1 - miss_all)
    return total


def bench_extensional(n=19, batch_size=256, suite_size=16, repeats=3):
    """The vectorized extensional fast path vs. the seed Fraction loops.

    * ``seed_exact_ms`` / ``vectorized_exact_ms`` / ``vectorized_float_ms``
      — one ``q_9`` evaluation on a complete instance of
      ``2n + 3n^2`` >= 1k tuples (seed loops vs. columnar Möbius-batched
      sweeps);
    * ``batch_*`` — ``batch_size`` distinct probability maps through
      ``probability_batch`` (one shared plan, one columnar sweep each),
      vs. per-map seed evaluations extrapolated from the single-map time;
    * the **conjecture suite**: every non-constant safe monotone query on
      3 variables plus random safe monotone ones at ``k = 3``, each
      evaluated extensionally (exact backend) and intensionally (compiled
      d-D, exact tape) on a random instance — ``suite_bit_identical``
      demands Fraction equality on every query, as does
      ``exact_identical`` for seed-vs-vectorized on the big instance.
    """
    import repro.pqe.extensional as extensional
    from repro.db.generator import random_tid
    from repro.enumeration.monotone import enumerate_monotone_functions
    from repro.pqe.engine import CompilationCache, evaluate

    query = q9()
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    plan, _ = extensional.plan_for(query)

    seed_seconds = _best_of(
        lambda: seed_extensional_probability(query, tid), repeats
    )
    vector_seconds = _best_of(
        lambda: extensional.probability(query, tid, plan=plan), repeats
    )
    float_seconds = _best_of(
        lambda: extensional.probability_float(query, tid, plan=plan), repeats
    )
    exact_identical = extensional.probability(
        query, tid, plan=plan
    ) == seed_extensional_probability(query, tid)

    rng = random.Random(0x5EED4)
    batch_tids = []
    for _ in range(batch_size):
        batch_tid = complete_tid(3, 6, 6, prob=Fraction(1, 2))
        for tuple_id in batch_tid.instance.tuple_ids():
            batch_tid.set_probability(
                tuple_id, Fraction(rng.randrange(0, 17), 16)
            )
        batch_tids.append(batch_tid)
    start = time.perf_counter()
    batch = extensional.probability_batch(query, batch_tids, plan=plan)
    batch_seconds = time.perf_counter() - start
    singles = [
        extensional.probability_float(query, batch_tid, plan=plan)
        for batch_tid in batch_tids
    ]
    seed_single_seconds = _best_of(
        lambda: seed_extensional_probability(query, batch_tids[0]), 1
    )

    suite = []
    for phi in enumerate_monotone_functions(3):
        if phi.is_bottom() or phi.is_top():
            continue
        candidate = HQuery(2, phi)
        if extensional.is_safe(candidate):
            suite.append(candidate)
    while len(suite) < suite_size:
        phi = BooleanFunction.random_monotone(4, rng)
        if phi.is_bottom() or phi.is_top():
            continue
        candidate = HQuery(3, phi)
        if extensional.is_safe(candidate):
            suite.append(candidate)
    cache = CompilationCache(limit=max(64, suite_size + 16))
    suite_identical = True
    suite_seed_identical = True
    for suite_query in suite:
        suite_tid = random_tid(
            suite_query.k, 3, 3, rng, tuple_density=0.8
        )
        lifted = extensional.probability(suite_query, suite_tid)
        compiled = evaluate(
            suite_query, suite_tid, method="intensional", cache=cache
        ).probability
        suite_identical = suite_identical and lifted == compiled
        suite_seed_identical = suite_seed_identical and (
            lifted == seed_extensional_probability(suite_query, suite_tid)
        )
    return {
        "tuples": len(tid),
        "distinct_runs": len(plan.runs),
        "run_references": sum(len(ids) for _, ids in plan.terms),
        "seed_exact_ms": seed_seconds * 1e3,
        "vectorized_exact_ms": vector_seconds * 1e3,
        "vectorized_float_ms": float_seconds * 1e3,
        "speedup_exact": seed_seconds / vector_seconds,
        "speedup_float": seed_seconds / float_seconds,
        "exact_identical": exact_identical,
        "batch_size": batch_size,
        "batch_ms": batch_seconds * 1e3,
        "batch_throughput_rps": batch_size / batch_seconds,
        "batch_seed_single_ms": seed_single_seconds * 1e3,
        "batch_speedup_vs_seed": (
            seed_single_seconds * batch_size / batch_seconds
        ),
        "batch_vs_singles_bit_identical": batch == singles,
        "suite_queries": len(suite),
        "suite_bit_identical": suite_identical,
        "suite_seed_bit_identical": suite_seed_identical,
    }


def bench_lifted(
    oracle_domain=3,
    big_domain=12,
    batch_size=64,
    repeats=5,
    serving_tids=6,
):
    """General lifted inference (PR 8, :mod:`repro.pqe.lift`) on a
    *non-h* schema ``R(x), S(x, y), T(x)``.

    * ``plan_search_ms`` — the one-time Dalvi–Suciu safe-plan search per
      query shape (plans are query-only and cached across instances);
    * ``lifted_identical`` — exact-Fraction equality of the IR
      evaluators against the possible-world oracle on a small instance,
      for a safe CQ and a safe union (the correctness gate);
    * IR exact/float evaluation time and batch throughput on an
      instance the oracle cannot touch;
    * ``h_parity_identical`` — every safe monotone h-query at
      ``k <= 2`` evaluated through the lowered plan IR against the
      seed ``Fraction`` loops (the ported-kernel bit-identity claim);
    * ``serving_backends_identical`` — the safe CQ served as
      ``engine="lifted"`` through *both* serving backends, floats equal
      across backends and to the direct plan evaluation.
    """
    import repro.pqe.extensional as extensional
    from repro.db.relation import Instance
    from repro.db.tid import TupleIndependentDatabase
    from repro.enumeration.monotone import enumerate_monotone_functions
    from repro.pqe.brute_force import probability_by_world_enumeration
    from repro.pqe.lift import (
        evaluate_plan,
        evaluate_plan_batch,
        evaluate_plan_float,
        lift_query,
    )
    from repro.queries.cq import Atom, ConjunctiveQuery
    from repro.queries.ucq import UnionOfCQs
    from repro.serving import ShardedService

    rng = random.Random(0x11F7ED)

    def non_h_tid(domain):
        instance = Instance()
        instance.declare("R", 1)
        instance.declare("S", 2)
        instance.declare("T", 1)
        tid = TupleIndependentDatabase(instance)
        for x in range(domain):
            tid.set_probability(
                instance.add("R", (x,)), Fraction(rng.randrange(1, 16), 16)
            )
            tid.set_probability(
                instance.add("T", (x,)), Fraction(rng.randrange(1, 16), 16)
            )
            for y in range(domain):
                tid.set_probability(
                    instance.add("S", (x, y)),
                    Fraction(rng.randrange(1, 16), 16),
                )
        return tid

    safe_cq = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("x", "y"))))
    safe_union = UnionOfCQs((safe_cq, ConjunctiveQuery((Atom("T", ("z",)),))))

    searches = {}
    for label, query in (("cq", safe_cq), ("union", safe_union)):
        searches[label] = _best_of(lambda q=query: lift_query(q), repeats)
    cq_plan = lift_query(safe_cq)
    union_plan = lift_query(safe_union)

    oracle_tid = non_h_tid(oracle_domain)
    lifted_identical = (
        evaluate_plan(cq_plan, oracle_tid)
        == probability_by_world_enumeration(safe_cq, oracle_tid)
        and evaluate_plan(union_plan, oracle_tid)
        == probability_by_world_enumeration(safe_union, oracle_tid)
    )

    big_tid = non_h_tid(big_domain)
    exact_seconds = _best_of(
        lambda: evaluate_plan(cq_plan, big_tid), repeats
    )
    float_seconds = _best_of(
        lambda: evaluate_plan_float(cq_plan, big_tid), repeats
    )
    batch_tids = [non_h_tid(big_domain) for _ in range(batch_size)]
    start = time.perf_counter()
    batch = evaluate_plan_batch(cq_plan, batch_tids)
    batch_seconds = time.perf_counter() - start
    batch_identical = batch == [
        evaluate_plan_float(cq_plan, tid) for tid in batch_tids
    ]

    # -- h-query parity through the lowered IR --------------------------
    h_parity_identical = True
    h_suite = 0
    for k in (1, 2):
        for phi in enumerate_monotone_functions(k + 1):
            if phi.is_bottom() or phi.is_top():
                continue
            candidate = HQuery(k, phi)
            if not extensional.is_safe(candidate):
                continue
            h_suite += 1
            parity_tid = complete_tid(k, 3, 3, prob=Fraction(1, 2))
            for tuple_id in parity_tid.instance.tuple_ids():
                parity_tid.set_probability(
                    tuple_id, Fraction(rng.randrange(0, 17), 16)
                )
            h_parity_identical = h_parity_identical and (
                extensional.probability(candidate, parity_tid)
                == seed_extensional_probability(candidate, parity_tid)
            )

    # -- both serving backends ------------------------------------------
    request_tids = [non_h_tid(4 + i) for i in range(serving_tids)]
    reference = [
        evaluate_plan_float(cq_plan, tid) for tid in request_tids
    ]
    by_backend = {}
    for backend in ("threads", "processes"):
        service = ShardedService(shards=2, backend=backend)
        try:
            responses = [
                service.submit(safe_cq, tid).result()
                for tid in request_tids
            ]
        finally:
            service.stop(wait=True)
        by_backend[backend] = [r.probability for r in responses]
        lifted_identical = lifted_identical and all(
            r.engine == "lifted" for r in responses
        )
    serving_backends_identical = (
        by_backend["threads"] == by_backend["processes"] == reference
    )

    return {
        "plan_search_cq_ms": searches["cq"] * 1e3,
        "plan_search_union_ms": searches["union"] * 1e3,
        "plan_ops_cq": cq_plan.op_count(),
        "plan_ops_union": union_plan.op_count(),
        "oracle_tuples": len(oracle_tid),
        "tuples": len(big_tid),
        "exact_ms": exact_seconds * 1e3,
        "float_ms": float_seconds * 1e3,
        "batch_size": batch_size,
        "batch_throughput_rps": batch_size / batch_seconds,
        "batch_vs_singles_bit_identical": batch_identical,
        "lifted_identical": lifted_identical,
        "h_suite_queries": h_suite,
        "h_parity_identical": h_parity_identical,
        "serving_backends_identical": serving_backends_identical,
    }


def bench_sampling(
    n=18,
    vector_samples=4000,
    scalar_kl_samples=200,
    scalar_mc_samples=30,
    repeats=3,
):
    """The vectorized sampling engine vs the scalar samplers (PR 5).

    On the canonical hard family (``H_3 = h_0 ∨ ... ∨ h_3`` over a
    complete instance of ``2n + 3n^2`` >= 1k tuples, every probability
    1/2 — #P-hard, far beyond brute force):

    * ``*_karp_luby_sps`` — samples/second of the scalar
      (incidence-fixed) ``karp_luby_probability`` vs the vectorized
      counter-stream sampler;
    * ``*_monte_carlo_sps`` — the same for Monte Carlo (the scalar
      re-grounds the query per sampled world; the vectorized path runs
      the clause-incidence bit-matrix);
    * ``draws_identical`` — the numpy path and the pure-Python fallback
      of the vectorized engine produce the same world matrix and the
      same fixed-seed estimate (a correctness gate, not a timing);
    * ``adaptive_*`` — budget-adaptive estimation: the adaptive run must
      meet the budget's (scale-relative) half-width with no more samples
      than the fixed-count worst case, and — the stream's prefix
      property — agree bit-for-bit with a fixed run of the same length
      (``adaptive_prefix_identical``).
    """
    from repro.db.tid import WorldSampler
    from repro.pqe.approximate import (
        AccuracyBudget,
        SamplingPlan,
        half_width,
        karp_luby_probability,
        monte_carlo_probability,
    )

    phi = BooleanFunction.bottom(4)
    for i in range(4):
        phi = phi | BooleanFunction.variable(i, 4)
    query = HQuery(3, phi)
    tid = complete_tid(3, n, n, prob=Fraction(1, 2))
    plan = SamplingPlan(query, tid)
    plan.run_fixed(64, seed=0)  # warm the cached lineage structure

    vector_kl_seconds = _best_of(
        lambda: plan.run_fixed(vector_samples, seed=1), repeats
    )
    scalar_kl_seconds = _best_of(
        lambda: karp_luby_probability(
            query, tid, scalar_kl_samples, random.Random(1)
        ),
        1,
    )
    mc_plan = SamplingPlan(query, tid, engine="monte_carlo")
    vector_mc_seconds = _best_of(
        lambda: mc_plan.run_fixed(vector_samples, seed=1), repeats
    )
    scalar_mc_seconds = _best_of(
        lambda: monte_carlo_probability(
            query, tid, scalar_mc_samples, random.Random(1)
        ),
        1,
    )

    # Backend equality: the correctness claim behind the speedup.
    sampler = WorldSampler(
        [tid.probability_of(t) for t in tid.instance.tuple_ids()], seed=9
    )
    matrix_numpy = sampler.sample(0, 96, use_numpy=True)
    matrix_python = sampler.sample(0, 96, use_numpy=False)
    draws_identical = (
        matrix_numpy.tolist() == matrix_python
        and plan.run_fixed(512, seed=9, use_numpy=True)
        == plan.run_fixed(512, seed=9, use_numpy=False)
    )

    budget = AccuracyBudget(epsilon=0.02, min_samples=100, seed=1)
    adaptive = plan.run(budget)
    fixed_samples = budget.samples()
    replay = plan.run_fixed(adaptive.samples, seed=1)
    scale = plan._scale()
    achieved_relative = (
        half_width(
            round(adaptive.value / scale * adaptive.samples),
            adaptive.samples,
            scale,
            "wilson",
        )
        / scale
    )
    adaptive_meets_budget = (
        adaptive.samples <= fixed_samples
        and (
            achieved_relative <= budget.epsilon
            or adaptive.samples == fixed_samples
        )
    )
    return {
        "tuples": len(tid),
        "clauses": len(plan._structure.clauses),
        "vector_samples": vector_samples,
        "scalar_karp_luby_sps": scalar_kl_samples / scalar_kl_seconds,
        "vectorized_karp_luby_sps": vector_samples / vector_kl_seconds,
        "karp_luby_speedup": (
            (vector_samples / vector_kl_seconds)
            / (scalar_kl_samples / scalar_kl_seconds)
        ),
        "scalar_monte_carlo_sps": scalar_mc_samples / scalar_mc_seconds,
        "vectorized_monte_carlo_sps": vector_samples / vector_mc_seconds,
        "monte_carlo_speedup": (
            (vector_samples / vector_mc_seconds)
            / (scalar_mc_samples / scalar_mc_seconds)
        ),
        "draws_identical": draws_identical,
        "adaptive_prefix_identical": (
            adaptive.value == replay.value
            and adaptive.samples == replay.samples
        ),
        "budget_epsilon": budget.epsilon,
        "fixed_samples": fixed_samples,
        "adaptive_samples": adaptive.samples,
        "adaptive_waves": adaptive.waves,
        "adaptive_meets_budget": adaptive_meets_budget,
        "achieved_relative_half_width": achieved_relative,
    }


def bench_resilience(rounds=40, slo_ms=250.0, seed=17):
    """Sustained overload under injected faults (PR 6).

    Floods a deliberately under-provisioned service (tiny queues,
    injected worker latency and errors) with a mixed-route workload
    carrying deadlines and priorities, and reports how the resilience
    layer holds the line: every request resolves (answer or typed
    error), the p99 of *served* requests stays within the SLO because
    late work is shed or degraded instead of queued, and degraded
    answers carry honest nonzero error bars.

    ``degraded_identical`` is the determinism gate
    (``check_bench_exactness.py`` enforces it): two sampling runs under
    degraded budgets derived from *different* remaining deadlines in the
    same power-of-two band must produce bit-identical estimates — the
    property that makes a degraded answer reproducible from
    ``(seed, budget)`` alone despite wall-clock jitter.
    """
    from concurrent.futures import wait as futures_wait

    from repro.core.deadline import DeadlineExceeded
    from repro.pqe.approximate import AccuracyBudget, sampling_plan
    from repro.serving import ShardedService, percentile
    from repro.serving.faults import FaultInjector, TransientFaultError
    from repro.serving.resilience import (
        CircuitBreakerOpen,
        RetryPolicy,
        ShardOverloaded,
        degraded_budget,
    )

    phi = BooleanFunction.bottom(4)
    for i in range(4):
        phi = phi | BooleanFunction.variable(i, 4)
    hard = HQuery(3, phi)
    hard_budget = AccuracyBudget(
        epsilon=0.3, min_samples=32, max_samples=1024, seed=seed
    )

    # --- the determinism gate: clock jitter quantizes away -------------
    gate_tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
    budget_a = degraded_budget(hard_budget, 400.0, samples_per_ms=100.0)
    budget_b = degraded_budget(hard_budget, 520.0, samples_per_ms=100.0)
    estimate_a = sampling_plan(hard, gate_tid).run(budget_a)
    estimate_b = sampling_plan(hard, gate_tid).run(budget_b)
    degraded_identical = (
        budget_a == budget_b
        and estimate_a == estimate_b
        and estimate_a.half_width > 0.0
    )

    # --- sustained overload -------------------------------------------
    injector = FaultInjector(
        seed=seed,
        error_rate=Fraction(1, 20),
        latency_rate=Fraction(1, 4),
        latency_ms=10.0,
    )
    service = ShardedService(
        shards=2,
        workers_per_shard=2,
        max_queue_depth=8,
        retry=RetryPolicy(attempts=2, base_delay_ms=0.5, max_delay_ms=2.0),
        fault_injector=injector,
    )
    # Teach every shard that exact brute force is hopeless (10 s per
    # request), so deadline-carrying hard queries degrade to sampling
    # — the warm-start hook exists for exactly this.
    for shard in service._shards:
        shard.observe_route_latency("brute_force", 10_000.0)

    safe_tids = [
        complete_tid(3, 2 + i, 2, prob=Fraction(1, 2)) for i in range(3)
    ]
    small_hard = complete_tid(3, 2, 2, prob=Fraction(1, 3))
    futures = []
    start = time.perf_counter()
    for i in range(rounds):
        for j, tid in enumerate(safe_tids):
            futures.append(
                service.submit(
                    q9(), tid, deadline_ms=slo_ms, priority=(i + j) % 3
                )
            )
        futures.append(
            service.submit(
                hard,
                small_hard,
                hard_budget,
                deadline_ms=slo_ms,
                priority=2,
            )
        )
    done, not_done = futures_wait(futures, timeout=120.0)
    wall_seconds = time.perf_counter() - start

    served, degraded = [], []
    shed = breaker_rejected = deadline_exceeded = failed = 0
    for future in done:
        error = future.exception()
        if error is None:
            response = future.result()
            served.append(response)
            if response.degraded:
                degraded.append(response)
        elif isinstance(error, ShardOverloaded):
            shed += 1
        elif isinstance(error, CircuitBreakerOpen):
            breaker_rejected += 1
        elif isinstance(error, DeadlineExceeded):
            deadline_exceeded += 1
        else:
            assert isinstance(error, TransientFaultError), repr(error)
            failed += 1

    latencies = []
    for shard in service._shards:
        latencies.extend(shard.latency_snapshot())
    stats = service.stats()
    service.close()
    p99 = percentile(latencies, 0.99)
    return {
        "rounds": rounds,
        "submitted": len(futures),
        "all_requests_resolved": not not_done,
        "wall_ms": wall_seconds * 1e3,
        "served": len(served),
        "shed": shed,
        "breaker_rejected": breaker_rejected,
        "deadline_exceeded": deadline_exceeded,
        "failed": failed,
        "shed_rate": shed / len(futures),
        "degraded": len(degraded),
        "degraded_fraction": (
            len(degraded) / len(served) if served else 0.0
        ),
        "degraded_half_width_positive": all(
            r.half_width > 0.0 for r in degraded
        ),
        "slo_ms": slo_ms,
        "p50_ms": percentile(latencies, 0.50) if latencies else 0.0,
        "p99_ms": p99,
        "p99_within_slo": bool(latencies) and p99 <= slo_ms,
        "breaker_state": stats.resilience.breaker_state,
        "retries": stats.resilience.retries,
        "injected": injector.stats(),
        "degraded_identical": degraded_identical,
        "degraded_budget_max_samples": budget_a.max_samples,
    }


def bench_replication(
    requests=96, straggler_ms=40.0, warmup=32, seed=23
):
    """Replication, hedged requests, and supervised crash recovery (PR 9).

    Part one (*hedging vs. stragglers*): a replicated instance served
    under seeded straggler injection — a deterministic fraction of serve
    attempts sleeps ``straggler_ms`` before answering — once with
    hedging disabled and once with a
    :class:`~repro.serving.resilience.HedgePolicy` whose delay is driven
    by the warmed per-route latency EWMAs.  Caller-observed latency is
    measured per request; the headline numbers are the two p99s.  A
    straggled primary pins its caller for the full sleep when unhedged;
    hedged, the backup replica answers in normal time and the straggler
    is retired cooperatively — so ``hedged_p99_ms`` must come in well
    under ``unhedged_p99_ms``.  ``hedged_identical`` is the exactness
    gate (``check_bench_exactness.py`` enforces it): every float from
    both runs equals the single-threaded ``evaluate_batch`` reference —
    which attempt wins a race is bit-invisible.

    Part two (*crash recovery*): on the process backend, SIGKILL a
    shard's worker and time the supervisor's detect → respawn → replay
    → first-served-response path (``recovery_ms``; breaker escalation
    disabled so the number is the supervision loop itself, not the
    breaker's reset window).
    """
    import os
    import signal

    from repro.pqe.engine import evaluate_batch
    from repro.serving import (
        FaultInjector,
        HedgePolicy,
        ShardedService,
        SupervisorPolicy,
        percentile,
    )

    query = q9()
    tid = complete_tid(3, 3, 2, prob=Fraction(1, 2))
    reference = evaluate_batch(query, [tid] * requests)

    def run(hedge):
        injector = FaultInjector(
            seed=seed,
            straggler_rate=Fraction(1, 12),
            straggler_ms=straggler_ms,
        )
        service = ShardedService(
            shards=2,
            workers_per_shard=2,
            hedge=hedge,
            fault_injector=injector,
        )
        try:
            service.register(tid, replicas=2)
            # Warm the route EWMAs with straggler-free traffic so the
            # hedge delay reflects the route's *normal* latency; the
            # injector lanes only start firing once real traffic runs
            # (warm-up consumes the leading schedule indices equally in
            # both runs).
            for shard in service._shards:
                shard.observe_route_latency("extensional", 0.5)
            latencies, probabilities = [], []
            for _ in range(requests):
                start = time.perf_counter()
                response = service.submit(query, tid).result(timeout=120)
                latencies.append((time.perf_counter() - start) * 1e3)
                probabilities.append(response.probability)
            stats = service.stats()
            return latencies, probabilities, stats, injector.stats()
        finally:
            service.stop(wait=True)

    unhedged_lat, unhedged_probs, _, unhedged_faults = run(
        HedgePolicy(max_backups=0)
    )
    # The delay cap matters: straggled attempts feed the route EWMA
    # too, so an uncapped quantile delay would creep toward the
    # straggler latency itself and stop hedging in time.
    hedge = HedgePolicy(
        quantile_z=3.0, min_delay_ms=1.0, max_delay_ms=5.0, seed=seed
    )
    hedged_lat, hedged_probs, hedged_stats, hedged_faults = run(hedge)

    hedged_identical = (
        unhedged_probs == reference.probabilities
        and hedged_probs == reference.probabilities
    )

    # --- crash recovery on the process backend -------------------------
    recovery_ms = respawn_ms = None
    restarts = 0
    recovered_identical = False
    service = ShardedService(
        shards=1,
        workers_per_shard=1,
        backend="processes",
        supervisor=SupervisorPolicy(trip_breaker_on_death=False),
    )
    try:
        service.register(tid)
        before = service.submit(query, tid).result(timeout=120)
        shard = service._shards[0]
        killed_at = time.perf_counter()
        os.kill(shard._client._process.pid, signal.SIGKILL)
        after = None
        while time.perf_counter() - killed_at < 30.0:
            try:
                after = service.submit(query, tid).result(timeout=120)
                break
            except Exception:
                time.sleep(0.001)
        recovery_ms = (time.perf_counter() - killed_at) * 1e3
        supervisor = shard.stats().supervisor
        respawn_ms = supervisor.respawn_ms
        restarts = supervisor.restarts
        recovered_identical = (
            after is not None
            and after.probability == before.probability
            and before.probability == reference.probabilities[0]
        )
    finally:
        service.stop(wait=True)

    return {
        "requests": requests,
        "straggler_ms": straggler_ms,
        "straggler_rate": "1/12",
        "unhedged_p50_ms": percentile(unhedged_lat, 0.50),
        "unhedged_p99_ms": percentile(unhedged_lat, 0.99),
        "unhedged_stragglers": unhedged_faults["straggler_events"],
        "hedged_p50_ms": percentile(hedged_lat, 0.50),
        "hedged_p99_ms": percentile(hedged_lat, 0.99),
        "hedged_stragglers": hedged_faults["straggler_events"],
        "hedged_p99_improvement": (
            percentile(unhedged_lat, 0.99) / percentile(hedged_lat, 0.99)
            if percentile(hedged_lat, 0.99) > 0
            else 0.0
        ),
        "hedges_launched": hedged_stats.hedging.launched,
        "backup_wins": hedged_stats.hedging.backup_wins,
        "hedges_cancelled": hedged_stats.hedging.cancelled,
        "replicas_placed": hedged_stats.replication.replicas_placed,
        "spread": hedged_stats.replication.spread,
        "hedged_identical": hedged_identical,
        "recovery_ms": recovery_ms,
        "supervisor_respawn_ms": respawn_ms,
        "supervisor_restarts": restarts,
        "recovered_identical": recovered_identical,
    }


def bench_gateway(requests=48, seed=29):
    """The durable gateway edge: drain, crash recovery, idempotency (PR 10).

    A :class:`~repro.serving.gateway.GatewayServer` with a registration
    journal, measured over real TCP from a blocking JSON-lines client:

    - **Idempotent retries**: every query carries an ``idempotency_key``
      and is sent twice; the retry must replay the recorded reply from
      the gateway's response journal without re-executing
      (``idempotent_hit_rate`` is 1.0 when every retry hit).
    - **Crash recovery**: the gateway is torn down SIGKILL-style
      (``restart(graceful=False)``) and ``recovery_ms`` times the full
      crash → journal replay → listener up → first answered query path.
    - **Graceful drain**: with a sampled query still in flight,
      ``drain_ms`` times the drain ladder and ``drain_clean`` records
      that the grace window emptied the gateway without cancelling it.

    ``recovered_identical`` is the exactness gate
    (``check_bench_exactness.py`` enforces it): the post-crash gateway,
    rebuilt purely from the journal, must serve bit-identical floats for
    both the exact and the seeded-sampling route — recovery is invisible
    in every answer.
    """
    import socket
    import tempfile
    import threading

    from repro.serving import GatewayServer, ShardedService

    class _Client:
        def __init__(self, port):
            self._sock = socket.create_connection(
                ("127.0.0.1", port), timeout=60
            )
            self._file = self._sock.makefile("rw")

        def rpc(self, message):
            self._file.write(json.dumps(message) + "\n")
            self._file.flush()
            return json.loads(self._file.readline())

        def send(self, message):
            self._file.write(json.dumps(message) + "\n")
            self._file.flush()

        def recv(self):
            return json.loads(self._file.readline())

        def close(self):
            self._file.close()
            self._sock.close()

    def sans_latency(response):
        return {
            k: v for k, v in response.items() if k != "latency_ms"
        }

    big = complete_tid(3, 3, 3, prob=Fraction(1, 3))
    big_facts = [
        [
            t.relation,
            list(t.values),
            [
                big.probability_of(t).numerator,
                big.probability_of(t).denominator,
            ],
        ]
        for t in big.instance.tuple_ids()
    ]
    phi = BooleanFunction.bottom(4)
    for i in range(4):
        phi = phi | BooleanFunction.variable(i, 4)
    hard_payload = {"k": 3, "nvars": 4, "table": phi.table}
    safe_payload = {"k": 1, "nvars": 2, "table": 10}
    small_facts = [
        ["R", [1], [1, 2]],
        ["S1", [1, 2]],
        ["T", [2], [2, 3]],
    ]

    def query_message(i, keyed=True):
        if i % 2 == 0:
            body = {"instance": "orders", "query": safe_payload}
        else:
            body = {
                "instance": "big",
                "query": hard_payload,
                "budget": {"epsilon": 0.1, "seed": seed},
            }
        message = {"op": "query", "id": 100 + i, **body}
        if keyed:
            message["idempotency_key"] = f"req-{i}"
        return message

    service = ShardedService(shards=2, workers_per_shard=2)
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        server = GatewayServer(
            service, journal_path=f"{tmp}/edge.journal"
        )
        server.start()
        try:
            client = _Client(server.port)
            client.rpc(
                {
                    "op": "register",
                    "id": 0,
                    "instance": "orders",
                    "facts": small_facts,
                }
            )
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "big",
                    "facts": big_facts,
                }
            )

            # --- idempotent retries: every request, sent twice -------
            first_pass = [
                client.rpc(query_message(i)) for i in range(requests)
            ]
            retry_start = time.perf_counter()
            second_pass = [
                client.rpc(query_message(i)) for i in range(requests)
            ]
            retry_wall_ms = (time.perf_counter() - retry_start) * 1e3
            replayed_verbatim = all(
                sans_latency(a["response"]) == sans_latency(b["response"])
                for a, b in zip(first_pass, second_pass)
            )
            stats = client.rpc({"op": "stats", "id": 900})
            idem = stats["gateway"]["idempotency"]
            service_requests_before = stats["stats"]["requests"]

            # --- crash → journal replay → first answer ---------------
            before_exact = client.rpc(query_message(0, keyed=False))
            before_sampled = client.rpc(query_message(1, keyed=False))
            client.close()
            crash_start = time.perf_counter()
            server.restart(graceful=False)
            after_exact = None
            while time.perf_counter() - crash_start < 30.0:
                try:
                    client = _Client(server.port)
                    after_exact = client.rpc(query_message(0, keyed=False))
                    break
                except OSError:
                    time.sleep(0.001)
            recovery_ms = (time.perf_counter() - crash_start) * 1e3
            after_sampled = client.rpc(query_message(1, keyed=False))
            recovered = client.rpc({"op": "stats", "id": 901})
            recovered_identical = (
                after_exact is not None
                and after_exact["ok"]
                and before_exact["ok"]
                and sans_latency(after_exact["response"])
                == sans_latency(before_exact["response"])
                and sans_latency(after_sampled["response"])
                == sans_latency(before_sampled["response"])
            )

            # --- graceful drain with work in flight ------------------
            client.send(
                {
                    "op": "query",
                    "id": 902,
                    "instance": "big",
                    "query": hard_payload,
                    "budget": {
                        "epsilon": 0.01,
                        "min_samples": 50_000,
                        "max_samples": 50_000,
                        "seed": seed,
                        "adaptive": False,
                    },
                }
            )
            time.sleep(0.05)  # admitted: the drain has work to wait on
            drain_start = time.perf_counter()
            drained: dict = {}

            def drain():
                drained["clean"] = server.drain(grace_ms=60_000.0)

            drainer = threading.Thread(target=drain)
            drainer.start()
            inflight_reply = client.recv()  # finishes under the drain
            drainer.join(timeout=120)
            drain_ms = (time.perf_counter() - drain_start) * 1e3
            client.close()

            results = {
                "requests": requests,
                "idempotent_keyed": 2 * requests,
                "idempotent_hits": idem["hits"],
                "idempotent_hit_rate": idem["hits"] / requests,
                "idempotent_replayed_verbatim": replayed_verbatim,
                "retry_wall_ms": retry_wall_ms,
                "service_requests_for_2x_workload": (
                    service_requests_before
                ),
                "recovery_ms": recovery_ms,
                "journal_replayed_instances": recovered["gateway"][
                    "replayed_instances"
                ],
                "recovered_identical": recovered_identical,
                "drain_ms": drain_ms,
                "drain_clean": drained.get("clean", False),
                "drained_inflight_answered": inflight_reply.get(
                    "ok", False
                ),
            }
        finally:
            server.stop()
            service.stop(wait=True)
    return results


SECTIONS = {
    "single_float": bench_single_float,
    "batch": bench_batch,
    "exact": bench_exact,
    "grounding": bench_grounding,
    "compilation": bench_compilation,
    "serving": bench_serving,
    "extensional": bench_extensional,
    "lifted": bench_lifted,
    "sampling": bench_sampling,
    "resilience": bench_resilience,
    "replication": bench_replication,
    "gateway": bench_gateway,
}


def run_all(sections=None):
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    selected = list(SECTIONS) if sections is None else list(sections)
    results = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": numpy_version,
            "unix_time": time.time(),
        },
    }
    for name in selected:
        section = SECTIONS[name]()
        # Every section is stamped individually: merged partial reruns
        # keep an honest record of when each number was measured.
        section["recorded_unix_time"] = time.time()
        results[name] = section
    return results


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Run the evaluation/serving benchmarks and write "
        "BENCH_evaluation.json"
    )
    parser.add_argument(
        "--sections",
        nargs="+",
        choices=sorted(SECTIONS),
        default=None,
        help="run only these sections and merge them into the existing "
        "BENCH_evaluation.json, keeping untouched sections (default: "
        "all sections)",
    )
    args = parser.parse_args(argv)
    results = run_all(args.sections)
    if RESULT_PATH.exists():
        # Always merge: a partial rerun (--sections) must preserve every
        # untouched section's numbers and timestamps rather than
        # silently dropping the rest of the perf trajectory.
        merged = json.loads(RESULT_PATH.read_text())
        merged.update(results)
        results = merged
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()

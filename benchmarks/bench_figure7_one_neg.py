"""E6 — Figure 7: the monotone function phi_oneneg (k = 5).

The figure's role: the "or" in Conjecture 1 is necessary — there is a
monotone zero-Euler function whose *colored* subgraph has no perfect
matching (the top valuation would need to be matched with both 01234 and
01345) while the *uncolored* one has one.  As for Figure 5 the exact colors
are searched from the stated properties (DESIGN.md §3).
"""

from __future__ import annotations

from conftest import banner

from repro.core import valuations as v
from repro.core.zoo import find_phi_one_neg, is_phi_one_neg_witness
from repro.matching.conjecture import check_function
from repro.viz.colored_graph import render_colored_graph, render_matching_facts


def test_figure7_witness(benchmark):
    print(banner("E6 / Figure 7", "phi_oneneg: the 'or' is necessary"))
    phi = benchmark(find_phi_one_neg)
    print(render_colored_graph(phi))
    print(render_matching_facts(phi))
    print("minimal models:",
          sorted(tuple(sorted(m)) for m in phi.minimal_models()))
    assert is_phi_one_neg_witness(phi)
    verdict = check_function(phi)
    assert not verdict.colored_has_pm
    assert verdict.uncolored_has_pm


def test_figure7_blocked_top_structure():
    print(banner("E6 / Figure 7 (structure)",
                 "both 01234 and 01345 can only match the top valuation"))
    phi = find_phi_one_neg()
    top = (1 << 6) - 1
    for label, node in (("01234", v.set_to_mask({0, 1, 2, 3, 4})),
                        ("01345", v.set_to_mask({0, 1, 3, 4, 5}))):
        neighbors = [n for n in v.neighbors(node, 6) if phi(n)]
        print(f"colored neighbors of {label}: "
              f"{[f'{n:06b}' for n in neighbors]}")
        assert neighbors == [top]

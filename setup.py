"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` through pyproject.toml
alone) fail with ``invalid command 'bdist_wheel'``.  This file enables the
legacy editable path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

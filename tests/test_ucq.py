"""Tests for the explicit UCQ view of monotone H-queries."""

from __future__ import annotations

import random

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import random_tid
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.hqueries import HQuery, q9
from repro.queries.lineage import lineage_equivalent, ucq_lineage_dnf_circuit
from repro.queries.ucq import UnionOfCQs, conjoin_cqs, hquery_to_ucq


class TestConjoin:
    def test_variables_renamed_apart(self):
        cq = ConjunctiveQuery((Atom("S1", ("x", "y")),))
        joined = conjoin_cqs([cq, cq])
        assert len(joined.atoms) == 2
        assert len(joined.variables()) == 4

    def test_conjunction_semantics(self):
        from repro.db.relation import Instance

        db = Instance()
        db.add("R", ("a",))
        db.add("S1", ("a", "b"))
        db.add("S2", ("c", "d"))
        left = ConjunctiveQuery((Atom("R", ("x",)), Atom("S1", ("x", "y"))))
        right = ConjunctiveQuery((Atom("S2", ("u", "v")),))
        joined = conjoin_cqs([left, right])
        assert joined.holds_in(db)
        db2 = Instance()
        db2.add("R", ("a",))
        db2.add("S1", ("a", "b"))
        db2.declare("S2", 2)
        assert not joined.holds_in(db2)


class TestTranslation:
    def test_q9_disjunct_count(self):
        ucq = hquery_to_ucq(q9())
        # phi_9's minimized DNF has 4 clauses.
        assert len(ucq.disjuncts) == 4

    def test_rejects_non_monotone(self):
        phi = BooleanFunction.from_satisfying(4, [{0}])
        with pytest.raises(ValueError):
            hquery_to_ucq(HQuery(3, phi))

    def test_top_is_tautology(self):
        ucq = hquery_to_ucq(HQuery(2, BooleanFunction.top(3)))
        from repro.db.relation import Instance

        assert ucq.holds_in(Instance())

    def test_bottom_is_empty_union(self):
        ucq = hquery_to_ucq(HQuery(2, BooleanFunction.bottom(3)))
        from repro.db.relation import Instance

        assert not ucq.holds_in(Instance())
        assert ucq.disjuncts == ()


class TestSemanticEquivalence:
    """The UCQ's first-order semantics must agree with the H-query's
    truth-functional semantics on every world — the content of the
    'equivalent to UCQs' remark in Definition 3.2."""

    def test_q9_on_random_worlds(self):
        rng = random.Random(61)
        ucq = hquery_to_ucq(q9())
        for _ in range(4):
            tid = random_tid(3, 2, 2, rng, tuple_density=0.5)
            assert ucq.holds_in(tid.instance) == q9().holds_in(tid.instance)

    def test_random_monotone_functions_on_random_worlds(self):
        rng = random.Random(62)
        for _ in range(10):
            phi = BooleanFunction.random_monotone(4, rng)
            query = HQuery(3, phi)
            ucq = hquery_to_ucq(query)
            tid = random_tid(3, 2, 2, rng, tuple_density=0.4)
            assert ucq.holds_in(tid.instance) == query.holds_in(
                tid.instance
            ), phi

    def test_subworld_equivalence(self):
        # Exhaustive over all sub-instances of a small instance.
        rng = random.Random(63)
        tid = random_tid(2, 2, 2, rng, tuple_density=0.5)
        if len(tid) > 10:
            tid = random_tid(2, 2, 1, rng, tuple_density=0.4)
        phi = BooleanFunction.random_monotone(3, rng)
        query = HQuery(2, phi)
        ucq = hquery_to_ucq(query)
        tuple_ids = tid.instance.tuple_ids()
        for mask in range(1 << len(tuple_ids)):
            present = frozenset(
                tuple_ids[j] for j in range(len(tuple_ids)) if mask >> j & 1
            )
            world = tid.instance.restrict_to(present)
            assert ucq.holds_in(world) == query.holds_in(world)


class TestUcqLineage:
    def test_dnf_lineage_matches_module_level_one(self):
        rng = random.Random(64)
        tid = random_tid(3, 2, 2, rng, tuple_density=0.4)
        if len(tid) > 12:
            tid = random_tid(3, 2, 1, rng, tuple_density=0.4)
        ucq = hquery_to_ucq(q9())
        circuit_a = ucq.lineage_circuit(tid.instance)
        circuit_b = ucq_lineage_dnf_circuit(q9(), tid.instance)
        assert lineage_equivalent(circuit_a, circuit_b, tid.instance)

    def test_lineage_is_monotone_dnf(self):
        from repro.circuits.circuit import GateKind

        rng = random.Random(65)
        tid = random_tid(2, 2, 2, rng, tuple_density=0.5)
        ucq = hquery_to_ucq(HQuery(2, BooleanFunction.random_monotone(3, rng)))
        circuit = ucq.lineage_circuit(tid.instance)
        kinds = {gate.kind for _, gate in circuit.gates()}
        assert GateKind.NOT not in kinds


class TestUnionOfCQs:
    def test_relations(self):
        ucq = hquery_to_ucq(q9())
        assert ucq.relations() == {"R", "S1", "S2", "S3", "T"}

    def test_str(self):
        ucq = hquery_to_ucq(q9())
        assert "∨" in str(ucq)

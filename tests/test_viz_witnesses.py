"""Rendering tests for the searched figure witnesses (Figures 5 and 7)."""

from __future__ import annotations

from repro.core.zoo import find_phi_no_pm, find_phi_one_neg
from repro.viz.colored_graph import render_colored_graph, render_matching_facts


class TestFigure5Rendering:
    def test_levels_present(self):
        text = render_colored_graph(find_phi_no_pm())
        # k = 4: levels 0..5.
        for size in range(6):
            assert f"|nu|={size}:" in text

    def test_matching_facts_report_no_pm(self):
        text = render_matching_facts(find_phi_no_pm())
        assert "colored subgraph has perfect matching:   False" in text
        assert "uncolored subgraph has perfect matching: False" in text

    def test_isolated_nodes_reported(self):
        text = render_matching_facts(find_phi_no_pm())
        assert "isolated colored nodes:" in text
        assert "34" in text  # the paper's {3,4}
        assert "isolated uncolored nodes:" in text
        assert "034" in text  # the paper's {0,3,4}


class TestFigure7Rendering:
    def test_one_sided_matching_reported(self):
        text = render_matching_facts(find_phi_one_neg())
        assert "colored subgraph has perfect matching:   False" in text
        assert "uncolored subgraph has perfect matching: True" in text

    def test_top_valuation_colored(self):
        text = render_colored_graph(find_phi_one_neg())
        assert "[012345]" in text
        assert "e(phi) = +0" in text

"""Property tests for the probability polynomial P^phi(t)."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_function import BooleanFunction
from repro.lattice.polynomials import Polynomial, probability_polynomial


def tables(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1)


class TestEndpointValues:
    @given(tables(4))
    def test_value_at_zero_is_empty_valuation(self, table):
        phi = BooleanFunction(4, table)
        # At t = 0 only the all-absent valuation has mass.
        assert probability_polynomial(phi)(Fraction(0)) == (
            1 if phi(0) else 0
        )

    @given(tables(4))
    def test_value_at_one_is_full_valuation(self, table):
        phi = BooleanFunction(4, table)
        full = (1 << 4) - 1
        assert probability_polynomial(phi)(Fraction(1)) == (
            1 if phi(full) else 0
        )

    @given(tables(4))
    def test_degree_bounded_by_nvars(self, table):
        phi = BooleanFunction(4, table)
        assert probability_polynomial(phi).degree <= 4


class TestAlgebraicLaws:
    @given(tables(3), tables(3))
    @settings(max_examples=50)
    def test_complementation(self, ta, tb):
        phi = BooleanFunction(3, ta)
        del tb
        p = probability_polynomial(phi)
        q = probability_polynomial(~phi)
        assert (p + q) == Polynomial.constant(1)

    @given(tables(3), tables(3))
    @settings(max_examples=50)
    def test_disjoint_additivity(self, ta, tb):
        a = BooleanFunction(3, ta)
        b = BooleanFunction(3, tb) & ~a  # force disjointness
        assert probability_polynomial(a | b) == (
            probability_polynomial(a) + probability_polynomial(b)
        )

    @given(tables(4))
    @settings(max_examples=50)
    def test_values_in_unit_interval(self, table):
        phi = BooleanFunction(4, table)
        p = probability_polynomial(phi)
        for numerator in range(0, 5):
            value = p(Fraction(numerator, 4))
            assert 0 <= value <= 1

    @given(tables(3))
    @settings(max_examples=50)
    def test_monotone_implies_nondecreasing(self, table):
        phi = BooleanFunction(3, table).up_closure()
        p = probability_polynomial(phi)
        previous = p(Fraction(0))
        for numerator in range(1, 9):
            current = p(Fraction(numerator, 8))
            assert current >= previous
            previous = current


class TestIndependentProduct:
    def test_product_on_disjoint_variables(self):
        # phi depending only on {0,1} times psi depending only on {2}:
        # P of the conjunction is the product.
        a = BooleanFunction.variable(0, 3) & BooleanFunction.variable(1, 3)
        b = BooleanFunction.variable(2, 3)
        assert probability_polynomial(a & b) == (
            probability_polynomial(a) * probability_polynomial(b)
        )

"""Tests for the Figure-1 region renderer."""

from __future__ import annotations

from repro.viz.figure1 import figure1_counts, render_figure1


class TestFigure1Counts:
    def test_partition_k1(self):
        cells = figure1_counts(1)
        assert sum(cells.values()) == 16

    def test_partition_k2(self):
        cells = figure1_counts(2)
        assert sum(cells.values()) == 256
        # Monotone functions total the Dedekind number M(3) = 20.
        monotone = (
            cells["degenerate_monotone"]
            + cells["zero_euler_monotone"]
            + cells["hard_monotone"]
        )
        assert monotone == 20

    def test_zero_euler_totals_match_footnote6(self):
        from repro.core.euler import count_zero_euler_functions

        cells = figure1_counts(2)
        zero_euler = (
            cells["degenerate_monotone"]
            + cells["degenerate_general"]
            + cells["zero_euler_monotone"]
            + cells["zero_euler_general"]
        )
        assert zero_euler == count_zero_euler_functions(2)

    def test_monotone_never_conjectured(self):
        # By [12] every UCQ is classified; the conjectured region is
        # entirely non-monotone (the renderer relies on this).
        cells = figure1_counts(2)
        assert "conjectured_monotone" not in cells


class TestRendering:
    def test_render_contains_counts(self):
        text = render_figure1(1)
        assert "k = 1: 16 functions" in text
        assert "H+" in text
        assert "conjectured" in text

    def test_render_k2(self):
        text = render_figure1(2)
        assert "256 functions" in text

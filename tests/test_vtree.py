"""Tests for v-trees and structured decomposability."""

from __future__ import annotations

import random

import pytest

from repro.circuits import Circuit
from repro.circuits.vtree import (
    VtreeLeaf,
    VtreeNode,
    respects_vtree,
    right_linear_vtree,
    validate_vtree,
    vtree_of_read_once,
    vtree_variables,
)


def split_circuit() -> Circuit:
    """(a ∧ b) ∨ (¬a ∧ c) — a small decomposable circuit."""
    circuit = Circuit()
    a, b, c = (circuit.add_var(v) for v in "abc")
    left = circuit.add_and([a, b])
    right = circuit.add_and([circuit.add_not(a), c])
    circuit.set_output(circuit.add_or([left, right]))
    return circuit


class TestVtreeStructure:
    def test_variables(self):
        tree = right_linear_vtree(["a", "b", "c"])
        assert vtree_variables(tree) == frozenset("abc")

    def test_validate_rejects_duplicates(self):
        tree = VtreeNode(VtreeLeaf("a"), VtreeLeaf("a"))
        with pytest.raises(ValueError):
            validate_vtree(tree)

    def test_right_linear_shape(self):
        tree = right_linear_vtree(["a", "b", "c"])
        assert isinstance(tree, VtreeNode)
        assert tree.left == VtreeLeaf("a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            right_linear_vtree([])


class TestRespects:
    def test_split_circuit_respects_matching_tree(self):
        # a | (b, c): the ∧-gates split {a}×{b} and {a}×{c}.
        tree = VtreeNode(
            VtreeLeaf("a"), VtreeNode(VtreeLeaf("b"), VtreeLeaf("c"))
        )
        assert respects_vtree(split_circuit(), tree)

    def test_split_circuit_rejects_wrong_tree(self):
        # (a, b) | c separates {a,b} from {c}: the gate (¬a ∧ c) crosses it,
        # but {a} vs {c} fits under the root... construct a genuinely
        # incompatible case instead: ((b | c) | a) forces a-vs-b and a-vs-c
        # splits only at the root; the gate (a ∧ b) needs {a}×{b}, which the
        # root provides only as {b,c}-vs-{a}: {b} ⊆ {b,c} and {a} ⊆ {a} ✓.
        # To get a rejection, use a circuit whose ∧ joins {a,b} with {b}...
        circuit = Circuit()
        a, b, c = (circuit.add_var(v) for v in "abc")
        ab = circuit.add_and([a, b])
        circuit.set_output(circuit.add_and([ab, c]))
        # v-tree (a | (c | b)): the inner fold {a}×{b} is fine (a vs right
        # subtree), but the outer fold {a,b}×{c} is not separable: {a,b}
        # is not contained in any single side together against {c}.
        tree = VtreeNode(
            VtreeLeaf("a"), VtreeNode(VtreeLeaf("c"), VtreeLeaf("b"))
        )
        assert not respects_vtree(circuit, tree)

    def test_constants_unconstrained(self):
        circuit = Circuit()
        a = circuit.add_var("a")
        circuit.set_output(circuit.add_and([a, circuit.add_const(True)]))
        assert respects_vtree(circuit, VtreeLeaf("a"))

    def test_nary_and_folds(self):
        circuit = Circuit()
        a, b, c = (circuit.add_var(v) for v in "abc")
        circuit.set_output(circuit.add_and([a, b, c]))
        tree = VtreeNode(
            VtreeNode(VtreeLeaf("a"), VtreeLeaf("b")), VtreeLeaf("c")
        )
        assert respects_vtree(circuit, tree)


class TestInducedVtree:
    def test_read_once_circuit_respects_own_vtree(self):
        from repro.db.tid import TupleIndependentDatabase
        from repro.queries.cq import Atom, ConjunctiveQuery
        from repro.queries.hierarchical import read_once_lineage

        rng = random.Random(5)
        tid = TupleIndependentDatabase()
        from fractions import Fraction

        for x in ("a", "b"):
            tid.add("R", (x,), Fraction(1, 2))
            for y in ("c", "d"):
                if rng.random() < 0.8:
                    tid.add("S", (x, y), Fraction(1, 2))
        query = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S", ("x", "y")))
        )
        circuit = read_once_lineage(query, tid)
        tree = vtree_of_read_once(circuit)
        assert respects_vtree(circuit, tree)

    def test_constant_circuit_rejected(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_const(True))
        with pytest.raises(ValueError):
            vtree_of_read_once(circuit)

    def test_compiled_hquery_lineage_not_structured_by_linear_tree(self):
        # The d-Ds compiled for nondegenerate H-queries are not expected to
        # be structured by an arbitrary (right-linear) v-tree — consistent
        # with the d-SDNNF lower bound of [9] that motivated the paper's
        # move to unrestricted d-Ds.  (Not a lower-bound proof, just the
        # observable shape.)
        from repro.db.generator import complete_tid
        from repro.pqe.intensional import compile_lineage
        from repro.queries.hqueries import q9

        tid = complete_tid(3, 2, 2)
        compiled = compile_lineage(q9(), tid.instance)
        labels = sorted(compiled.circuit.variables(), key=repr)
        tree = right_linear_vtree(labels)
        assert not respects_vtree(compiled.circuit, tree)

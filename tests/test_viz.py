"""Tests for the figure renderers."""

from __future__ import annotations

from repro.core.boolean_function import BooleanFunction
from repro.core.transformation import Step
from repro.lattice.cnf_lattice import cnf_lattice
from repro.queries.hqueries import phi_9
from repro.viz import (
    render_colored_graph,
    render_edges,
    render_hasse,
    render_matching_facts,
    render_transformation,
)


class TestHasseRendering:
    def test_figure2_content(self):
        text = render_hasse(cnf_lattice(phi_9()))
        assert "∅" in text
        assert "mu=+1" in text and "mu=-1" in text
        assert "mu(0-hat, 1-hat) = +0" in text

    def test_edges_rendering(self):
        text = render_edges(cnf_lattice(phi_9()))
        # The Hasse diagram of Figure 2 has 14 covering edges: 4 below the
        # top, 6 in the middle band, 4 above the bottom.
        assert len(text.strip().splitlines()) == 14


class TestColoredGraphRendering:
    def test_figure3_content(self):
        text = render_colored_graph(phi_9())
        assert "|nu|=0" in text and "|nu|=4" in text
        assert "[0123]" in text  # the top valuation is colored
        assert "(∅)" in text  # the empty valuation is not
        assert "e(phi) = +0" in text

    def test_matching_facts(self):
        text = render_matching_facts(phi_9())
        assert "colored subgraph has perfect matching:   True" in text

    def test_transformation_rendering(self):
        phi = BooleanFunction.from_satisfying(2, [0b00, 0b01])
        text = render_transformation(phi, [Step(-1, 0b00, 0)])
        assert text.count("e(phi)") == 2
        assert "after" in text

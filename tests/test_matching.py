"""Tests for hypercube graphs, perfect matchings and Conjecture 1."""

from __future__ import annotations

import random

from repro.core.boolean_function import BooleanFunction
from repro.core.transformation import apply_steps
from repro.matching import (
    ColoredGraph,
    check_function,
    colored_matching,
    has_perfect_matching,
    hypercube_graph,
    maximum_matching_of_induced,
    steps_from_matching,
    uncolored_matching,
    verify_exhaustive,
    verify_over,
)
from repro.queries.hqueries import phi_9


class TestHypercubeGraph:
    def test_node_and_edge_counts(self):
        graph = hypercube_graph(4)
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 4 * 8  # n * 2^{n-1}

    def test_bipartite_by_parity(self):
        graph = hypercube_graph(3)
        for a, b in graph.edges:
            assert (bin(a).count("1") + bin(b).count("1")) % 2 == 1


class TestColoredGraph:
    def test_phi9_coloring(self):
        colored = ColoredGraph(phi_9())
        assert len(colored.colored) == 8
        assert len(colored.uncolored) == 8
        assert colored.euler_characteristic() == 0

    def test_levels(self):
        levels = ColoredGraph(phi_9()).levels()
        assert [len(level) for level in levels] == [1, 4, 6, 4, 1]

    def test_isolated_nodes(self):
        # phi with exactly one model has it isolated among colored nodes.
        phi = BooleanFunction.exactly(3, {0, 1})
        colored = ColoredGraph(phi)
        assert colored.isolated_colored_nodes() == [0b011]


class TestPerfectMatching:
    def test_empty_graph_has_pm(self):
        phi = BooleanFunction.bottom(3)
        assert has_perfect_matching(ColoredGraph(phi).colored_subgraph())

    def test_odd_count_no_pm(self):
        phi = BooleanFunction.exactly(3, [])
        assert not has_perfect_matching(ColoredGraph(phi).colored_subgraph())

    def test_adjacent_pair_has_pm(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b001])
        assert has_perfect_matching(ColoredGraph(phi).colored_subgraph())

    def test_antipodal_pair_no_pm(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b111])
        assert not has_perfect_matching(ColoredGraph(phi).colored_subgraph())

    def test_matching_output_valid(self):
        phi = phi_9()
        pairs = colored_matching(phi)
        assert pairs is not None
        seen = set()
        for a, b in pairs:
            assert (a ^ b).bit_count() == 1
            assert phi(a) and phi(b)
            seen.update((a, b))
        assert seen == set(phi.satisfying_masks())

    def test_maximum_matching_is_symmetric_dict(self):
        phi = phi_9()
        matching = maximum_matching_of_induced(
            ColoredGraph(phi).colored_subgraph()
        )
        for a, b in matching.items():
            assert matching[b] == a

    def test_uncolored_matching(self):
        phi = phi_9()
        pairs = uncolored_matching(phi)
        assert pairs is not None
        for a, b in pairs:
            assert not phi(a) and not phi(b)

    def test_steps_from_matching_reach_bottom(self):
        phi = phi_9()
        pairs = colored_matching(phi)
        steps = steps_from_matching(phi, pairs)
        assert apply_steps(phi, steps).is_bottom()
        assert all(step.sign == -1 for step in steps)


class TestConjecture1:
    def test_phi9_verdict(self):
        verdict = check_function(phi_9())
        assert verdict.euler == 0
        assert verdict.colored_has_pm
        assert verdict.satisfies_conjecture

    def test_exhaustive_k1(self):
        report = verify_exhaustive(1)
        assert report.holds
        assert report.checked == 6  # M(2) monotone functions
        assert report.zero_euler > 0

    def test_exhaustive_k2(self):
        report = verify_exhaustive(2)
        assert report.holds
        assert report.checked == 20  # M(3)

    def test_exhaustive_k3(self):
        report = verify_exhaustive(3)
        assert report.holds
        assert report.checked == 168  # M(4)

    def test_counterexample_without_monotonicity(self):
        # Figure 5's point: the conjecture fails for non-monotone functions.
        from repro.core.zoo import find_phi_no_pm

        phi = find_phi_no_pm()
        verdict = check_function(phi)
        assert verdict.euler == 0
        assert not verdict.satisfies_conjecture

    def test_verify_over_skips_nonzero_euler(self):
        phi = BooleanFunction.exactly(3, [])  # e = 1
        report = verify_over([phi])
        assert report.checked == 1
        assert report.zero_euler == 0
        assert report.holds

    def test_sampled_monotone(self):
        rng = random.Random(3)
        functions = [
            BooleanFunction.random_monotone(5, rng) for _ in range(40)
        ]
        report = verify_over(functions)
        assert report.holds

"""Stress tests: the full pipeline on the paper's larger zoo functions.

The figure witnesses live at k = 4 and k = 5 (32- and 64-valuation truth
tables); these tests push the complete machinery — derivations,
fragmentations, compilation, probability — through them, plus a manually
assembled fragmentation exercising the general degenerate-leaf fallback of
the circuit plugger.
"""

from __future__ import annotations

from fractions import Fraction

from repro.circuits import assert_d_d
from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import (
    Fragmentation,
    Hole,
    NegOrTemplate,
    OrNode,
    fragment,
)
from repro.core.transformation import apply_steps, reduce_to_bottom
from repro.core.zoo import find_phi_no_pm, find_phi_one_neg
from repro.db.generator import complete_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.intensional import _plug_template, compile_lineage
from repro.queries.hqueries import HQuery


class TestPhiNoPmPipeline:
    """k = 4: the Figure-5 witness through the whole stack."""

    def test_derivation_and_fragmentation(self):
        phi = find_phi_no_pm()
        steps = reduce_to_bottom(phi)
        assert apply_steps(phi, steps).is_bottom()
        fragmentation = fragment(phi)
        assert fragmentation.verify()
        # Both move directions must appear: this function is the paper's
        # witness that one-directional derivations cannot suffice.
        signs = {step.sign for step in steps}
        assert signs == {-1, 1}

    def test_compilation_and_probability(self):
        phi = find_phi_no_pm()
        query = HQuery(4, phi)
        tid = complete_tid(4, 1, 1, prob=Fraction(1, 3))
        compiled = compile_lineage(query, tid.instance)
        assert not compiled.is_nnf  # negations were genuinely needed
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )

    def test_circuit_validates(self):
        phi = find_phi_no_pm()
        tid = complete_tid(4, 1, 1)
        compiled = compile_lineage(HQuery(4, phi), tid.instance)
        assert_d_d(compiled.circuit)


class TestPhiOneNegPipeline:
    """k = 5: the Figure-7 witness (64-valuation table)."""

    def test_fragmentation(self):
        phi = find_phi_one_neg()
        fragmentation = fragment(phi)
        assert fragmentation.verify()
        # No colored PM, so the general template must use negations.
        assert fragmentation.template.count_gates()["not"] > 0

    def test_compilation_and_probability(self):
        phi = find_phi_one_neg()
        query = HQuery(5, phi)
        tid = complete_tid(5, 1, 1, prob=Fraction(1, 2))
        compiled = compile_lineage(query, tid.instance)
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )

    def test_safety_verdicts(self):
        from repro.pqe.extensional import is_safe

        phi = find_phi_one_neg()
        assert phi.is_monotone()
        assert is_safe(HQuery(5, phi))  # e = 0: a safe UCQ


class TestGeneralDegenerateLeaf:
    """Exercise the non-pair degenerate-leaf fallback of _plug_template."""

    def test_custom_fragmentation_with_wide_leaf(self):
        # A degenerate leaf with four models (not an adjacent pair): the
        # disjunction of two adjacent pairs along the ignored variable 1.
        leaf_wide = BooleanFunction.from_satisfying(
            3, [0b000, 0b010, 0b101, 0b111]
        )
        assert leaf_wide.is_degenerate() and not leaf_wide.depends_on(1)
        leaf_pair = BooleanFunction.from_satisfying(3, [0b001, 0b011])
        assert leaf_pair.is_degenerate()
        assert leaf_wide.is_disjoint(leaf_pair)
        phi = leaf_wide | leaf_pair
        fragmentation = Fragmentation(
            NegOrTemplate(OrNode((Hole(0), Hole(1))), 2),
            [leaf_wide, leaf_pair],
            phi,
        )
        assert fragmentation.verify()
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 2))
        circuit = _plug_template(fragmentation, 2, tid.instance)
        assert_d_d(circuit)
        from repro.circuits import probability

        query = HQuery(2, phi)
        assert probability(
            circuit, tid.probability_map()
        ) == probability_by_world_enumeration(query, tid)


class TestLongDerivations:
    def test_top_function_at_5_vars(self):
        # ⊤ on 5 variables: 32 models, 16 chainkills.
        phi = BooleanFunction.top(5)
        steps = reduce_to_bottom(phi)
        assert apply_steps(phi, steps).is_bottom()
        fragmentation = fragment(phi)
        assert fragmentation.verify()

    def test_checkerboard_of_pairs(self):
        # Disjoint adjacent pairs tiling half the 4-cube.
        models = []
        for mask in range(16):
            if mask & 1 == 0 and (mask >> 1) & 1 == 0:
                models.extend([mask, mask | 1])
        phi = BooleanFunction.from_satisfying(4, models)
        assert phi.euler_characteristic() == 0
        fragmentation = fragment(phi)
        assert fragmentation.verify()

"""Unit and property tests for repro.core.valuations."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core import valuations as v


class TestConversions:
    def test_set_to_mask_roundtrip(self):
        assert v.set_to_mask({0, 2, 5}) == 0b100101
        assert v.mask_to_set(0b100101) == frozenset({0, 2, 5})

    def test_empty_valuation(self):
        assert v.set_to_mask([]) == 0
        assert v.mask_to_set(0) == frozenset()

    def test_negative_variable_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            v.set_to_mask({-1})
        with pytest.raises(ValueError):
            v.mask_to_set(-3)

    def test_as_mask_accepts_both(self):
        assert v.as_mask(5) == 5
        assert v.as_mask({0, 2}) == 5

    @given(st.sets(st.integers(min_value=0, max_value=12)))
    def test_roundtrip_property(self, members):
        assert v.mask_to_set(v.set_to_mask(members)) == frozenset(members)


class TestParityAndFlip:
    def test_popcount(self):
        assert v.popcount(0b1011) == 3

    def test_parity(self):
        assert v.parity(0) == 1
        assert v.parity(0b1) == -1
        assert v.parity(0b11) == 1

    def test_flip_toggles(self):
        assert v.flip(0b101, 1) == 0b111
        assert v.flip(0b111, 1) == 0b101

    @given(st.integers(min_value=0, max_value=255), st.integers(0, 7))
    def test_flip_involution(self, mask, var):
        assert v.flip(v.flip(mask, var), var) == mask

    @given(st.integers(min_value=0, max_value=255), st.integers(0, 7))
    def test_flip_changes_parity(self, mask, var):
        assert v.parity(v.flip(mask, var)) == -v.parity(mask)


class TestEnumeration:
    def test_all_valuations_count(self):
        assert len(list(v.all_valuations(4))) == 16

    def test_valuations_of_size(self):
        of_two = list(v.valuations_of_size(4, 2))
        assert len(of_two) == 6
        assert all(v.popcount(m) == 2 for m in of_two)

    def test_valuations_of_size_edges(self):
        assert list(v.valuations_of_size(4, 0)) == [0]
        assert list(v.valuations_of_size(4, 4)) == [0b1111]
        assert list(v.valuations_of_size(4, 5)) == []

    def test_neighbors(self):
        assert sorted(v.neighbors(0b00, 2)) == [0b01, 0b10]

    def test_subsets_of(self):
        subs = sorted(v.subsets_of(0b101))
        assert subs == [0b000, 0b001, 0b100, 0b101]

    @given(st.integers(min_value=0, max_value=63))
    def test_subsets_count(self, mask):
        assert len(list(v.subsets_of(mask))) == 1 << v.popcount(mask)


class TestHypercubePaths:
    def test_path_endpoints_and_length(self):
        path = v.hypercube_path(0b000, 0b110)
        assert path[0] == 0b000 and path[-1] == 0b110
        assert len(path) == 3

    def test_path_is_simple(self):
        path = v.hypercube_path(0b0101, 0b1010)
        assert v.is_simple_hypercube_path(path)

    def test_degenerate_path(self):
        assert v.hypercube_path(5, 5) == [5]

    @given(
        st.integers(min_value=0, max_value=127),
        st.integers(min_value=0, max_value=127),
    )
    def test_path_property(self, a, b):
        path = v.hypercube_path(a, b)
        assert path[0] == a and path[-1] == b
        assert len(path) == v.hamming_distance(a, b) + 1
        assert v.is_simple_hypercube_path(path)

    def test_non_simple_rejected(self):
        assert not v.is_simple_hypercube_path([0, 1, 0])
        assert not v.is_simple_hypercube_path([0, 3])  # not adjacent
        assert not v.is_simple_hypercube_path([])


class TestParityTable:
    def test_small_tables(self):
        # nvars=1: valuations 0 (even), 1 (odd) -> bit 0 set only.
        assert v.even_parity_table(1) == 0b01
        # nvars=2: even valuations are 00 and 11 -> bits 0 and 3.
        assert v.even_parity_table(2) == 0b1001

    @given(st.integers(min_value=0, max_value=8))
    def test_table_matches_popcount(self, nvars):
        table = v.even_parity_table(nvars)
        for mask in range(1 << nvars):
            assert bool(table >> mask & 1) == (v.popcount(mask) % 2 == 0)

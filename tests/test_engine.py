"""Tests for the unified evaluation facade."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.dichotomy import Region
from repro.pqe.engine import (
    BRUTE_FORCE_LIMIT,
    CompilationCache,
    HardQueryError,
    clear_compilation_cache,
    compilation_cache_stats,
    evaluate,
    evaluate_batch,
)
from repro.queries.hqueries import HQuery, phi_9, q9
from tests.conftest import small_random_tid


def full_disjunction(k: int) -> BooleanFunction:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return phi


class TestAutoMode:
    def test_safe_monotone_query_uses_extensional(self):
        # Safe H+-queries take the lifted fast path: no lineage, no
        # circuit, exact Fractions from the columnar backend.
        rng = random.Random(1)
        tid = small_random_tid(3, rng)
        result = evaluate(q9(), tid)
        assert result.engine == "extensional"
        assert result.compiled is None
        assert result.classification.region is Region.ZERO_EULER
        brute = evaluate(q9(), tid, method="brute_force")
        assert result.probability == brute.probability

    def test_extensional_route_reports_plan_cache_hits(self):
        from repro.pqe.engine import ExtensionalPlanCache

        plan_cache = ExtensionalPlanCache()
        tid = complete_tid(3, 2, 2)
        first = evaluate(q9(), tid, plan_cache=plan_cache)
        second = evaluate(q9(), tid, plan_cache=plan_cache)
        assert not first.cache_hit
        assert second.cache_hit
        assert first.probability == second.probability
        stats = plan_cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_hard_query_small_instance_falls_back(self):
        tid = complete_tid(3, 1, 1)
        assert len(tid) <= BRUTE_FORCE_LIMIT
        result = evaluate(HQuery(3, full_disjunction(3)), tid)
        assert result.engine == "brute_force"
        assert result.classification.region is Region.HARD

    def test_hard_query_large_instance_refused(self):
        tid = complete_tid(3, 3, 3)  # 33 tuples
        with pytest.raises(HardQueryError):
            evaluate(HQuery(3, full_disjunction(3)), tid)

    def test_auto_agrees_with_explicit_engines(self):
        rng = random.Random(2)
        tid = small_random_tid(3, rng)
        auto = evaluate(q9(), tid)
        ext = evaluate(q9(), tid, method="extensional")
        brute = evaluate(q9(), tid, method="brute_force")
        assert auto.probability == ext.probability == brute.probability


class TestExplicitModes:
    def test_unknown_method(self):
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            evaluate(q9(), tid, method="quantum")

    def test_intensional_rejects_nonzero_euler(self):
        from repro.pqe.intensional import NotCompilableError

        tid = complete_tid(3, 1, 1)
        with pytest.raises(NotCompilableError):
            evaluate(
                HQuery(3, full_disjunction(3)), tid, method="intensional"
            )

    def test_extensional_rejects_non_monotone(self):
        from repro.pqe.extensional import UnsafeQueryError

        tid = complete_tid(3, 1, 1)
        with pytest.raises(UnsafeQueryError):
            evaluate(HQuery(3, ~phi_9()), tid, method="extensional")

    def test_non_monotone_zero_euler_goes_intensional(self):
        # Auto handles Boolean combinations the extensional engine cannot.
        rng = random.Random(3)
        phi = None
        while phi is None or phi.euler_characteristic() != 0 or phi.is_monotone():
            phi = BooleanFunction.random(4, rng)
        tid = small_random_tid(3, rng)
        result = evaluate(HQuery(3, phi), tid)
        assert result.engine == "intensional"
        brute = evaluate(HQuery(3, phi), tid, method="brute_force")
        assert result.probability == brute.probability

    def test_compiled_reuse_from_result(self):
        from fractions import Fraction

        rng = random.Random(4)
        tid = small_random_tid(3, rng)
        result = evaluate(q9(), tid, method="intensional")
        some_tuple = tid.instance.tuple_ids()[0]
        tid.set_probability(some_tuple, Fraction(1, 9))
        updated = result.compiled.probability(tid)
        fresh = evaluate(q9(), tid, method="brute_force").probability
        assert updated == fresh


class TestEvaluateBatchEdges:
    """Empty and single-element batches are well-defined (the empty
    batch used to leak the method name ``"auto"`` as its engine label)."""

    def test_empty_batch_safe_query_auto(self):
        result = evaluate_batch(q9(), [])
        assert result.probabilities == []
        assert result.engine == "extensional"
        assert result.compiled is None
        assert result.cache_hits == 0
        assert result.engines is None
        assert result.classification.region is Region.ZERO_EULER

    def test_empty_batch_nonmonotone_dd_query_auto(self):
        rng = random.Random(3)
        phi = None
        while phi is None or phi.euler_characteristic() != 0 or phi.is_monotone():
            phi = BooleanFunction.random(4, rng)
        result = evaluate_batch(HQuery(3, phi), [])
        assert result.probabilities == []
        assert result.engine == "intensional"
        assert result.compiled is None

    def test_empty_batch_intensional_method(self):
        result = evaluate_batch(q9(), [], method="intensional")
        assert result.probabilities == []
        assert result.engine == "intensional"
        assert result.compiled is None

    def test_empty_batch_hard_query_auto(self):
        query = HQuery(3, full_disjunction(3))
        result = evaluate_batch(query, [])
        assert result.probabilities == []
        assert result.engine == "brute_force"
        assert result.engines == []
        assert result.compiled is None

    def test_empty_batch_never_reports_auto(self):
        for query in (q9(), HQuery(3, full_disjunction(3))):
            assert evaluate_batch(query, []).engine != "auto"

    def test_empty_batch_unknown_method_still_raises(self):
        with pytest.raises(ValueError):
            evaluate_batch(q9(), [], method="quantum")

    def test_single_element_batch_safe_query(self):
        tid = complete_tid(3, 2, 2)
        result = evaluate_batch(q9(), [tid])
        assert result.engine == "extensional"
        assert result.compiled is None
        exact = evaluate(q9(), tid, method="extensional")
        assert result.probabilities == [
            pytest.approx(float(exact.probability), abs=1e-9)
        ]

    def test_single_element_batch_dd_intensional_method(self):
        cache = CompilationCache()
        tid = complete_tid(3, 2, 2)
        result = evaluate_batch(q9(), [tid], method="intensional", cache=cache)
        assert result.engine == "intensional"
        assert result.compiled is not None
        exact = evaluate(q9(), tid, method="intensional", cache=cache)
        assert result.probabilities == [
            pytest.approx(float(exact.probability), abs=1e-9)
        ]

    def test_single_element_batch_hard_small(self):
        query = HQuery(3, full_disjunction(3))
        tid = complete_tid(3, 1, 1)
        result = evaluate_batch(query, [tid])
        assert result.engine == "brute_force"
        assert result.engines == ["brute_force"]
        assert result.probabilities == [
            float(evaluate(query, tid, method="brute_force").probability)
        ]


class TestCacheConcurrency:
    """The per-shard cache factoring: counters stay consistent when
    ``evaluate`` races stats readers and clears across threads."""

    def test_counters_consistent_under_racing_evaluate(self):
        cache = CompilationCache()
        tids = [complete_tid(3, 2 + i, 2) for i in range(3)]
        calls_per_thread = 12
        threads_count = 6
        barrier = threading.Barrier(threads_count)
        errors: list[BaseException] = []

        def worker(seed: int):
            try:
                barrier.wait()
                for i in range(calls_per_thread):
                    tid = tids[(seed + i) % len(tids)]
                    result = evaluate(
                        q9(), tid, method="intensional", cache=cache
                    )
                    assert result.engine == "intensional"
                    compilation_cache_stats(cache)  # racing reader
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(threads_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        # Every call is accounted exactly once; racing compiles of the
        # same key may each record a hit for the loser, so hits+misses
        # equals the number of cache accesses, with one miss per circuit
        # actually inserted.
        assert stats.hits + stats.misses == threads_count * calls_per_thread
        assert stats.misses == len(tids)
        assert len(cache) == len(tids)

    def test_clear_races_evaluate_without_corruption(self):
        cache = CompilationCache()
        tid = complete_tid(3, 2, 2)
        stop = threading.Event()
        errors: list[BaseException] = []

        def evaluator():
            try:
                while not stop.is_set():
                    evaluate(q9(), tid, method="intensional", cache=cache)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def churner():
            try:
                while not stop.is_set():
                    clear_compilation_cache(cache)
                    snapshot = compilation_cache_stats(cache)
                    assert snapshot.hits >= 0
                    assert snapshot.misses >= 0
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=evaluator),
            threading.Thread(target=evaluator),
            threading.Thread(target=churner),
        ]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()
        assert not errors
        # After the dust settles the cache still works and counts right.
        cache.clear()
        for _ in range(5):
            evaluate(q9(), tid, method="intensional", cache=cache)
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 4

    def test_caller_cache_leaves_default_cache_untouched(self):
        cache = CompilationCache()
        tid = complete_tid(3, 3, 2)
        before = compilation_cache_stats()
        evaluate(q9(), tid, method="intensional", cache=cache)
        evaluate(q9(), tid, method="intensional", cache=cache)
        after = compilation_cache_stats()
        assert (after.hits, after.misses) == (before.hits, before.misses)
        assert cache.stats().misses == 1
        assert cache.stats().hits == 1

    def test_clearing_caller_cache_keeps_global_pair_counters(self):
        # The pair-query counters are process-wide; clearing one shard's
        # cache must not zero observability shared by every other shard.
        cache = CompilationCache()
        tid = complete_tid(3, 2, 3)
        # Explicitly intensional: generates pair-cache traffic.
        evaluate(q9(), tid, method="intensional", cache=cache)
        before = compilation_cache_stats()
        assert before.pair_hits + before.pair_misses > 0
        clear_compilation_cache(cache)
        after = compilation_cache_stats()
        assert (after.pair_hits, after.pair_misses) == (
            before.pair_hits,
            before.pair_misses,
        )
        assert len(cache) == 0

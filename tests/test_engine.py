"""Tests for the unified evaluation facade."""

from __future__ import annotations

import random

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.dichotomy import Region
from repro.pqe.engine import (
    BRUTE_FORCE_LIMIT,
    HardQueryError,
    evaluate,
)
from repro.queries.hqueries import HQuery, phi_9, q9
from tests.conftest import small_random_tid


def full_disjunction(k: int) -> BooleanFunction:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return phi


class TestAutoMode:
    def test_safe_query_uses_intensional(self):
        rng = random.Random(1)
        tid = small_random_tid(3, rng)
        result = evaluate(q9(), tid)
        assert result.engine == "intensional"
        assert result.compiled is not None
        assert result.classification.region is Region.ZERO_EULER

    def test_hard_query_small_instance_falls_back(self):
        tid = complete_tid(3, 1, 1)
        assert len(tid) <= BRUTE_FORCE_LIMIT
        result = evaluate(HQuery(3, full_disjunction(3)), tid)
        assert result.engine == "brute_force"
        assert result.classification.region is Region.HARD

    def test_hard_query_large_instance_refused(self):
        tid = complete_tid(3, 3, 3)  # 33 tuples
        with pytest.raises(HardQueryError):
            evaluate(HQuery(3, full_disjunction(3)), tid)

    def test_auto_agrees_with_explicit_engines(self):
        rng = random.Random(2)
        tid = small_random_tid(3, rng)
        auto = evaluate(q9(), tid)
        ext = evaluate(q9(), tid, method="extensional")
        brute = evaluate(q9(), tid, method="brute_force")
        assert auto.probability == ext.probability == brute.probability


class TestExplicitModes:
    def test_unknown_method(self):
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            evaluate(q9(), tid, method="quantum")

    def test_intensional_rejects_nonzero_euler(self):
        from repro.pqe.intensional import NotCompilableError

        tid = complete_tid(3, 1, 1)
        with pytest.raises(NotCompilableError):
            evaluate(
                HQuery(3, full_disjunction(3)), tid, method="intensional"
            )

    def test_extensional_rejects_non_monotone(self):
        from repro.pqe.extensional import UnsafeQueryError

        tid = complete_tid(3, 1, 1)
        with pytest.raises(UnsafeQueryError):
            evaluate(HQuery(3, ~phi_9()), tid, method="extensional")

    def test_non_monotone_zero_euler_goes_intensional(self):
        # Auto handles Boolean combinations the extensional engine cannot.
        rng = random.Random(3)
        phi = None
        while phi is None or phi.euler_characteristic() != 0 or phi.is_monotone():
            phi = BooleanFunction.random(4, rng)
        tid = small_random_tid(3, rng)
        result = evaluate(HQuery(3, phi), tid)
        assert result.engine == "intensional"
        brute = evaluate(HQuery(3, phi), tid, method="brute_force")
        assert result.probability == brute.probability

    def test_compiled_reuse_from_result(self):
        from fractions import Fraction

        rng = random.Random(4)
        tid = small_random_tid(3, rng)
        result = evaluate(q9(), tid, method="intensional")
        some_tuple = tid.instance.tuple_ids()[0]
        tid.set_probability(some_tuple, Fraction(1, 9))
        updated = result.compiled.probability(tid)
        fresh = evaluate(q9(), tid, method="brute_force").probability
        assert updated == fresh

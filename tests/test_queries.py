"""Tests for CQs, the h_{k,i} family, H-queries and lineage."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db import Instance, TupleIndependentDatabase
from repro.queries import (
    Atom,
    ConjunctiveQuery,
    Constant,
    HQuery,
    cq_lineage_circuit,
    h_query,
    hquery_lineage_circuit_naive,
    lineage_equivalent,
    phi_9,
    q9,
    ucq_lineage_dnf_circuit,
)


def tiny_db() -> Instance:
    db = Instance()
    db.add("R", ("a1",))
    db.add("S1", ("a1", "b1"))
    db.add("S2", ("a1", "b1"))
    db.add("T", ("b1",))
    db.add("S1", ("a2", "b1"))
    return db


class TestConjunctiveQueries:
    def test_match_simple(self):
        db = tiny_db()
        query = ConjunctiveQuery((Atom("R", ("x",)), Atom("S1", ("x", "y"))))
        matches = list(query.matches(db))
        assert {m["x"] for m in matches} == {"a1"}

    def test_holds_in(self):
        db = tiny_db()
        assert ConjunctiveQuery((Atom("T", ("y",)),)).holds_in(db)
        # A constant not in the database (plain strings are variables).
        assert not ConjunctiveQuery(
            (Atom("R", (Constant("zz"),)),)
        ).holds_in(db)

    def test_constants(self):
        db = tiny_db()
        query = ConjunctiveQuery((Atom("S1", (Constant("a2"), "y")),))
        assert query.holds_in(db)
        query2 = ConjunctiveQuery((Atom("S2", (Constant("a2"), "y")),))
        assert not query2.holds_in(db)

    def test_join_variable(self):
        db = tiny_db()
        query = ConjunctiveQuery(
            (Atom("S1", ("x", "y")), Atom("S2", ("x", "y")))
        )
        matches = list(query.matches(db))
        assert len(matches) == 1
        assert matches[0] == {"x": "a1", "y": "b1"}

    def test_missing_relation_no_match(self):
        query = ConjunctiveQuery((Atom("Missing", ("x",)),))
        assert not query.holds_in(tiny_db())

    def test_grounding_sets(self):
        db = tiny_db()
        query = ConjunctiveQuery((Atom("R", ("x",)), Atom("S1", ("x", "y"))))
        witnesses = query.grounding_sets(db)
        assert len(witnesses) == 1
        (witness,) = witnesses
        assert {str(t) for t in witness} == {"R(a1)", "S1(a1,b1)"}

    def test_str(self):
        query = ConjunctiveQuery((Atom("R", ("x",)),))
        assert "R(x)" in str(query)


class TestHQueryFamily:
    def test_h_query_shapes(self):
        assert h_query(3, 0).relations() == {"R", "S1"}
        assert h_query(3, 2).relations() == {"S2", "S3"}
        assert h_query(3, 3).relations() == {"S3", "T"}

    def test_h_query_bounds(self):
        with pytest.raises(ValueError):
            h_query(3, 4)
        with pytest.raises(ValueError):
            h_query(0, 0)

    def test_hquery_arity_check(self):
        with pytest.raises(ValueError):
            HQuery(3, BooleanFunction.top(3))  # needs 4 variables

    def test_h_pattern(self):
        db = tiny_db()
        query = q9()
        pattern = query.h_pattern(db)
        # h0 = R∧S1 holds (a1,b1); h1 = S1∧S2 holds; h2 = S2∧S3 needs S3:
        # absent; h3 = S3∧T absent.
        assert pattern == 0b0011

    def test_holds_in_uses_phi(self):
        db = tiny_db()
        # phi = variable 0: query holds iff h0 holds.
        phi = BooleanFunction.variable(0, 4)
        assert HQuery(3, phi).holds_in(db)
        phi3 = BooleanFunction.variable(3, 4)
        assert not HQuery(3, phi3).holds_in(db)

    def test_q9_is_ucq(self):
        assert q9().is_ucq()

    def test_non_monotone_not_ucq(self):
        phi = ~phi_9()
        assert not HQuery(3, phi).is_ucq()

    def test_lineage_truth_table_monotone_for_ucq(self):
        db = Instance()
        db.add("R", ("a",))
        db.add("S1", ("a", "b"))
        db.add("S2", ("a", "b"))
        _, lineage = HQuery(
            3, BooleanFunction.variable(0, 4)
        ).lineage_truth_table(db)
        assert lineage.is_monotone()

    def test_lineage_refuses_large(self):
        from repro.db.generator import complete_tid

        tid = complete_tid(3, 3, 3)
        with pytest.raises(ValueError):
            q9().lineage_truth_table(tid.instance)


class TestLineageCircuits:
    def test_cq_lineage_semantics(self):
        db = tiny_db()
        query = h_query(3, 0)
        circuit = cq_lineage_circuit(query, db)
        # The only witness is {R(a1), S1(a1,b1)}.
        from repro.db.relation import TupleId

        assert circuit.evaluate(
            {
                TupleId("R", ("a1",)): True,
                TupleId("S1", ("a1", "b1")): True,
            }
        )
        assert not circuit.evaluate({TupleId("R", ("a1",)): True})

    def test_naive_hquery_lineage_matches_truth_table(self):
        db = tiny_db()
        query = q9()
        circuit = hquery_lineage_circuit_naive(query, db)
        tuple_ids, truth = query.lineage_truth_table(db)
        from repro.queries.lineage import lineage_truth_table_of_circuit

        ids2, compiled = lineage_truth_table_of_circuit(circuit, db)
        assert tuple_ids == ids2
        assert truth == compiled

    def test_ucq_dnf_lineage_matches(self):
        db = tiny_db()
        query = q9()
        dnf = ucq_lineage_dnf_circuit(query, db)
        naive = hquery_lineage_circuit_naive(query, db)
        assert lineage_equivalent(dnf, naive, db)

    def test_ucq_dnf_requires_monotone(self):
        with pytest.raises(ValueError):
            ucq_lineage_dnf_circuit(HQuery(3, ~phi_9()), tiny_db())

    def test_naive_lineage_random(self):
        rng = random.Random(43)
        from repro.db.generator import random_tid

        for _ in range(3):
            tid = random_tid(2, 2, 2, rng, tuple_density=0.4)
            if not 0 < len(tid) <= 12:
                continue
            phi = BooleanFunction.random(3, rng)
            query = HQuery(2, phi)
            circuit = hquery_lineage_circuit_naive(query, tid.instance)
            _, truth = query.lineage_truth_table(tid.instance)
            from repro.queries.lineage import lineage_truth_table_of_circuit

            _, compiled = lineage_truth_table_of_circuit(
                circuit, tid.instance
            )
            assert truth == compiled


class TestLineageProbabilityIdentity:
    def test_pr_query_equals_pr_lineage(self):
        # The [18] identity behind intensional evaluation.
        from repro.pqe.brute_force import (
            probability_by_lineage_enumeration,
            probability_by_world_enumeration,
        )

        rng = random.Random(53)
        from repro.db.generator import random_tid

        for _ in range(3):
            tid = random_tid(3, 2, 2, rng, tuple_density=0.35)
            if not 0 < len(tid) <= 12:
                continue
            query = q9()
            assert probability_by_world_enumeration(
                query, tid
            ) == probability_by_lineage_enumeration(query, tid)

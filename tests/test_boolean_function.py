"""Unit and property tests for repro.core.boolean_function."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_function import BooleanFunction


def tables(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1)


class TestConstruction:
    def test_bottom_top(self):
        assert BooleanFunction.bottom(3).sat_count() == 0
        assert BooleanFunction.top(3).sat_count() == 8

    def test_variable(self):
        x1 = BooleanFunction.variable(1, 3)
        assert x1.sat_count() == 4
        assert x1({1}) and x1({0, 1}) and not x1({0, 2})

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            BooleanFunction.variable(3, 3)

    def test_from_satisfying(self):
        phi = BooleanFunction.from_satisfying(3, [{0}, {1, 2}])
        assert set(phi.satisfying_sets()) == {
            frozenset({0}),
            frozenset({1, 2}),
        }

    def test_from_satisfying_out_of_range(self):
        with pytest.raises(ValueError):
            BooleanFunction.from_satisfying(2, [{5}])

    def test_from_callable(self):
        phi = BooleanFunction.from_callable(3, lambda s: len(s) == 2)
        assert phi.sat_count() == 3

    def test_from_dnf_cnf_duality(self):
        # Conjoining the same clause sets is stronger than disjoining them:
        # any model of ∧(∨ C_i) hits every clause, so some clause is "won"
        # entirely... in fact for these clauses CNF implies DNF.
        clauses = [{0, 1}, {2}]
        dnf = BooleanFunction.from_dnf(3, clauses)
        cnf = BooleanFunction.from_cnf(3, clauses)
        assert cnf.implies(dnf)

    def test_exactly(self):
        phi = BooleanFunction.exactly(3, {1})
        assert phi.sat_count() == 1 and phi({1})

    def test_table_out_of_range(self):
        with pytest.raises(ValueError):
            BooleanFunction(1, 16)
        with pytest.raises(ValueError):
            BooleanFunction(2, -1)


class TestOperations:
    def test_and_or_not(self):
        x0 = BooleanFunction.variable(0, 2)
        x1 = BooleanFunction.variable(1, 2)
        assert (x0 & x1).sat_count() == 1
        assert (x0 | x1).sat_count() == 3
        assert (~x0).sat_count() == 2

    def test_mismatched_domains(self):
        with pytest.raises(ValueError):
            _ = BooleanFunction.top(2) & BooleanFunction.top(3)

    def test_implies_and_disjoint(self):
        x0 = BooleanFunction.variable(0, 2)
        x1 = BooleanFunction.variable(1, 2)
        assert (x0 & x1).implies(x0)
        assert (x0 & ~x1).is_disjoint(x1 & ~x0)

    @given(tables(3), tables(3))
    def test_de_morgan(self, ta, tb):
        a, b = BooleanFunction(3, ta), BooleanFunction(3, tb)
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    @given(tables(3))
    def test_double_negation(self, table):
        phi = BooleanFunction(3, table)
        assert ~~phi == phi

    def test_hash_and_eq(self):
        a = BooleanFunction.from_satisfying(2, [{0}])
        b = BooleanFunction.from_satisfying(2, [{0}])
        assert a == b and hash(a) == hash(b)
        assert a != BooleanFunction.from_satisfying(2, [{1}])


class TestDependence:
    def test_depends_on(self):
        x0 = BooleanFunction.variable(0, 2)
        assert x0.depends_on(0) and not x0.depends_on(1)

    def test_dependency_set_and_degeneracy(self):
        phi = BooleanFunction.variable(0, 3) & BooleanFunction.variable(2, 3)
        assert phi.dependency_set() == frozenset({0, 2})
        assert phi.is_degenerate() and not phi.is_nondegenerate()

    def test_constants_are_degenerate(self):
        assert BooleanFunction.bottom(2).is_degenerate()
        assert BooleanFunction.top(2).is_degenerate()

    def test_cofactors(self):
        x0 = BooleanFunction.variable(0, 2)
        x1 = BooleanFunction.variable(1, 2)
        pos, neg = (x0 & x1).cofactors(0)
        assert pos == x1
        assert neg.is_bottom()

    @given(tables(3), st.integers(0, 2))
    def test_shannon_expansion(self, table, var):
        phi = BooleanFunction(3, table)
        pos, neg = phi.cofactors(var)
        x = BooleanFunction.variable(var, 3)
        assert (x & pos) | (~x & neg) == phi

    def test_restrict(self):
        phi = BooleanFunction.variable(0, 2) & BooleanFunction.variable(1, 2)
        assert phi.restrict({0: True}) == BooleanFunction.variable(1, 2)
        assert phi.restrict({0: False}).is_bottom()


class TestMonotonicity:
    def test_monotone_examples(self):
        assert BooleanFunction.from_dnf(3, [{0, 1}, {2}]).is_monotone()
        assert BooleanFunction.top(2).is_monotone()
        assert BooleanFunction.bottom(2).is_monotone()

    def test_non_monotone(self):
        phi = BooleanFunction.from_satisfying(2, [{0}])  # not closed upward
        assert not phi.is_monotone()

    def test_up_closure(self):
        phi = BooleanFunction.from_satisfying(3, [{0}])
        closed = phi.up_closure()
        assert closed.is_monotone()
        assert closed.sat_count() == 4

    @given(tables(3))
    def test_up_closure_is_monotone_and_above(self, table):
        phi = BooleanFunction(3, table)
        closed = phi.up_closure()
        assert closed.is_monotone()
        assert phi.implies(closed)


class TestNormalForms:
    def test_minimal_models(self):
        phi = BooleanFunction.from_dnf(3, [{0, 1}, {0, 1, 2}, {2}])
        assert sorted(map(sorted, phi.minimal_models())) == [[0, 1], [2]]

    def test_minimized_dnf_requires_monotone(self):
        phi = BooleanFunction.from_satisfying(2, [{0}])
        with pytest.raises(ValueError):
            phi.minimized_dnf()

    def test_minimized_cnf_of_known_function(self):
        # (0 ∨ 1) in two variables.
        phi = BooleanFunction.from_cnf(2, [{0, 1}])
        assert phi.minimized_cnf() == [frozenset({0, 1})]

    def test_minimized_cnf_constants(self):
        assert BooleanFunction.top(2).minimized_cnf() == []
        assert BooleanFunction.bottom(2).minimized_cnf() == [frozenset()]

    @given(tables(3))
    @settings(max_examples=60)
    def test_cnf_dnf_reconstruct(self, table):
        phi = BooleanFunction(3, table).up_closure()
        from_dnf = BooleanFunction.from_dnf(3, phi.minimized_dnf())
        from_cnf = BooleanFunction.from_cnf(3, phi.minimized_cnf())
        assert from_dnf == phi
        assert from_cnf == phi

    @given(tables(3))
    @settings(max_examples=60)
    def test_cnf_clauses_are_minimal(self, table):
        phi = BooleanFunction(3, table).up_closure()
        clauses = phi.minimized_cnf()
        for clause in clauses:
            for dropped in clause:
                weaker = [
                    c if c != clause else clause - {dropped} for c in clauses
                ]
                assert BooleanFunction.from_cnf(3, weaker) != phi


class TestEulerCharacteristic:
    def test_constants(self):
        assert BooleanFunction.bottom(3).euler_characteristic() == 0
        assert BooleanFunction.top(3).euler_characteristic() == 0

    def test_single_models(self):
        assert BooleanFunction.exactly(3, []).euler_characteristic() == 1
        assert BooleanFunction.exactly(3, {0}).euler_characteristic() == -1

    @given(tables(4))
    def test_matches_definition(self, table):
        phi = BooleanFunction(4, table)
        expected = sum(
            (-1) ** len(model) for model in phi.satisfying_sets()
        )
        assert phi.euler_characteristic() == expected

    @given(tables(4))
    def test_negation_flips_sign(self, table):
        phi = BooleanFunction(4, table)
        assert (~phi).euler_characteristic() == -phi.euler_characteristic()

    def test_degenerate_has_zero_euler(self):
        rng = random.Random(1)
        for _ in range(30):
            base = BooleanFunction.random(3, rng)
            pos, neg = base.cofactors(1)
            degenerate = pos | neg
            assert degenerate.euler_characteristic() == 0


class TestPermutation:
    def test_permute_identity(self):
        phi = BooleanFunction.from_satisfying(3, [{0, 1}])
        assert phi.permute([0, 1, 2]) == phi

    def test_permute_swap(self):
        phi = BooleanFunction.from_satisfying(3, [{0}])
        swapped = phi.permute([1, 0, 2])
        assert swapped({1}) and not swapped({0})

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            BooleanFunction.top(3).permute([0, 0, 1])

    @given(tables(3))
    def test_permutation_preserves_invariants(self, table):
        phi = BooleanFunction(3, table)
        sigma = phi.permute([2, 0, 1])
        assert sigma.sat_count() == phi.sat_count()
        assert sigma.euler_characteristic() == phi.euler_characteristic()
        assert sigma.is_monotone() == phi.is_monotone()

    def test_canonical_form_invariant(self):
        phi = BooleanFunction.from_satisfying(3, [{0}, {1, 2}])
        assert (
            phi.canonical_form_under_permutation()
            == phi.permute([1, 2, 0]).canonical_form_under_permutation()
        )

"""Tests for the multiprocess serving backend (:mod:`repro.serving.worker`,
:mod:`repro.serving.shm`).

The contract: ``ShardedService(backend="processes")`` is the *same
service* as the thread backend — bit-for-float identical answers on
every route, identical seeded fault replay, merge-safe stats — plus a
clean shared-memory lifecycle: segments are content-addressed, stale
versions are reclaimed as soon as their last reader resolves, and a
stopped service leaves nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import glob
import os
import random
import signal
import time
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.engine import BRUTE_FORCE_LIMIT, evaluate_batch
from repro.queries.hqueries import HQuery, q9
from repro.serving import (
    AccuracyBudget,
    CircuitBreakerOpen,
    FaultInjector,
    ProcessShard,
    ServiceStopped,
    ShardedService,
)
from repro.serving.resilience import RetryPolicy
from repro.serving.shm import SegmentRegistry, read_columns, segment_prefix

pytestmark = pytest.mark.filterwarnings("error")


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def nonmonotone_dd_query(k: int = 3) -> HQuery:
    """Zero-Euler but non-monotone: the compiled (intensional) route."""
    rng = random.Random(0xD1CE)
    while True:
        phi = BooleanFunction.random(k + 1, rng)
        if phi.euler_characteristic() == 0 and not phi.is_monotone():
            return HQuery(k, phi)


def shm_entries() -> set[str]:
    """The /dev/shm entries this process's registries have published."""
    return {
        os.path.basename(path)
        for path in glob.glob(f"/dev/shm/{segment_prefix()}*")
    }


def run_backend(backend: str, workload):
    """Run ``workload(service)`` against one backend; returns its value.

    Asserts the backend leaves no shared-memory segments behind — the
    thread backend trivially, the process backend by lifecycle.
    """
    service = ShardedService(shards=2, workers_per_shard=2, backend=backend)
    try:
        return workload(service)
    finally:
        service.stop(wait=True)
        assert not shm_entries()


class TestBackendSelection:
    def test_explicit_backend_argument(self):
        with ShardedService(shards=1, backend="threads") as service:
            assert service.backend == "threads"
            assert not isinstance(service._shards[0], ProcessShard)
        service = ShardedService(shards=1, backend="processes")
        try:
            assert service.backend == "processes"
            assert isinstance(service._shards[0], ProcessShard)
        finally:
            service.stop()

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_BACKEND", "processes")
        service = ShardedService(shards=1)
        try:
            assert service.backend == "processes"
        finally:
            service.stop()
        monkeypatch.delenv("REPRO_SERVING_BACKEND")
        with ShardedService(shards=1) as service:
            assert service.backend == "threads"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardedService(shards=1, backend="fibers")


class TestBackendParity:
    """Every route bit-for-float identical across backends."""

    def test_extensional_spread_identical(self):
        tids = [
            complete_tid(3, 2 + i, 2, prob=Fraction(1, 2 + i))
            for i in range(4)
        ]
        requests = [tids[i % len(tids)] for i in range(48)]
        reference = evaluate_batch(q9(), requests)

        def workload(service):
            return [
                r.probability
                for r in service.submit_batch(q9(), requests)
            ]

        threads = run_backend("threads", workload)
        processes = run_backend("processes", workload)
        assert threads == processes == reference.probabilities

    def test_extensional_mixed_probability_maps_identical(self):
        # Distinct probability maps over one instance content: each map
        # publishes its own content-addressed segment, and the fan-out
        # must keep every float identical to the direct engine.
        rng = random.Random(17)
        tids = []
        for _ in range(12):
            tid = complete_tid(3, 3, 2, prob=Fraction(1, 2))
            for t in tid.instance.tuple_ids():
                tid.set_probability(t, Fraction(rng.randrange(0, 9), 8))
            tids.append(tid)
        reference = evaluate_batch(q9(), tids)

        def workload(service):
            return [
                r.probability for r in service.submit_batch(q9(), tids)
            ]

        assert run_backend("threads", workload) == reference.probabilities
        assert run_backend("processes", workload) == (
            reference.probabilities
        )

    def test_intensional_route_identical(self):
        query = nonmonotone_dd_query()
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        requests = [tid] * 32
        reference = evaluate_batch(query, requests)

        def workload(service):
            responses = service.submit_batch(query, requests)
            assert {r.engine for r in responses} == {"intensional"}
            return [r.probability for r in responses]

        threads = run_backend("threads", workload)
        processes = run_backend("processes", workload)
        assert threads == processes == reference.probabilities

    def test_brute_force_route_identical(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 3))
        assert len(tid) <= BRUTE_FORCE_LIMIT

        def workload(service):
            response = service.submit(query, tid).result()
            assert response.engine == "brute_force"
            return response.probability

        assert run_backend("threads", workload) == run_backend(
            "processes", workload
        )

    def test_seeded_sampling_identical_including_error_bars(self):
        # The strongest parity statement: the worker's rebuilt sampling
        # plan walks the *same seeded sample path*, so the estimate, the
        # half-width, the sample count and the wave count all match.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(epsilon=0.1, seed=11)

        def workload(service):
            response = service.submit(query, tid, budget).result()
            return (
                response.engine,
                response.probability,
                response.half_width,
                response.samples,
                response.waves,
            )

        threads = run_backend("threads", workload)
        processes = run_backend("processes", workload)
        assert threads == processes
        assert threads[0] == "karp_luby"

    def test_overflow_probabilities_identical(self):
        # Rationals too wide for the int64 shm columns ride the pickled
        # overflow side channel; exactness must survive the trip.
        wide = Fraction(2**70 + 1, 2**71 + 3)
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        for i, t in enumerate(tid.instance.tuple_ids()):
            if i % 3 == 0:
                tid.set_probability(t, wide)
        reference = evaluate_batch(q9(), [tid])

        def workload(service):
            return service.submit(q9(), tid).result().probability

        threads = run_backend("threads", workload)
        processes = run_backend("processes", workload)
        assert threads == processes == reference.probabilities[0]

    def test_seeded_fault_replay_identical_across_backends(self):
        # The fault injector lives in the parent-side policy front end
        # for both backends, so a seeded chaos schedule sheds / fails /
        # answers the same request indices whichever backend computes.
        def run(backend):
            service = ShardedService(
                shards=2,
                workers_per_shard=1,  # single drain => stable order
                retry=RetryPolicy(attempts=1),
                fault_injector=FaultInjector(
                    seed=9, error_rate=Fraction(1, 4)
                ),
                backend=backend,
            )
            try:
                hard = hard_full_disjunction(3)
                outcomes = []
                for i in range(24):
                    tid = complete_tid(
                        3, 2 + i % 3, 2, prob=Fraction(1, 2)
                    )
                    future = service.submit(
                        q9() if i % 2 == 0 else hard, tid
                    )
                    error = future.exception(timeout=120)
                    if error is None:
                        outcomes.append(
                            ("ok", future.result().probability)
                        )
                    else:
                        outcomes.append((type(error).__name__, None))
                return outcomes
            finally:
                service.stop(wait=True)

        threads = run("threads")
        processes = run("processes")
        assert threads == processes
        assert any(kind == "TransientFaultError" for kind, _ in threads)
        assert any(kind == "ok" for kind, _ in threads)


class TestProcessStats:
    def test_worker_cache_counters_merge_into_snapshot(self):
        query = nonmonotone_dd_query()
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        service = ShardedService(
            shards=1, workers_per_shard=1, backend="processes"
        )
        try:
            service.submit_batch(query, [tid] * 16)
            stats = service.stats()
        finally:
            service.stop(wait=True)
        shard = stats.shards[0]
        # The worker compiled exactly once; the merged snapshot shows
        # the worker-side cache, not the parent's (empty) one.
        assert shard.cache.misses == 1
        assert stats.engines == {"intensional": 16}
        assert shard.requests == 16

    def test_stats_payload_round_trip(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        service = ShardedService(shards=2, backend="processes")
        try:
            service.submit(q9(), tid).result()
            stats = service.stats()
        finally:
            service.stop(wait=True)
        payload = stats.to_payload()
        rebuilt = type(stats).from_payload(payload)
        assert rebuilt == stats
        assert rebuilt.engines == stats.engines
        assert rebuilt.resilience == stats.resilience
        # The payload is honestly JSON-able.
        import json

        assert json.loads(json.dumps(payload)) == payload

    def test_stats_still_answer_after_worker_death(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        service = ShardedService(
            shards=1, workers_per_shard=1, backend="processes"
        )
        try:
            service.submit(q9(), tid).result()
            os.kill(service._shards[0]._client._process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while (
                service._shards[0]._client.alive()
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = service.stats()  # falls back to the parent snapshot
            assert stats.requests == 1
        finally:
            service.stop(wait=True)


class TestShmLifecycle:
    def test_read_columns_round_trips_registry_segment(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        from repro.db.columnar import probability_columns

        columns = probability_columns(tid)
        registry = SegmentRegistry()
        try:
            lease = registry.acquire(
                tid.instance.shard_key(), tid.probability_digest(), columns
            )
            assert lease.fresh
            attached = read_columns(lease.name, lease.count, lease.overflow)
            assert attached.fractions() == columns.fractions()
            # Re-acquiring the same content pins the same segment.
            again = registry.acquire(
                tid.instance.shard_key(), tid.probability_digest(), columns
            )
            assert not again.fresh
            assert again.name == lease.name
            registry.release(lease)
            registry.release(again)
            assert len(registry) == 1  # published, unpinned, not stale
        finally:
            registry.unlink_all()
        assert not shm_entries()

    def test_probability_version_bump_reclaims_stale_segment(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        service = ShardedService(
            shards=1, workers_per_shard=1, backend="processes"
        )
        try:
            shard = service._shards[0]
            first = service.submit(q9(), tid).result()
            old_names = set(shard.segment_names())
            assert len(old_names) == 1
            # Bump the probability map: new digest, new segment; the
            # superseded one is unlinked once its last lease resolves.
            tuple_id = tid.instance.tuple_ids()[0]
            tid.set_probability(tuple_id, Fraction(1, 7))
            second = service.submit(q9(), tid).result()
            new_names = set(shard.segment_names())
            assert len(new_names) == 1
            assert new_names.isdisjoint(old_names)
            assert shm_entries() == new_names
            assert first.probability != second.probability
            reference = evaluate_batch(q9(), [tid])
            assert second.probability == reference.probabilities[0]
        finally:
            service.stop(wait=True)
        assert not shm_entries()

    def test_stop_unlinks_every_segment(self):
        tids = [
            complete_tid(3, 2 + i, 2, prob=Fraction(1, 2)) for i in range(3)
        ]
        service = ShardedService(shards=2, backend="processes")
        service.submit_batch(q9(), tids)
        live = {
            name
            for shard in service._shards
            for name in shard.segment_names()
        }
        assert live  # traffic actually published segments
        assert live <= shm_entries()
        service.stop(wait=True)
        assert not shm_entries()

    def test_no_leaks_after_faulted_workload(self):
        # Chaos-style traffic (injected faults, retries, deadlines) over
        # the process backend: whatever path each request takes, stop()
        # leaves /dev/shm clean.
        service = ShardedService(
            shards=2,
            workers_per_shard=2,
            retry=RetryPolicy(attempts=2, base_delay_ms=0.5),
            fault_injector=FaultInjector(
                seed=3,
                error_rate=Fraction(1, 6),
                latency_rate=Fraction(1, 5),
                latency_ms=2.0,
            ),
            backend="processes",
        )
        hard = hard_full_disjunction(3)
        budget = AccuracyBudget(
            epsilon=0.3, min_samples=32, max_samples=64, seed=5
        )
        futures = []
        for i in range(8):
            safe = complete_tid(3, 2 + i % 3, 2, prob=Fraction(1, 2))
            large = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            futures.append(service.submit(q9(), safe))
            futures.append(
                service.submit(hard, large, budget, deadline_ms=10_000.0)
            )
        for future in futures:
            future.exception(timeout=120)  # resolve; typed errors fine
        service.stop(wait=True)
        assert not shm_entries()


class TestProcessStopSemantics:
    def test_killed_worker_fails_requests_typed_never_raw_pipe(self):
        # Since the supervisor landed, an externally killed worker is
        # respawned: a request racing the death either resolves with the
        # (bit-identical) answer from the fresh worker or fails with the
        # *typed* ServiceStopped — never a raw pipe error, never a hang.
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        service = ShardedService(
            shards=1, workers_per_shard=1, backend="processes"
        )
        try:
            reference = service.submit(q9(), tid).result()  # warm
            os.kill(service._shards[0]._client._process.pid, signal.SIGKILL)
            future = service.submit(q9(), tid)
            error = future.exception(timeout=60)
            if error is None:
                assert future.result().probability == reference.probability
            else:
                assert isinstance(error, ServiceStopped)
            # The supervisor brings the shard back: a later request is
            # served by the respawned worker (the death trips the
            # breaker, so poll through its open window).
            deadline = time.monotonic() + 30
            again = None
            while time.monotonic() < deadline:
                try:
                    again = service.submit(q9(), tid).result(timeout=60)
                    break
                except (CircuitBreakerOpen, ServiceStopped):
                    time.sleep(0.05)
            assert again is not None
            assert again.probability == reference.probability
            assert service._shards[0].stats().supervisor.restarts >= 1
        finally:
            service.stop(wait=True)
        assert not shm_entries()

    def test_stop_resolves_all_inflight_futures(self):
        # Submit a burst, then stop immediately: every future resolves
        # (answer or typed ServiceStopped), none hangs on a dead pipe.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(
            epsilon=0.05, min_samples=256, max_samples=4096, seed=7
        )
        service = ShardedService(
            shards=1, workers_per_shard=1, backend="processes"
        )
        futures = [service.submit(query, tid, budget) for _ in range(16)]
        service.stop(wait=True)
        for future in futures:
            error = future.exception(timeout=60)
            assert error is None or isinstance(error, ServiceStopped), (
                repr(error)
            )
        with pytest.raises(ServiceStopped):
            service.submit(q9(), complete_tid(3, 2, 2))
        assert not shm_entries()

    def test_close_then_stop_is_idempotent(self):
        service = ShardedService(shards=1, backend="processes")
        service.submit(q9(), complete_tid(3, 2, 2)).result()
        service.close()
        service.close()
        service.stop()
        assert not shm_entries()


class TestSpawnStartMethod:
    def test_spawn_worker_matches_reference(self):
        # The fork default is an optimization, not a correctness
        # dependency: a spawned worker (fresh interpreter, re-imported
        # modules) rebuilds the same floats.
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        reference = evaluate_batch(q9(), [tid])
        shard = ProcessShard(0, workers=1, start_method="spawn")
        try:
            from repro.serving.api import QueryRequest

            response = shard.submit(QueryRequest(q9(), tid)).result(
                timeout=120
            )
            assert response.probability == reference.probabilities[0]
        finally:
            shard.stop(wait=True)
        assert not shm_entries()

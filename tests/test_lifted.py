"""Tests for the general lifted-inference engine (:mod:`repro.pqe.lift`).

The randomized property suite pins the Dalvi–Suciu safe-plan search and
its plan IR against the possible-world oracle on small random UCQs
(self-joins included), checks that every unsafe query is *rejected*
rather than silently answered, and asserts that lifted safety agrees
with :attr:`Classification.extensional_safe` across the whole h-query
family — the two safety notions must coincide where they overlap.
"""

from __future__ import annotations

import itertools
import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.dichotomy import classify, classify_query
from repro.pqe.engine import HardQueryError, evaluate, evaluate_batch
from repro.pqe.extensional import (
    extensional_plan_stats,
    lattice_cache_counters,
    plan_ir,
    plan_for,
)
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.lift import (
    Complement,
    IndependentJoin,
    IndependentUnion,
    LeafAtom,
    UnsafeQueryError,
    describe_plan,
    evaluate_plan,
    evaluate_plan_float,
    is_liftable,
    lift_query,
    lifted_probability,
    lifted_probability_float,
)
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import HQuery
from repro.queries.ucq import UnionOfCQs, hquery_to_ucq

pytestmark = pytest.mark.filterwarnings("error")


def random_tid(rng, rels, domain=2, density=0.8):
    """A deterministic random TID over the given relation schema."""
    inst = Instance()
    for name, arity in rels.items():
        inst.declare(name, arity)
    tid = TupleIndependentDatabase(inst)
    for name, arity in sorted(rels.items()):
        for values in itertools.product(range(domain), repeat=arity):
            if rng.random() < density:
                t = inst.add(name, values)
                tid.set_probability(t, Fraction(rng.randrange(0, 9), 8))
    return tid


def h_schema(k):
    return {"R": 1, "T": 1, **{f"S{i}": 2 for i in range(1, k + 1)}}


class TestSafetyAgreement:
    """``is_liftable`` must agree with the Figure-1 criterion
    (monotone and degenerate-or-zero-Euler) on every h-query."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_exhaustive_small_k(self, k):
        n = k + 1
        for table in range(1, 1 << (1 << n)):
            query = HQuery(k, BooleanFunction(n, table))
            assert is_liftable(query) == classify(query).extensional_safe, (
                f"k={k} table={table}"
            )

    def test_sampled_k3(self):
        rng = random.Random(0x11F7ED)
        for table in rng.sample(range(1, (1 << 16) - 1), 40):
            query = HQuery(3, BooleanFunction(4, table))
            assert is_liftable(query) == classify(query).extensional_safe

    def test_classify_query_on_non_h(self):
        safe = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("x", "y"))))
        hard = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S", ("x", "y")), Atom("T", ("y",)))
        )
        safe_cls = classify_query(safe)
        hard_cls = classify_query(hard)
        assert not safe_cls.h_query and not hard_cls.h_query
        assert safe_cls.extensional_safe and not hard_cls.extensional_safe
        assert hard_cls.known_hard and not safe_cls.known_hard

    def test_hard_ucq_h1_rejected(self):
        # The classic hard union R(x)S(x,y) ∨ S(x,y)T(y) (= Q_{h_1} with
        # phi the full disjunction) has no safe plan.
        h1 = UnionOfCQs((
            ConjunctiveQuery((Atom("R", ("x",)), Atom("S1", ("x", "y")))),
            ConjunctiveQuery((Atom("S1", ("x", "y")), Atom("T", ("y",)))),
        ))
        assert not is_liftable(h1)
        with pytest.raises(UnsafeQueryError):
            lift_query(h1)


class TestHQueryParity:
    """The lifted engine on ``hquery_to_ucq(Q)`` must reproduce the
    specialized extensional engine exactly, for every safe monotone
    h-query with k <= 2."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_exact_parity_with_extensional(self, k):
        rng = random.Random(0xB0B5 + k)
        n = k + 1
        for table in range(1, (1 << (1 << n)) - 1):
            query = HQuery(k, BooleanFunction(n, table))
            if not query.phi.is_monotone():
                continue
            if not classify(query).extensional_safe:
                continue
            tid = random_tid(rng, h_schema(k))
            lifted = lifted_probability(hquery_to_ucq(query), tid)
            extensional = extensional_probability(query, tid)
            assert lifted == extensional, f"k={k} table={table}"

    def test_extensional_plan_lowers_onto_ir(self):
        # The h-query fast path itself now evaluates through the IR:
        # plan_ir(plan) carries one HRunKernel per run and the Möbius
        # inclusion-exclusion terms as IndependentUnion sums.
        query = HQuery(2, BooleanFunction.variable(1, 3))
        plan, _ = plan_for(query)
        ir = plan_ir(plan)
        assert ir.op_count() >= 1
        rng = random.Random(0xD1CE)
        tid = random_tid(rng, h_schema(2))
        assert evaluate_plan(ir, tid) == extensional_probability(query, tid)
        assert evaluate_plan_float(ir, tid) == pytest.approx(
            float(extensional_probability(query, tid)), abs=1e-12
        )


class TestRandomizedUCQs:
    """Random small UCQs (self-joins included): every accepted query is
    answered bit-identically to world enumeration; rejections happen and
    never produce a wrong answer."""

    RELS = {"A": 1, "B": 2, "C": 1, "D": 2}
    VARS = ["x", "y", "z"]

    def random_cq(self, rng):
        atoms = []
        for _ in range(rng.randrange(1, 4)):
            rel = rng.choice(sorted(self.RELS))
            terms = tuple(
                rng.choice(self.VARS) for _ in range(self.RELS[rel])
            )
            atoms.append(Atom(rel, terms))
        return ConjunctiveQuery(tuple(atoms))

    def test_random_suite(self):
        rng = random.Random(20260807)
        accepted = rejected = 0
        for _ in range(120):
            query = UnionOfCQs(
                tuple(self.random_cq(rng) for _ in range(rng.randrange(1, 3)))
            )
            tid = random_tid(rng, self.RELS)
            try:
                probability = lifted_probability(query, tid)
            except UnsafeQueryError:
                rejected += 1
                continue
            accepted += 1
            assert probability == probability_by_world_enumeration(query, tid)
        # The generator covers both sides of the dichotomy.
        assert accepted >= 30
        assert rejected >= 5

    def test_constants_shatter_self_joins(self):
        rng = random.Random(7)
        tid = random_tid(rng, {"B": 2}, domain=3, density=1.0)
        query = ConjunctiveQuery((
            Atom("B", (Constant(0), "x")),
            Atom("B", (Constant(1), "y")),
        ))
        assert is_liftable(query)
        assert lifted_probability(query, tid) == (
            probability_by_world_enumeration(query, tid)
        )

    def test_float_backend_tracks_exact(self):
        rng = random.Random(99)
        tid = random_tid(rng, self.RELS)
        query = UnionOfCQs((
            ConjunctiveQuery((Atom("A", ("x",)), Atom("B", ("x", "y")))),
            ConjunctiveQuery((Atom("C", ("z",)),)),
        ))
        exact = lifted_probability(query, tid)
        approx = lifted_probability_float(query, tid)
        assert approx == pytest.approx(float(exact), abs=1e-12)


class TestPlanIR:
    def test_complement_evaluates(self):
        # Complement is IR surface the search does not currently emit;
        # the evaluators must still honor it (1 - Pr of the child).
        inst = Instance()
        inst.declare("R", 1)
        tid = TupleIndependentDatabase(inst)
        t = inst.add("R", (0,))
        tid.set_probability(t, Fraction(1, 3))
        leaf = LeafAtom("R", (0,))  # leaf terms are raw domain values
        assert evaluate_plan(Complement(leaf), tid) == Fraction(2, 3)
        assert evaluate_plan(
            Complement(IndependentJoin((leaf, Complement(leaf)))), tid
        ) == 1 - Fraction(1, 3) * Fraction(2, 3)
        assert evaluate_plan_float(Complement(leaf), tid) == pytest.approx(
            2 / 3, abs=1e-12
        )

    def test_trivial_plans(self):
        inst = Instance()
        inst.declare("R", 1)
        tid = TupleIndependentDatabase(inst)
        assert evaluate_plan(IndependentJoin(()), tid) == 1
        assert evaluate_plan(IndependentUnion(()), tid) == 0

    def test_describe_plan_renders(self):
        query = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("x", "y"))))
        text = describe_plan(lift_query(query))
        assert "project" in text or "join" in text


class TestEngineRouting:
    def setup_method(self):
        rng = random.Random(0x5AFE)
        self.tid = random_tid(rng, {"R": 1, "S": 2, "T": 1}, density=1.0)
        self.safe = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S", ("x", "y")))
        )
        self.hard = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S", ("x", "y")), Atom("T", ("y",)))
        )

    def test_auto_routes_safe_cq_to_lifted(self):
        result = evaluate(self.safe, self.tid)
        assert result.engine == "lifted"
        assert result.probability == probability_by_world_enumeration(
            self.safe, self.tid
        )

    def test_lifted_method_works_on_h_queries_too(self):
        rng = random.Random(0xFADE)
        tid = random_tid(rng, h_schema(2))
        query = HQuery(2, BooleanFunction.variable(1, 3))
        by_lifted = evaluate(query, tid, method="lifted")
        by_extensional = evaluate(query, tid, method="extensional")
        assert by_lifted.probability == by_extensional.probability
        assert by_lifted.engine == "extensional"

    def test_intensional_refuses_non_h_queries(self):
        with pytest.raises(ValueError, match="lifted"):
            evaluate(self.safe, self.tid, method="intensional")

    def test_hard_cq_falls_back_to_brute_force(self):
        result = evaluate(self.hard, self.tid)
        assert result.engine == "brute_force"
        assert result.probability == probability_by_world_enumeration(
            self.hard, self.tid
        )

    def test_batch_routes_lifted(self):
        rng = random.Random(0xBA7C)
        tids = [
            random_tid(rng, {"R": 1, "S": 2, "T": 1}, density=1.0)
            for _ in range(3)
        ]
        batch = evaluate_batch(self.safe, tids)
        assert batch.engine == "lifted"
        singles = [evaluate_plan_float(lift_query(self.safe), t) for t in tids]
        assert list(batch.probabilities) == singles

    def test_lifted_method_rejects_hard_query(self):
        with pytest.raises((UnsafeQueryError, HardQueryError)):
            evaluate(self.hard, self.tid, method="lifted")


class TestLatticeCacheCounters:
    """Satellite: the bounded lattice/plan caches expose hit/miss
    counters through ``extensional_plan_stats``."""

    def test_counters_shape(self):
        counters = lattice_cache_counters()
        assert set(counters) == {
            "mobius_terms", "cnf_lattice", "dnf_lattice", "plan_ir"
        }
        for info in counters.values():
            assert set(info) == {"hits", "misses", "size", "limit"}
            assert info["limit"] is not None

    def test_counters_move_and_surface_in_stats(self):
        rng = random.Random(3)
        tid = random_tid(rng, h_schema(1))
        query = HQuery(1, BooleanFunction.variable(1, 2))
        before = lattice_cache_counters()["mobius_terms"]
        extensional_probability(query, tid)
        extensional_probability(query, tid)
        after = lattice_cache_counters()["mobius_terms"]
        assert (
            after["hits"] + after["misses"]
            >= before["hits"] + before["misses"]
        )
        stats = extensional_plan_stats()
        assert stats.lattice_caches["plan_ir"]["limit"] is not None


class TestServingLiftedRoute:
    """A non-h safe query routes ``engine="lifted"`` end-to-end, and the
    two serving backends agree bit-for-float."""

    def build_workload(self):
        rng = random.Random(0x11F7)
        tid = random_tid(rng, {"R": 1, "S": 2}, domain=3, density=1.0)
        cq = ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("x", "y"))))
        return cq, tid

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_backend_serves_lifted(self, backend):
        from repro.serving import ShardedService

        cq, tid = self.build_workload()
        reference = evaluate_plan_float(lift_query(cq), tid)
        with ShardedService(shards=2, backend=backend) as service:
            for query in (cq, UnionOfCQs((cq,))):
                response = service.submit(query, tid).result()
                assert response.engine == "lifted"
                assert response.probability == reference

    def test_worker_codec_round_trips_every_query_shape(self):
        from repro.serving.worker import decode_query, encode_query

        h = HQuery(2, BooleanFunction.variable(0, 3))
        cq = ConjunctiveQuery((
            Atom("R", ("x", Constant(7))),
            Atom("S", (Constant((1, 2)), "y")),
        ))
        ucq = UnionOfCQs((cq, ConjunctiveQuery((Atom("T", ("z",)),))))
        for query in (h, cq, ucq):
            assert decode_query(encode_query(query)) == query
        with pytest.raises(TypeError):
            encode_query(object())

    def test_gateway_wire_form_decodes_ucqs(self):
        from repro.serving.gateway import _decode_query

        decoded = _decode_query(
            {"ucq": [[["R", ["x", {"const": 3}]]], [["S", ["x", "y"]]]]}
        )
        assert decoded == UnionOfCQs((
            ConjunctiveQuery((Atom("R", ("x", Constant(3))),)),
            ConjunctiveQuery((Atom("S", ("x", "y")),)),
        ))
        with pytest.raises(ValueError):
            _decode_query({"ucq": [[["R", [{"bogus": 1}]]]]})

"""Tests for the Figure-1 classifier and the hardness machinery."""

from __future__ import annotations

import random

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.core.zoo import phi_9, phi_max_euler
from repro.db.generator import random_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.dichotomy import Region, classify_function, region_counts
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.hardness import (
    is_provably_hard,
    monotone_witness_with_same_euler,
    probability_by_reduction,
)
from repro.queries.hqueries import HQuery
from tests.conftest import small_random_tid


class TestClassifier:
    def test_phi9_zero_euler(self):
        result = classify_function(phi_9())
        assert result.region is Region.ZERO_EULER
        assert result.dd_ptime and result.safe and result.is_ucq
        assert not result.obdd_ptime

    def test_degenerate(self):
        result = classify_function(BooleanFunction.variable(0, 4))
        assert result.region is Region.DEGENERATE
        assert result.obdd_ptime and result.dd_ptime

    def test_hard_monotone(self):
        # The full disjunction: e != 0, monotone => #P-hard.
        phi = BooleanFunction.bottom(4)
        for i in range(4):
            phi = phi | BooleanFunction.variable(i, 4)
        result = classify_function(phi)
        assert result.region is Region.HARD
        assert result.known_hard and not result.dd_ptime

    def test_conjectured_hard(self):
        result = classify_function(phi_max_euler(3))
        assert result.region is Region.CONJECTURED_HARD
        assert not result.known_hard and not result.dd_ptime

    def test_every_monotone_classified_consistently(self):
        from repro.enumeration.monotone import enumerate_monotone_functions

        for phi in enumerate_monotone_functions(3):
            result = classify_function(phi)
            # [12]: monotone queries are never in the conjectured region.
            assert result.region is not Region.CONJECTURED_HARD
            assert result.safe == (phi.euler_characteristic() == 0)

    def test_region_counts_partition(self):
        functions = [BooleanFunction(3, t) for t in range(256)]
        counts = region_counts(functions)
        assert sum(counts.values()) == 256

    def test_degenerate_subset_of_zero_euler(self):
        for table in range(256):
            phi = BooleanFunction(3, table)
            if phi.is_degenerate():
                assert phi.euler_characteristic() == 0


class TestHardnessMachinery:
    def test_is_provably_hard(self):
        assert not is_provably_hard(phi_9())
        assert not is_provably_hard(phi_max_euler(3))  # outside range
        hard = BooleanFunction.bottom(4)
        for i in range(4):
            hard = hard | BooleanFunction.variable(i, 4)
        assert is_provably_hard(hard)

    def test_monotone_witness(self):
        rng = random.Random(31)
        for _ in range(10):
            phi = BooleanFunction.random(4, rng)
            try:
                witness = monotone_witness_with_same_euler(phi)
            except ValueError:
                from repro.core.euler import monotone_euler_extremes

                low, high = monotone_euler_extremes(3)
                assert not low <= phi.euler_characteristic() <= high
                continue
            assert witness.is_monotone()
            assert (
                witness.euler_characteristic() == phi.euler_characteristic()
            )

    def test_witness_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            monotone_witness_with_same_euler(phi_max_euler(3))

    def test_reduction_computes_probability(self):
        # Theorem 6.2(a) as an algorithm: evaluate a non-monotone
        # zero-Euler query through its monotone witness + corrections.
        rng = random.Random(37)
        found = 0
        while found < 3:
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() != 0 or phi.is_monotone():
                continue
            found += 1
            query = HQuery(3, phi)
            tid = small_random_tid(3, rng)
            value = probability_by_reduction(
                query, tid, oracle=extensional_probability
            )
            assert value == probability_by_world_enumeration(query, tid)

    def test_reduction_nonzero_euler(self):
        # Also works for e != 0 within the monotone range, using brute
        # force as the (stand-in) oracle for the #P-hard witness.
        rng = random.Random(41)
        found = 0
        while found < 2:
            phi = BooleanFunction.random(4, rng)
            euler = phi.euler_characteristic()
            from repro.core.euler import monotone_euler_extremes

            low, high = monotone_euler_extremes(3)
            if euler == 0 or not low <= euler <= high:
                continue
            found += 1
            query = HQuery(3, phi)
            tid = small_random_tid(3, rng, max_tuples=11)
            value = probability_by_reduction(
                query, tid, oracle=probability_by_world_enumeration
            )
            assert value == probability_by_world_enumeration(query, tid)

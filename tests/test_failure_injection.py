"""Failure injection: every validator must catch a deliberately broken
artefact.

The library's safety story is that nothing is trusted: circuits, ±
derivations, fragmentations and matchings all carry checkable certificates.
These tests corrupt each kind of artefact in a targeted way and assert the
corresponding checker rejects it (no silent wrong answers).
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import (
    Circuit,
    CircuitPropertyError,
    assert_d_d,
    check_determinism_by_enumeration,
    is_decomposable,
    probability,
)
from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import (
    Fragmentation,
    Hole,
    NegOrTemplate,
    OrNode,
    fragment,
    fragment_via_matching,
)
from repro.core.transformation import Step, apply_steps, verify_steps
from repro.matching.perfect_matching import steps_from_matching
from repro.queries.hqueries import phi_9


class TestCircuitValidation:
    def test_overlapping_and_rejected(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        y = circuit.add_var("y")
        shared = circuit.add_or([x, y])
        # (x ∨ y) ∧ x shares variable x between its inputs.
        circuit.set_output(circuit.add_and([shared, x]))
        assert not is_decomposable(circuit)
        with pytest.raises(CircuitPropertyError):
            assert_d_d(circuit)

    def test_overlapping_or_rejected(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        y = circuit.add_var("y")
        circuit.set_output(circuit.add_or([x, circuit.add_and([x, y])]))
        assert not check_determinism_by_enumeration(circuit)
        with pytest.raises(CircuitPropertyError):
            assert_d_d(circuit)

    def test_nondeterministic_or_probability_wrong(self):
        # Demonstrate *why* validation matters: the linear pass over a
        # non-deterministic ∨ overcounts.
        circuit = Circuit()
        x = circuit.add_var("x")
        circuit.set_output(circuit.add_or([x, x]))
        value = probability(circuit, {"x": Fraction(1, 2)})
        assert value == Fraction(1)  # wrong on purpose: 1/2 + 1/2
        assert not check_determinism_by_enumeration(circuit)


class TestStepValidation:
    def test_replay_rejects_wrong_direction(self):
        phi = BooleanFunction.bottom(3)
        bad = [Step(-1, 0b000, 0)]  # removing from ⊥
        with pytest.raises(ValueError):
            apply_steps(phi, bad)
        assert not verify_steps(phi, bad, phi)

    def test_replay_rejects_half_colored_pair(self):
        phi = BooleanFunction.from_satisfying(3, [0b001])
        with pytest.raises(ValueError):
            apply_steps(phi, [Step(1, 0b000, 0)])  # 001 already colored

    def test_verify_steps_detects_wrong_target(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b001])
        steps = [Step(-1, 0b000, 0)]
        assert verify_steps(phi, steps, BooleanFunction.bottom(3))
        assert not verify_steps(
            phi, steps, BooleanFunction.from_satisfying(3, [0b010])
        )


class TestFragmentationValidation:
    def test_nondegenerate_leaf_rejected(self):
        phi = phi_9()
        fragmentation = fragment(phi)
        # Swap in a nondegenerate leaf of the same function value: verify()
        # must notice the leaf itself is illegal.
        corrupted = Fragmentation(
            NegOrTemplate.single_hole(), [phi], phi
        )
        assert not corrupted.verify()  # phi_9 is nondegenerate
        assert fragmentation.verify()

    def test_nondeterministic_template_rejected(self):
        a = BooleanFunction.from_satisfying(2, [0b00, 0b01])
        overlapping = Fragmentation(
            NegOrTemplate(OrNode((Hole(0), Hole(1))), 2),
            [a, a],  # identical leaves overlap
            a,
        )
        assert not overlapping.verify()

    def test_wrong_function_rejected(self):
        phi = phi_9()
        fragmentation = fragment(phi)
        wrong = Fragmentation(
            fragmentation.template, fragmentation.leaves, ~phi
        )
        assert not wrong.verify()


class TestMatchingValidation:
    def test_incomplete_matching_rejected(self):
        phi = phi_9()
        from repro.matching.perfect_matching import colored_matching

        pairs = colored_matching(phi)
        with pytest.raises(ValueError):
            fragment_via_matching(phi, pairs[:-1])
        with pytest.raises(ValueError):
            steps_from_matching(phi, pairs[:-1])

    def test_foreign_pair_rejected(self):
        phi = phi_9()
        from repro.matching.perfect_matching import colored_matching

        pairs = colored_matching(phi)
        # Replace one pair by a non-satisfying one.
        non_model = next(
            m for m in range(16) if not phi(m) and not phi(m ^ 1)
        )
        corrupted = pairs[:-1] + [(non_model, non_model ^ 1)]
        with pytest.raises(ValueError):
            fragment_via_matching(phi, corrupted)


class TestProbabilityInputValidation:
    def test_tid_rejects_bad_probability(self):
        from repro.db.tid import TupleIndependentDatabase

        tid = TupleIndependentDatabase()
        with pytest.raises(ValueError):
            tid.add("R", ("a",), Fraction(7, 5))

    def test_model_count_overcounts_on_invalid_circuit(self):
        # A non-deterministic ∨ makes the linear pass overcount models
        # (always by an integer at p = 1/2, so it cannot raise — it must be
        # caught by the determinism checker instead).
        circuit = Circuit()
        x = circuit.add_var("x")
        y = circuit.add_var("y")
        circuit.set_output(circuit.add_or([x, y, circuit.add_and([x, y])]))
        from repro.circuits import model_count

        true_count = len(set(circuit.models_by_enumeration()))
        assert true_count == 3
        assert model_count(circuit) == 5  # wrong, as expected
        assert not check_determinism_by_enumeration(circuit)


class TestRandomizedCorruption:
    def test_mutated_derivations_never_silently_pass(self):
        rng = random.Random(99)
        from repro.core.transformation import reduce_to_bottom

        for _ in range(20):
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() != 0 or phi.sat_count() == 0:
                continue
            steps = reduce_to_bottom(phi)
            if not steps:
                continue
            index = rng.randrange(len(steps))
            original = steps[index]
            mutated = Step(
                -original.sign, original.valuation, original.variable
            )
            corrupted = steps[:index] + [mutated] + steps[index + 1 :]
            # Either the replay raises, or it reaches something that is
            # not ⊥ — silent success is the only forbidden outcome.
            try:
                result = apply_steps(phi, corrupted)
            except ValueError:
                continue
            assert not result.is_bottom()

"""Extensional vs intensional agreement beyond the brute-force horizon.

The brute-force oracle stops at ~20 tuples; these tests cross-validate the
two polynomial engines directly against each other on larger instances,
where a bug in either (Möbius coefficients, safe plans, automata, template
determinism) would almost surely break the exact equality.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.enumeration.monotone import monotone_tables
from repro.pqe.extensional import is_safe, probability as ext_probability
from repro.pqe.intensional import probability as int_probability
from repro.queries.hqueries import HQuery, q9


class TestAgreementAtScale:
    def test_q9_on_larger_complete_instances(self):
        for n in (3, 4):
            tid = complete_tid(3, n, n, prob=Fraction(1, 2))
            assert len(tid) > 22  # beyond the brute-force limit
            assert ext_probability(q9(), tid) == int_probability(q9(), tid)

    def test_q9_on_larger_random_instances(self):
        rng = random.Random(97)
        for _ in range(3):
            tid = random_tid(3, 3, 3, rng, tuple_density=0.7)
            assert ext_probability(q9(), tid) == int_probability(q9(), tid)

    def test_random_safe_monotone_functions_at_k3(self):
        rng = random.Random(98)
        tid = complete_tid(3, 2, 3, prob=Fraction(1, 3))
        tables = monotone_tables(4)
        checked = 0
        while checked < 12:
            phi = BooleanFunction(4, rng.choice(tables))
            query = HQuery(3, phi)
            if not is_safe(query):
                continue
            assert ext_probability(query, tid) == int_probability(
                query, tid
            ), phi
            checked += 1

    def test_rectangular_instances(self):
        for n_left, n_right in ((1, 5), (5, 1), (2, 4)):
            tid = complete_tid(3, n_left, n_right, prob=Fraction(2, 5))
            assert ext_probability(q9(), tid) == int_probability(q9(), tid)

    def test_skewed_probabilities(self):
        # Extreme per-tuple probabilities stress the exact arithmetic.
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 997))
        value = ext_probability(q9(), tid)
        assert value == int_probability(q9(), tid)
        assert 0 < value < Fraction(1, 1000)


class TestCanonicalizationIdempotence:
    def test_canonicalize_idempotent(self):
        from repro.core.transformation import (
            apply_steps,
            canonicalize,
            minimize_to_even,
        )

        rng = random.Random(99)
        for _ in range(25):
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() < 0:
                continue
            even = apply_steps(phi, minimize_to_even(phi))
            canonical = apply_steps(even, canonicalize(even))
            assert canonicalize(canonical) == []

    def test_canonical_form_depends_only_on_count(self):
        # Two canonical forms with equal model count on the same variable
        # set agree below the top level (Proposition 6.1, step 3 setup).
        from repro.core.transformation import (
            apply_steps,
            canonicalize,
            is_canonical_form,
            minimize_to_even,
        )

        rng = random.Random(100)
        seen: dict[int, BooleanFunction] = {}
        for _ in range(40):
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() <= 0:
                continue
            even = apply_steps(phi, minimize_to_even(phi))
            canonical = apply_steps(even, canonicalize(even))
            assert is_canonical_form(canonical)
            count = canonical.sat_count()
            if count in seen:
                other = seen[count]
                below_top_a = {
                    m
                    for m in canonical.satisfying_masks()
                    if m.bit_count()
                    < max(
                        x.bit_count() for x in canonical.satisfying_masks()
                    )
                }
                below_top_b = {
                    m
                    for m in other.satisfying_masks()
                    if m.bit_count()
                    < max(x.bit_count() for x in other.satisfying_masks())
                }
                assert below_top_a == below_top_b
            else:
                seen[count] = canonical

"""Tests for the ± transformation (Section 5 / Section 6.2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import valuations as v
from repro.core.boolean_function import BooleanFunction
from repro.core.transformation import (
    Step,
    apply_step,
    apply_steps,
    are_equivalent,
    canonicalize,
    chainkill_steps,
    chainswap_steps,
    fetch_pair,
    invert_steps,
    is_canonical_form,
    minimize_to_even,
    reduce_to_bottom,
    transform,
    verify_steps,
)


def tables(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1)


class TestStep:
    def test_pair(self):
        step = Step(1, 0b010, 0)
        assert step.pair == (0b010, 0b011)

    def test_inverse(self):
        step = Step(1, 0b010, 0)
        assert step.inverse() == Step(-1, 0b010, 0)

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            Step(0, 0, 0)

    def test_apply_add(self):
        phi = BooleanFunction.bottom(2)
        result = apply_step(phi, Step(1, 0b00, 0))
        assert set(result.satisfying_masks()) == {0b00, 0b01}

    def test_apply_add_rejects_colored(self):
        phi = BooleanFunction.from_satisfying(2, [0b01])
        with pytest.raises(ValueError):
            apply_step(phi, Step(1, 0b00, 0))

    def test_apply_remove(self):
        phi = BooleanFunction.from_satisfying(2, [0b00, 0b01])
        assert apply_step(phi, Step(-1, 0b00, 0)).is_bottom()

    def test_apply_remove_rejects_uncolored(self):
        phi = BooleanFunction.from_satisfying(2, [0b01])
        with pytest.raises(ValueError):
            apply_step(phi, Step(-1, 0b00, 0))

    @given(tables(3), st.integers(0, 7), st.integers(0, 2))
    def test_step_preserves_euler(self, table, valuation, variable):
        phi = BooleanFunction(3, table)
        for sign in (-1, 1):
            step = Step(sign, valuation, variable)
            try:
                result = apply_step(phi, step)
            except ValueError:
                continue
            assert result.euler_characteristic() == phi.euler_characteristic()

    def test_invert_steps_roundtrip(self):
        phi = BooleanFunction.bottom(2)
        steps = [Step(1, 0b00, 0), Step(1, 0b10, 0)]
        forward = apply_steps(phi, steps)
        assert apply_steps(forward, invert_steps(steps)) == phi


class TestChaining:
    """Lemma 5.10."""

    def test_chainkill_adjacent(self):
        # Path of length 1 (n = 0): both endpoints colored, remove them.
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b001])
        steps = chainkill_steps(phi, [0b000, 0b001])
        assert apply_steps(phi, steps).is_bottom()

    def test_chainkill_longer_path(self):
        # nu = 000, nu' = 111 (opposite parities); interior 001, 011
        # uncolored (even count).
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b111, 0b100])
        path = [0b000, 0b001, 0b011, 0b111]
        steps = chainkill_steps(phi, path)
        result = apply_steps(phi, steps)
        assert set(result.satisfying_masks()) == {0b100}

    def test_chainkill_rejects_colored_interior(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b001, 0b111])
        with pytest.raises(ValueError):
            chainkill_steps(phi, [0b000, 0b001, 0b011, 0b111])

    def test_chainkill_rejects_odd_interior(self):
        # Same-parity endpoints force an odd interior: not a chainkill.
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b011])
        with pytest.raises(ValueError):
            chainkill_steps(phi, [0b000, 0b001, 0b011])

    def test_chainswap_moves_color(self):
        # Figure 4: swap along a path with odd interior (same-parity
        # endpoints, here both even: 000 -> 011 through 001).
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b111])
        path = [0b000, 0b001, 0b011]
        steps = chainswap_steps(phi, path)
        result = apply_steps(phi, steps)
        assert set(result.satisfying_masks()) == {0b011, 0b111}

    def test_chainswap_rejects_colored_target(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b011])
        with pytest.raises(ValueError):
            chainswap_steps(phi, [0b000, 0b001, 0b011])

    def test_chain_rejects_non_path(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b011])
        with pytest.raises(ValueError):
            chainkill_steps(phi, [0b000, 0b011])


class TestFetching:
    """Lemma 5.11."""

    @given(tables(4))
    @settings(max_examples=80)
    def test_fetch_path_properties(self, table):
        phi = BooleanFunction(4, table)
        if phi.sat_count() == abs(phi.euler_characteristic()):
            with pytest.raises(ValueError):
                fetch_pair(phi)
            return
        path = fetch_pair(phi)
        assert v.is_simple_hypercube_path(path)
        assert phi(path[0]) and phi(path[-1])
        assert v.parity(path[0]) != v.parity(path[-1])
        for interior in path[1:-1]:
            assert not phi(interior)


class TestReduceToBottom:
    """Proposition 5.9."""

    @given(tables(4))
    @settings(max_examples=60)
    def test_reduces_zero_euler(self, table):
        phi = BooleanFunction(4, table)
        if phi.euler_characteristic() != 0:
            with pytest.raises(ValueError):
                reduce_to_bottom(phi)
            return
        steps = reduce_to_bottom(phi)
        assert apply_steps(phi, steps).is_bottom()
        # Each chainkill removes exactly two models, so the derivation uses
        # polynomially many moves in the table size.
        assert len(steps) <= phi.sat_count() * (1 << phi.nvars)

    def test_bottom_needs_no_steps(self):
        assert reduce_to_bottom(BooleanFunction.bottom(3)) == []

    def test_top_reduces(self):
        phi = BooleanFunction.top(3)
        steps = reduce_to_bottom(phi)
        assert apply_steps(phi, steps).is_bottom()


class TestMinimizeToEven:
    """Lemma 6.5."""

    @given(tables(4))
    @settings(max_examples=60)
    def test_result_has_even_models(self, table):
        phi = BooleanFunction(4, table)
        if phi.euler_characteristic() < 0:
            with pytest.raises(ValueError):
                minimize_to_even(phi)
            return
        steps = minimize_to_even(phi)
        result = apply_steps(phi, steps)
        assert all(v.parity(m) == 1 for m in result.satisfying_masks())
        assert result.euler_characteristic() == phi.euler_characteristic()
        assert result.sat_count() == phi.euler_characteristic()


class TestCanonicalForm:
    """Definition 6.6 and Lemma 6.7."""

    def test_is_canonical_examples(self):
        assert is_canonical_form(BooleanFunction.bottom(3))
        # Models = {∅}: the single smallest even valuation.
        assert is_canonical_form(BooleanFunction.exactly(3, []))
        # Models = {{0,1}} but ∅ missing: bad pair.
        assert not is_canonical_form(
            BooleanFunction.from_satisfying(3, [{0, 1}])
        )
        # Odd-size model: not canonical.
        assert not is_canonical_form(BooleanFunction.exactly(3, {0}))

    @given(tables(4))
    @settings(max_examples=60)
    def test_canonicalize(self, table):
        phi = BooleanFunction(4, table)
        if phi.euler_characteristic() < 0:
            return
        even_steps = minimize_to_even(phi)
        even = apply_steps(phi, even_steps)
        steps = canonicalize(even)
        result = apply_steps(even, steps)
        assert is_canonical_form(result)
        assert result.sat_count() == even.sat_count()

    def test_canonicalize_rejects_odd_models(self):
        with pytest.raises(ValueError):
            canonicalize(BooleanFunction.exactly(3, {0}))

    def test_canonical_forms_with_same_count_nearly_agree(self):
        # Two canonical forms with equal model count agree below the top
        # level (the alignment invariant of Proposition 6.1's proof).
        rng = random.Random(66)
        for _ in range(20):
            a = BooleanFunction.random(4, rng)
            b = BooleanFunction.random(4, rng)
            if a.euler_characteristic() != b.euler_characteristic():
                continue
            if a.euler_characteristic() <= 0:
                continue
            ca = apply_steps(a, minimize_to_even(a))
            ca = apply_steps(ca, canonicalize(ca))
            cb = apply_steps(b, minimize_to_even(b))
            cb = apply_steps(cb, canonicalize(cb))
            sizes_a = sorted(v.popcount(m) for m in ca.satisfying_masks())
            sizes_b = sorted(v.popcount(m) for m in cb.satisfying_masks())
            assert sizes_a == sizes_b


class TestTransform:
    """Proposition 6.1."""

    @given(tables(3), tables(3))
    @settings(max_examples=100)
    def test_transform_3vars(self, ta, tb):
        a, b = BooleanFunction(3, ta), BooleanFunction(3, tb)
        if a.euler_characteristic() != b.euler_characteristic():
            with pytest.raises(ValueError):
                transform(a, b)
            return
        steps = transform(a, b)
        assert verify_steps(a, steps, b)

    @given(tables(4), tables(4))
    @settings(max_examples=40)
    def test_transform_4vars(self, ta, tb):
        a, b = BooleanFunction(4, ta), BooleanFunction(4, tb)
        if a.euler_characteristic() != b.euler_characteristic():
            return
        steps = transform(a, b)
        assert verify_steps(a, steps, b)

    def test_transform_negative_euler(self):
        rng = random.Random(61)
        done = 0
        while done < 5:
            a = BooleanFunction.random(4, rng)
            b = BooleanFunction.random(4, rng)
            if a.euler_characteristic() != b.euler_characteristic():
                continue
            if a.euler_characteristic() >= 0:
                continue
            assert verify_steps(a, transform(a, b), b)
            done += 1

    def test_are_equivalent_iff_same_euler(self):
        rng = random.Random(62)
        for _ in range(50):
            a = BooleanFunction.random(4, rng)
            b = BooleanFunction.random(4, rng)
            assert are_equivalent(a, b) == (
                a.euler_characteristic() == b.euler_characteristic()
            )

    def test_exhaustive_2vars(self):
        # All 256 pairs of 2-variable functions.
        for ta in range(16):
            for tb in range(16):
                a, b = BooleanFunction(2, ta), BooleanFunction(2, tb)
                if a.euler_characteristic() != b.euler_characteristic():
                    continue
                assert verify_steps(a, transform(a, b), b)

"""Deeper semantic tests for H-queries: h-patterns, monotone behavior on
growing worlds, and the pattern distribution's structure."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.pqe.brute_force import pattern_distribution
from repro.queries.hqueries import HQuery, h_query, q9


class TestHPattern:
    def test_empty_instance_pattern_zero(self):
        from repro.db.relation import Instance

        db = Instance()
        assert q9().h_pattern(db) == 0

    def test_complete_instance_full_pattern(self):
        tid = complete_tid(3, 2, 2)
        assert q9().h_pattern(tid.instance) == 0b1111

    def test_pattern_monotone_in_worlds(self):
        # Adding tuples can only set more pattern bits.
        rng = random.Random(71)
        tid = random_tid(3, 2, 2, rng, tuple_density=0.6)
        tuple_ids = tid.instance.tuple_ids()
        query = q9()
        present: list = []
        previous_pattern = 0
        for tuple_id in tuple_ids:
            present.append(tuple_id)
            world = tid.instance.restrict_to(present)
            pattern = query.h_pattern(world)
            assert pattern & previous_pattern == previous_pattern
            previous_pattern = pattern

    def test_holds_in_factorizes_through_pattern(self):
        rng = random.Random(72)
        for _ in range(5):
            tid = random_tid(2, 2, 2, rng, tuple_density=0.5)
            phi = BooleanFunction.random(3, rng)
            query = HQuery(2, phi)
            pattern = query.h_pattern(tid.instance)
            assert query.holds_in(tid.instance) == phi(pattern)


class TestPatternDistribution:
    def test_distribution_marginalizes_to_subquery_probabilities(self):
        from repro.pqe.safe_plans import disjunction_probability

        rng = random.Random(73)
        tid = random_tid(2, 2, 2, rng, tuple_density=0.5)
        if len(tid) > 12:
            tid = complete_tid(2, 1, 2, prob=Fraction(1, 2))
        query = HQuery(2, BooleanFunction.top(3))
        distribution = pattern_distribution(query, tid)
        # Marginal of h_i = sum of pattern masses with bit i set; compare
        # with the lifted single-index evaluation.
        for i in range(3):
            marginal = sum(
                (mass for pattern, mass in distribution.items()
                 if pattern >> i & 1),
                Fraction(0),
            )
            assert marginal == disjunction_probability([i], 2, tid)

    def test_any_query_probability_from_distribution(self):
        rng = random.Random(74)
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 3))
        distribution = pattern_distribution(
            HQuery(2, BooleanFunction.top(3)), tid
        )
        from repro.pqe.brute_force import probability_by_world_enumeration

        for _ in range(5):
            phi = BooleanFunction.random(3, rng)
            query = HQuery(2, phi)
            from_distribution = sum(
                (mass for pattern, mass in distribution.items()
                 if phi(pattern)),
                Fraction(0),
            )
            assert from_distribution == probability_by_world_enumeration(
                query, tid
            )


class TestSubqueryShapes:
    def test_relations_partition_along_l(self):
        # The Appendix-B.1 split: queries below l use R,S1..Sl; above use
        # S_{l+1}..S_k,T.
        k = 3
        for l in range(k + 1):
            left_relations = set()
            for i in range(l):
                left_relations |= h_query(k, i).relations()
            right_relations = set()
            for i in range(l + 1, k + 1):
                right_relations |= h_query(k, i).relations()
            assert not left_relations & right_relations

    def test_adjacent_queries_share_one_relation(self):
        k = 3
        for i in range(k):
            shared = h_query(k, i).relations() & h_query(k, i + 1).relations()
            assert len(shared) == 1

"""Tests against the bundled sample dataset (data/drug_targets.tsv)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.db.io import load_tid
from repro.pqe import evaluate, is_safe
from repro.queries.hqueries import q9

DATA = Path(__file__).resolve().parent.parent / "data" / "drug_targets.tsv"


@pytest.fixture(scope="module")
def sample_tid():
    if not DATA.exists():
        pytest.skip("sample dataset not present")
    return load_tid(DATA)


class TestSampleDataset:
    def test_loads_with_schema(self, sample_tid):
        names = {r.name for r in sample_tid.instance.relations()}
        assert names == {"R", "S1", "S2", "S3", "T"}

    def test_q9_evaluates(self, sample_tid):
        assert is_safe(q9())
        result = evaluate(q9(), sample_tid)
        assert 0 <= result.probability <= 1
        assert result.engine == "intensional"

    def test_engines_agree_on_sample(self, sample_tid):
        from repro.pqe import extensional_probability

        result = evaluate(q9(), sample_tid)
        assert result.probability == extensional_probability(
            q9(), sample_tid
        )

    def test_compiled_circuit_reusable(self, sample_tid):
        from fractions import Fraction

        from repro.pqe import extensional_probability

        result = evaluate(q9(), sample_tid, method="intensional")
        victim = sample_tid.instance.tuple_ids()[0]
        sample_tid.set_probability(victim, Fraction(1, 10))
        updated = result.compiled.probability(sample_tid)
        assert updated == extensional_probability(q9(), sample_tid)

"""Cross-module property tests: the invariants that tie the paper together.

These tests drive random Boolean functions and random TIDs through *all*
layers at once and assert the global contracts:

* the three engines agree exactly wherever they are all defined;
* compiled circuits are genuine d-Ds (validated structurally and
  semantically) whose truth tables equal the ground-truth lineage;
* ± derivations, fragmentations and matchings round-trip.
"""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import assert_d_d
from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import fragment
from repro.core.transformation import apply_steps, reduce_to_bottom
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.brute_force import (
    pattern_distribution,
    probability_by_world_enumeration,
)
from repro.pqe.extensional import is_safe, probability as ext_probability
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import HQuery

K = 2  # arity used throughout: small enough for exhaustive oracles


def tid_strategy():
    """Tiny TIDs over the k = 2 schema with exact rational probabilities."""

    def build(seed: int) -> TupleIndependentDatabase:
        rng = random.Random(seed)
        tid = TupleIndependentDatabase()
        for name, arity in (("R", 1), ("S1", 2), ("S2", 2), ("T", 1)):
            tid.instance.declare(name, arity)
        for x in ("a1", "a2"):
            if rng.random() < 0.7:
                tid.add("R", (x,), Fraction(rng.randint(0, 4), 4))
            if rng.random() < 0.7:
                tid.add("T", (x,), Fraction(rng.randint(0, 4), 4))
            for y in ("b1", "b2"):
                for s in ("S1", "S2"):
                    if rng.random() < 0.55:
                        tid.add(s, (x, y), Fraction(rng.randint(0, 4), 4))
        return tid

    return st.integers(min_value=0, max_value=10_000).map(build)


def functions(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1).map(
        lambda t: BooleanFunction(nvars, t)
    )


class TestEngineAgreement:
    @given(functions(K + 1), tid_strategy())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_intensional_matches_brute_force(self, phi, tid):
        if phi.euler_characteristic() != 0:
            return
        if len(tid) > 12:
            return
        query = HQuery(K, phi)
        compiled = compile_lineage(query, tid.instance)
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )

    @given(functions(K + 1), tid_strategy())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_extensional_matches_brute_force(self, phi, tid):
        monotone = phi.up_closure()
        query = HQuery(K, monotone)
        if not is_safe(query) or len(tid) > 12:
            return
        assert ext_probability(query, tid) == (
            probability_by_world_enumeration(query, tid)
        )

    @given(tid_strategy())
    @settings(max_examples=15, deadline=None)
    def test_pattern_distribution_is_a_distribution(self, tid):
        if len(tid) > 12:
            return
        query = HQuery(K, BooleanFunction.top(K + 1))
        distribution = pattern_distribution(query, tid)
        assert sum(distribution.values()) == 1
        assert all(p >= 0 for p in distribution.values())


class TestCompiledCircuitContracts:
    @given(functions(K + 1), tid_strategy())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_compiled_circuit_is_valid_d_d(self, phi, tid):
        if phi.euler_characteristic() != 0 or len(tid) > 10:
            return
        compiled = compile_lineage(HQuery(K, phi), tid.instance)
        assert_d_d(compiled.circuit)

    @given(functions(K + 1), tid_strategy())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_compiled_circuit_equals_ground_truth_lineage(self, phi, tid):
        if phi.euler_characteristic() != 0 or len(tid) > 9:
            return
        query = HQuery(K, phi)
        compiled = compile_lineage(query, tid.instance)
        tuple_ids, truth = query.lineage_truth_table(tid.instance)
        for mask in range(1 << len(tuple_ids)):
            assignment = {
                tuple_ids[j]: bool(mask >> j & 1)
                for j in range(len(tuple_ids))
            }
            assert compiled.circuit.evaluate(assignment) == truth(mask)


class TestDerivationRoundTrips:
    @given(functions(4))
    @settings(max_examples=50, deadline=None)
    def test_reduce_and_fragment_consistent(self, phi):
        if phi.euler_characteristic() != 0:
            return
        steps = reduce_to_bottom(phi)
        assert apply_steps(phi, steps).is_bottom()
        fragmentation = fragment(phi)
        assert fragmentation.verify()
        # The fragmentation's leaf count tracks the derivation length.
        if phi.is_nondegenerate():
            assert fragmentation.template.num_holes == len(steps) + 1

    @given(functions(4))
    @settings(max_examples=50, deadline=None)
    def test_euler_invariance_under_derivation(self, phi):
        if phi.euler_characteristic() != 0:
            return
        current = phi
        for step in reduce_to_bottom(phi):
            current = apply_steps(current, [step])
            assert current.euler_characteristic() == 0

"""Tests for the relational and TID substrate."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.db import (
    Instance,
    TupleId,
    TupleIndependentDatabase,
    complete_tid,
    path_tid,
    random_tid,
    relation_names,
    valuation_probability,
)


class TestInstance:
    def test_add_and_lookup(self):
        db = Instance()
        tid = db.add("R", ("a",))
        assert tid == TupleId("R", ("a",))
        assert db.has("R", ("a",))
        assert not db.has("R", ("b",))

    def test_arity_enforced(self):
        db = Instance()
        db.add("S", ("a", "b"))
        with pytest.raises(ValueError):
            db.add("S", ("a",))

    def test_redeclare_conflicting_arity(self):
        db = Instance()
        db.declare("R", 1)
        with pytest.raises(ValueError):
            db.declare("R", 2)

    def test_set_semantics(self):
        db = Instance()
        db.add("R", ("a",))
        db.add("R", ("a",))
        assert len(db) == 1

    def test_tuple_ids_sorted(self):
        db = Instance()
        db.add("S1", ("b", "c"))
        db.add("R", ("a",))
        ids = db.tuple_ids()
        assert ids == sorted(ids)

    def test_active_domain(self):
        db = Instance()
        db.add("S1", ("a", "b"))
        db.add("R", ("c",))
        assert db.active_domain() == ["a", "b", "c"]

    def test_restrict_to(self):
        db = Instance()
        ta = db.add("R", ("a",))
        db.add("R", ("b",))
        world = db.restrict_to([ta])
        assert world.has("R", ("a",)) and not world.has("R", ("b",))

    def test_tuple_id_str(self):
        assert str(TupleId("S1", ("a", "b"))) == "S1(a,b)"


class TestTid:
    def test_probability_bounds(self):
        tid = TupleIndependentDatabase()
        with pytest.raises(ValueError):
            tid.add("R", ("a",), 2)
        with pytest.raises(ValueError):
            tid.add("R", ("a",), Fraction(-1, 2))

    def test_float_probabilities_exact(self):
        tid = TupleIndependentDatabase()
        t = tid.add("R", ("a",), 0.1)
        assert tid.probability_of(t) == Fraction(1, 10)

    def test_default_probability_one(self):
        tid = TupleIndependentDatabase()
        tid.instance.add("R", ("a",))
        assert tid.probability_of(TupleId("R", ("a",))) == 1

    def test_set_probability(self):
        tid = TupleIndependentDatabase()
        t = tid.add("R", ("a",), Fraction(1, 2))
        tid.set_probability(t, Fraction(1, 4))
        assert tid.probability_of(t) == Fraction(1, 4)
        with pytest.raises(KeyError):
            tid.set_probability(TupleId("R", ("zzz",)), Fraction(1, 2))

    def test_world_probabilities_sum_to_one(self):
        tid = TupleIndependentDatabase()
        tid.add("R", ("a",), Fraction(1, 3))
        tid.add("R", ("b",), Fraction(2, 5))
        tid.add("S1", ("a", "b"), Fraction(1, 2))
        total = sum(p for _, p, _ in tid.possible_worlds())
        assert total == 1

    def test_world_count(self):
        tid = TupleIndependentDatabase()
        tid.add("R", ("a",), Fraction(1, 2))
        tid.add("R", ("b",), Fraction(1, 2))
        assert len(list(tid.possible_worlds())) == 4

    def test_sample_world_respects_zero_one(self):
        tid = TupleIndependentDatabase()
        sure = tid.add("R", ("a",), 1)
        never = tid.add("R", ("b",), 0)
        rng = random.Random(5)
        for _ in range(10):
            world = tid.sample_world(rng)
            assert sure in world and never not in world

    def test_valuation_probability(self):
        prob = {
            "x": Fraction(1, 2),
            "y": Fraction(1, 3),
        }
        assert valuation_probability(prob, frozenset({"x"})) == Fraction(
            1, 2
        ) * Fraction(2, 3)


class TestGenerators:
    def test_relation_names(self):
        assert relation_names(3) == ["R", "S1", "S2", "S3", "T"]
        with pytest.raises(ValueError):
            relation_names(0)

    def test_complete_tid_size(self):
        tid = complete_tid(3, 2, 2)
        # 2 R + 2 T + 3 relations * 4 pairs = 16.
        assert len(tid) == 16

    def test_complete_tid_rectangular(self):
        tid = complete_tid(2, 3, 1)
        assert len(tid) == 3 + 1 + 2 * 3

    def test_path_tid_size(self):
        tid = path_tid(2, 3)
        # Per diagonal point: R, T and 2 S-tuples.
        assert len(tid) == 3 * 4

    def test_random_tid_declares_schema(self):
        tid = random_tid(3, 2, 2, random.Random(1), tuple_density=0.1)
        for name in relation_names(3):
            assert tid.instance.relation(name) is not None

    def test_complete_tid_probabilities(self):
        tid = complete_tid(1, 1, 1, prob=Fraction(1, 4))
        for t in tid.instance.tuple_ids():
            assert tid.probability_of(t) == Fraction(1, 4)

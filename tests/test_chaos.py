"""Seeded chaos tests for the sharded service.

The contract under test: with a deterministic :class:`FaultInjector`
firing worker errors, added latency, and phantom queue pressure into a
mixed workload (every route, deadlines, priorities, budgets), **every
submitted request resolves** — to a response or to a *typed* resilience
error — and nothing deadlocks, leaks an unresolved future, or corrupts
the stats.  Faults draw from seeded DrawStream counters, so a failure
here replays exactly under ``PYTHONHASHSEED=0`` (the CI chaos step).
"""

from __future__ import annotations

from concurrent.futures import wait as futures_wait
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.core.deadline import DeadlineExceeded
from repro.db.generator import complete_tid
from repro.pqe.approximate import AccuracyBudget
from repro.queries.hqueries import HQuery, q9
from repro.serving import ShardedService
from repro.serving.faults import FaultInjector, TransientFaultError
from repro.serving.resilience import (
    CircuitBreakerOpen,
    RetryPolicy,
    ServiceStopped,
    ShardOverloaded,
)

pytestmark = pytest.mark.filterwarnings("error")

#: The complete set of errors a chaos-stressed future may resolve to.
#: Anything outside this set is a bug in the resilience layer.
TYPED_ERRORS = (
    DeadlineExceeded,
    ShardOverloaded,
    CircuitBreakerOpen,
    ServiceStopped,
    TransientFaultError,
)


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def mixed_workload(service: ShardedService, rounds: int):
    """Submit a mixed-route workload; returns (futures, submit_errors).

    Routes covered per round: extensional (q9), brute force (small hard
    instance), sampling (large hard instance with a budget) — across
    distinct instances so traffic spreads over shards and keys.
    Deadlines range from hopeless (1 ms) to generous; priorities 0-2.
    """
    hard = hard_full_disjunction(3)
    futures = []
    submit_errors = []

    def submit(query, tid, budget=None, **kwargs):
        try:
            futures.append(service.submit(query, tid, budget, **kwargs))
        except TYPED_ERRORS as error:  # pragma: no cover - rare path
            submit_errors.append(error)

    sampling_budget = AccuracyBudget(
        epsilon=0.3, min_samples=32, max_samples=128, seed=5
    )
    for i in range(rounds):
        safe_tid = complete_tid(3, 2 + i % 3, 2, prob=Fraction(1, 2))
        small_hard = complete_tid(3, 1 + i % 2, 1, prob=Fraction(1, 3))
        large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3 + i % 2))
        submit(q9(), safe_tid, priority=i % 3)
        submit(q9(), safe_tid, deadline_ms=1.0 if i % 5 == 0 else 10_000.0)
        submit(hard, small_hard, deadline_ms=5_000.0, priority=1)
        submit(hard, large_hard, sampling_budget, deadline_ms=10_000.0)
    return futures, submit_errors


def resolve_all(futures, timeout: float = 120.0):
    """Wait for every future; returns (responses, errors).

    Fails the test if any future is still unresolved at the timeout —
    the no-deadlock / no-leaked-future chaos invariant.
    """
    done, not_done = futures_wait(futures, timeout=timeout)
    assert not not_done, (
        f"{len(not_done)} futures never resolved under chaos"
    )
    responses, errors = [], []
    for future in done:
        error = future.exception()
        if error is None:
            responses.append(future.result())
        else:
            errors.append(error)
    return responses, errors


class TestChaos:
    def test_every_request_resolves_under_faults(self):
        injector = FaultInjector(
            seed=3,
            error_rate=Fraction(3, 20),
            latency_rate=Fraction(1, 5),
            latency_ms=5.0,
            pressure_rate=Fraction(1, 8),
            pressure_depth=8,
        )
        service = ShardedService(
            shards=2,
            workers_per_shard=2,
            max_queue_depth=16,
            retry=RetryPolicy(
                attempts=2, base_delay_ms=0.5, max_delay_ms=2.0
            ),
            breaker_failure_threshold=4,
            breaker_reset_after_ms=50.0,
            fault_injector=injector,
        )
        try:
            futures, submit_errors = mixed_workload(service, rounds=12)
            responses, errors = resolve_all(futures)
            # Every error is typed; no bare RuntimeError subclasses leak
            # out except our own.
            for error in errors + submit_errors:
                assert isinstance(error, TYPED_ERRORS), repr(error)
            # Responses are real answers.
            for response in responses:
                assert 0.0 <= response.probability <= 1.0
                if response.degraded:
                    assert response.half_width > 0.0
            # The workload actually exercised the machinery: most
            # requests succeed, and the injector fired.
            assert len(responses) >= len(futures) // 2
            fired = injector.stats()
            assert fired["errors"] > 0
            assert fired["latency_events"] > 0
            # Stats stay consistent with what callers observed.  A
            # request counts once it is dequeued unexpired; it then
            # either answers, fails terminally, or trips a later
            # deadline check mid-serve — so ``requests`` is bracketed
            # by those outcomes.
            stats = service.stats()
            res = stats.resilience
            assert res.failures == sum(
                1 for e in errors if isinstance(e, TransientFaultError)
            )
            assert (
                len(responses) + res.failures
                <= stats.requests
                <= len(responses) + res.failures + res.deadline_exceeded
            )
            assert res.shed + res.breaker_rejected == sum(
                1
                for e in errors + submit_errors
                if isinstance(e, (ShardOverloaded, CircuitBreakerOpen))
            )
            assert res.deadline_exceeded >= sum(
                1 for e in errors if isinstance(e, DeadlineExceeded)
            )
            assert res.injected_errors + res.retries >= res.failures
        finally:
            service.stop(wait=True)

    def test_chaos_schedule_replays_identically(self):
        # Two runs over the same seed and workload shed / fail / degrade
        # the same request indices: the fault schedule is a pure function
        # of (seed, admission order), which is what makes a chaos failure
        # debuggable.
        def run():
            service = ShardedService(
                shards=2,
                workers_per_shard=1,  # single worker => stable order
                retry=RetryPolicy(attempts=1),
                fault_injector=FaultInjector(
                    seed=9, error_rate=Fraction(1, 4)
                ),
            )
            try:
                hard = hard_full_disjunction(3)
                outcomes = []
                for i in range(24):
                    tid = complete_tid(
                        3, 2 + i % 3, 2, prob=Fraction(1, 2)
                    )
                    future = service.submit(
                        q9() if i % 2 == 0 else hard, tid
                    )
                    error = future.exception(timeout=60)
                    if error is None:
                        outcomes.append(
                            ("ok", future.result().probability)
                        )
                    else:
                        outcomes.append((type(error).__name__, None))
                return outcomes
            finally:
                service.stop(wait=True)

        first = run()
        second = run()
        assert first == second
        assert any(kind == "TransientFaultError" for kind, _ in first)
        assert any(kind == "ok" for kind, _ in first)

    def test_seeded_kill_and_recover_replays_identically(self):
        # Worker-kill chaos over replicated instances, on both backends:
        # the seeded kill schedule crashes the same request indices
        # everywhere (the thread backend has no worker process, but the
        # typed WorkerCrashError and retry schedule are identical), every
        # future resolves to an answer or a typed error, the killed
        # shard is healthy again by the end (the process supervisor
        # respawned its worker), and /dev/shm is clean after stop.
        import glob
        import os

        from repro.serving import HedgePolicy
        from repro.serving.shm import segment_prefix

        def run(backend):
            injector = FaultInjector(
                seed=21, worker_kill_rate=Fraction(1, 6)
            )
            service = ShardedService(
                shards=2,
                workers_per_shard=1,  # single drain => stable order
                retry=RetryPolicy(attempts=2, base_delay_ms=0.5),
                # Hedging would let wall-clock timing decide whether a
                # backup consumes a fault-lane index; keep the schedule
                # a pure function of the seed.
                hedge=HedgePolicy(max_backups=0),
                breaker_failure_threshold=100,
                fault_injector=injector,
                backend=backend,
            )
            try:
                tids = [
                    complete_tid(3, 2 + i, 2, prob=Fraction(1, 2))
                    for i in range(3)
                ]
                for tid in tids:
                    service.register(tid, replicas=2)
                outcomes = []
                for i in range(24):
                    future = service.submit(q9(), tids[i % 3])
                    error = future.exception(timeout=120)
                    if error is None:
                        outcomes.append(
                            ("ok", future.result().probability)
                        )
                    else:
                        assert isinstance(error, TYPED_ERRORS), repr(error)
                        outcomes.append((type(error).__name__, None))
                # Recovery: every shard is healthy again — on the
                # process backend that means the supervisor respawned
                # each killed worker.
                assert all(
                    shard.healthy() for shard in service._shards
                )
                stats = service.stats()
                kills = injector.stats()["kills"]
                assert kills > 0
                assert (
                    sum(
                        s.resilience.injected_kills for s in stats.shards
                    )
                    == kills
                )
                if backend == "processes":
                    assert stats.supervision.restarts == kills
                    assert stats.supervision.worker_alive
                    assert not stats.supervision.gave_up
                return outcomes, kills
            finally:
                service.stop(wait=True)

        threads = run("threads")
        processes = run("processes")
        assert threads == processes
        assert any(kind == "ok" for kind, _ in threads[0])
        # Kill-recover-stop cycles leave zero shared-memory leaks.
        assert not glob.glob(f"/dev/shm/{segment_prefix()}*"), (
            os.listdir("/dev/shm")
        )

    def test_stop_under_chaos_leaves_no_unresolved_future(self):
        # Stop the service while faulted traffic is still in flight:
        # everything still resolves (answers, typed faults, or
        # ServiceStopped) — shutdown never hangs and never strands a
        # caller.
        service = ShardedService(
            shards=2,
            workers_per_shard=1,
            max_queue_depth=8,
            retry=RetryPolicy(attempts=2, base_delay_ms=0.5),
            fault_injector=FaultInjector(
                seed=11,
                error_rate=Fraction(1, 10),
                latency_rate=Fraction(1, 2),
                latency_ms=20.0,
            ),
        )
        futures, submit_errors = mixed_workload(service, rounds=6)
        service.stop(wait=True)
        responses, errors = resolve_all(futures, timeout=60.0)
        for error in errors + submit_errors:
            assert isinstance(error, TYPED_ERRORS), repr(error)
        assert len(responses) + len(errors) == len(futures)
        # And the stopped service refuses new work, typed.
        with pytest.raises(ServiceStopped):
            service.submit(q9(), complete_tid(3, 2, 2))


class _RetryingGatewayClient:
    """A chaos-tolerant JSON-lines client for the gateway tests: any
    torn reply, reset connection, refused connect (the crash window) or
    typed draining rejection is retried — always with the same
    ``idempotency_key``, which is what makes the retries safe."""

    def __init__(self, server):
        self._server = server
        self._sock = None
        self._file = None
        self.reconnects = -1  # first connect is not a re-connect

    def _connect(self):
        import socket

        self._sock = socket.create_connection(
            ("127.0.0.1", self._server.port), timeout=30
        )
        self._file = self._sock.makefile("rw")
        self.reconnects += 1

    def _teardown(self):
        import contextlib

        with contextlib.suppress(OSError):
            if self._file is not None:
                self._file.close()
            if self._sock is not None:
                self._sock.close()
        self._file = None
        self._sock = None

    def close(self):
        self._teardown()

    def rpc(self, message: dict, deadline_s: float = 120.0) -> dict:
        import json
        import time

        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            try:
                if self._file is None:
                    self._connect()
                self._file.write(json.dumps(message) + "\n")
                self._file.flush()
                line = self._file.readline()
                if not line or not line.endswith("\n"):
                    raise ConnectionError("torn reply")
                reply = json.loads(line)
            except (OSError, ValueError):
                self._teardown()
                time.sleep(0.02)
                continue
            if not reply.get("ok") and reply.get("error") in (
                "GatewayDraining",
                "TooManyConnections",
            ):
                time.sleep(0.02)
                continue
            return reply
        raise AssertionError(f"request never resolved: {message}")


class TestGatewayChaos:
    """Network chaos at the gateway edge: seeded conn_drop /
    partial_write / slow_client lanes plus a crash-and-journal-recovery
    in the middle of the workload.  The contract: every request
    resolves exactly once (an answer or a typed error), and the whole
    outcome sequence replays identically across runs and across both
    service backends."""

    REGISTER_FACTS = [
        ["R", [1], [1, 2]],
        ["S1", [1, 2]],
        ["T", [2], [2, 3]],
    ]
    CONJUNCTION = {"k": 1, "nvars": 2, "table": 8}
    SAFE = {"k": 1, "nvars": 2, "table": 10}

    @staticmethod
    def _facts_wire(tid) -> list:
        return [
            [
                t.relation,
                list(t.values),
                [
                    tid.probability_of(t).numerator,
                    tid.probability_of(t).denominator,
                ],
            ]
            for t in tid.instance.tuple_ids()
        ]

    def _run(self, backend: str, journal_path):
        from repro.serving import GatewayServer

        hard = hard_full_disjunction(3)
        hard_payload = {
            "k": hard.k,
            "nvars": hard.phi.nvars,
            "table": hard.phi.table,
        }
        injector = FaultInjector(
            seed=13,
            conn_drop_rate=Fraction(1, 6),
            partial_write_rate=Fraction(1, 4),
            slow_client_rate=Fraction(1, 4),
            slow_client_ms=2.0,
        )
        service = ShardedService(
            shards=2, workers_per_shard=1, backend=backend
        )
        server = GatewayServer(
            service,
            journal_path=journal_path,
            fault_injector=injector,
        )
        server.start()
        client = _RetryingGatewayClient(server)
        outcomes = []
        try:
            big = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            assert client.rpc(
                {
                    "op": "register",
                    "id": 0,
                    "instance": "orders",
                    "facts": self.REGISTER_FACTS,
                }
            )["ok"]
            assert client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "big",
                    "facts": self._facts_wire(big),
                }
            )["ok"]
            for i in range(24):
                if i == 12:
                    # SIGKILL-equivalent mid-workload: in-memory state
                    # (catalog, idempotency journal) is gone; the
                    # registration journal is the only recovery input.
                    server.restart(graceful=False)
                if i % 3 == 0:
                    query = {"instance": "orders", "query": self.CONJUNCTION}
                elif i % 3 == 1:
                    query = {"instance": "orders", "query": self.SAFE}
                else:
                    query = {
                        "instance": "big",
                        "query": hard_payload,
                        "budget": {"epsilon": 0.1, "seed": 11},
                    }
                reply = client.rpc(
                    {
                        "op": "query",
                        "id": 100 + i,
                        "idempotency_key": f"req-{i}",
                        **query,
                    }
                )
                if reply.get("ok"):
                    response = reply["response"]
                    outcomes.append(
                        (
                            "ok",
                            response["probability"],
                            response["engine"],
                        )
                    )
                else:
                    outcomes.append((reply["error"], None, None))
            return outcomes, injector.stats(), client.reconnects
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_chaos_workload_replays_identically_across_backends(
        self, tmp_path
    ):
        first, fired_first, reconnects = self._run(
            "threads", tmp_path / "a.journal"
        )
        second, fired_second, _ = self._run(
            "threads", tmp_path / "b.journal"
        )
        processes, _, _ = self._run(
            "processes", tmp_path / "c.journal"
        )
        # Exactly once: one outcome per request, none dropped, none
        # duplicated, every failure typed.
        assert len(first) == 24
        assert all(
            kind == "ok" or kind.isidentifier() for kind, _, _ in first
        )
        # The seeded chaos schedule is a pure function of the draw
        # counters: identical sequences across runs and backends.
        assert first == second
        assert first == processes
        assert fired_first == fired_second
        # The lanes actually fired, and torn replies forced reconnects
        # that the idempotency keys absorbed.
        assert fired_first["conn_drops"] > 0
        assert fired_first["partial_writes"] > 0
        assert fired_first["slow_client_events"] > 0
        assert reconnects >= fired_first["conn_drops"]
        # Answers survived the crash bit-identically: the same query
        # before and after request 12 returned the same float.
        exact = [p for k, p, e in first if e == "brute_force"]
        assert len(set(exact)) == 1 and len(exact) == 8
        sampled = [p for k, p, e in first if e == "karp_luby"]
        assert len(set(sampled)) == 1 and len(sampled) == 8

"""Tests for the hierarchical self-join-free CQ fragment."""

from __future__ import annotations

import itertools
import random
from fractions import Fraction

import pytest

from repro.circuits import is_decomposable, probability as circuit_probability
from repro.db.tid import TupleIndependentDatabase
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.hierarchical import (
    NotHierarchicalError,
    NotSelfJoinFreeError,
    is_hierarchical,
    is_read_once_circuit,
    read_once_lineage,
    safe_plan_probability,
)


def brute_force(query: ConjunctiveQuery, tid: TupleIndependentDatabase):
    tuple_ids = tid.instance.tuple_ids()
    total = Fraction(0)
    for picks in itertools.product([False, True], repeat=len(tuple_ids)):
        present = frozenset(t for t, k in zip(tuple_ids, picks) if k)
        world = tid.instance.restrict_to(present)
        if query.holds_in(world):
            total += tid.world_probability(present)
    return total


def hk0() -> ConjunctiveQuery:
    return ConjunctiveQuery((Atom("R", ("x",)), Atom("S", ("x", "y"))))


def hard_query() -> ConjunctiveQuery:
    """The classical non-hierarchical query R(x), S(x,y), T(y)."""
    return ConjunctiveQuery(
        (Atom("R", ("x",)), Atom("S", ("x", "y")), Atom("T", ("y",)))
    )


def random_tid(rng: random.Random) -> TupleIndependentDatabase:
    tid = TupleIndependentDatabase()
    for x in ("a", "b"):
        if rng.random() < 0.8:
            tid.add("R", (x,), Fraction(rng.randint(0, 4), 4))
        if rng.random() < 0.8:
            tid.add("T", (x,), Fraction(rng.randint(0, 4), 4))
    for x in ("a", "b"):
        for y in ("a", "b"):
            if rng.random() < 0.8:
                tid.add("S", (x, y), Fraction(rng.randint(0, 4), 4))
    tid.instance.declare("R", 1)
    tid.instance.declare("S", 2)
    tid.instance.declare("T", 1)
    return tid


class TestHierarchyTest:
    def test_hk0_is_hierarchical(self):
        assert is_hierarchical(hk0())

    def test_rst_is_not(self):
        assert not is_hierarchical(hard_query())

    def test_single_atom(self):
        assert is_hierarchical(ConjunctiveQuery((Atom("R", ("x",)),)))

    def test_disjoint_components_hierarchical(self):
        query = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("T", ("y",)))
        )
        assert is_hierarchical(query)

    def test_every_h_building_block_is_hierarchical(self):
        from repro.queries.hqueries import h_query

        for i in range(4):
            assert is_hierarchical(h_query(3, i))


class TestSafePlan:
    def test_rejects_non_hierarchical(self):
        tid = random_tid(random.Random(1))
        with pytest.raises(NotHierarchicalError):
            safe_plan_probability(hard_query(), tid)

    def test_rejects_self_join(self):
        query = ConjunctiveQuery(
            (Atom("S", ("x", "y")), Atom("S", ("y", "z")))
        )
        tid = random_tid(random.Random(2))
        with pytest.raises(NotSelfJoinFreeError):
            safe_plan_probability(query, tid)

    def test_hk0_against_brute_force(self):
        rng = random.Random(3)
        for _ in range(5):
            tid = random_tid(rng)
            if len(tid) > 10:
                continue
            assert safe_plan_probability(hk0(), tid) == brute_force(
                hk0(), tid
            )

    def test_two_component_query(self):
        query = ConjunctiveQuery((Atom("R", ("x",)), Atom("T", ("y",))))
        rng = random.Random(4)
        for _ in range(4):
            tid = random_tid(rng)
            if len(tid) > 10:
                continue
            assert safe_plan_probability(query, tid) == brute_force(
                query, tid
            )

    def test_three_level_hierarchy(self):
        # U(x), S(x,y): at(y) ⊂ at(x) — strictly nested.
        query = ConjunctiveQuery(
            (Atom("R", ("x",)), Atom("S", ("x", "y")))
        )
        rng = random.Random(5)
        tid = random_tid(rng)
        assert safe_plan_probability(query, tid) == brute_force(query, tid)

    def test_empty_relation_gives_zero(self):
        tid = TupleIndependentDatabase()
        tid.instance.declare("R", 1)
        tid.instance.declare("S", 2)
        assert safe_plan_probability(hk0(), tid) == 0


class TestReadOnceLineage:
    def test_lineage_is_read_once_and_decomposable(self):
        rng = random.Random(6)
        tid = random_tid(rng)
        circuit = read_once_lineage(hk0(), tid)
        assert is_read_once_circuit(circuit)
        assert is_decomposable(circuit)

    def test_lineage_probability_matches_plan(self):
        rng = random.Random(7)
        for _ in range(5):
            tid = random_tid(rng)
            circuit = read_once_lineage(hk0(), tid)
            assert circuit_probability(
                circuit, tid.probability_map()
            ) == safe_plan_probability(hk0(), tid)

    def test_lineage_semantics(self):
        rng = random.Random(8)
        tid = random_tid(rng)
        if len(tid) <= 10:
            circuit = read_once_lineage(hk0(), tid)
            tuple_ids = tid.instance.tuple_ids()
            for picks in itertools.product(
                [False, True], repeat=len(tuple_ids)
            ):
                assignment = dict(zip(tuple_ids, picks))
                present = frozenset(t for t, k in assignment.items() if k)
                world = tid.instance.restrict_to(present)
                assert circuit.evaluate(assignment) == hk0().holds_in(world)

    def test_rejects_non_hierarchical(self):
        tid = random_tid(random.Random(9))
        with pytest.raises(NotHierarchicalError):
            read_once_lineage(hard_query(), tid)

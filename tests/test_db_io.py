"""Tests for the TID TSV interchange format."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.db.generator import complete_tid, random_tid
from repro.db.io import dumps_tid, load_tid, loads_tid, save_tid


class TestRoundTrip:
    def test_small_round_trip(self):
        original = complete_tid(2, 1, 2, prob=Fraction(1, 3))
        rebuilt = loads_tid(dumps_tid(original))
        assert rebuilt.instance.tuple_ids() == original.instance.tuple_ids()
        for tuple_id in original.instance.tuple_ids():
            assert rebuilt.probability_of(tuple_id) == original.probability_of(
                tuple_id
            )

    def test_random_round_trip(self):
        import random

        rng = random.Random(33)
        original = random_tid(3, 2, 2, rng, tuple_density=0.6)
        rebuilt = loads_tid(dumps_tid(original))
        assert rebuilt.probability_map() == original.probability_map()

    def test_empty_relations_declared(self):
        import random

        rng = random.Random(34)
        original = random_tid(3, 1, 1, rng, tuple_density=0.1)
        rebuilt = loads_tid(dumps_tid(original))
        # Every relation of the schema survives, even without facts.
        names = {r.name for r in rebuilt.instance.relations()}
        assert names == {r.name for r in original.instance.relations()}

    def test_file_round_trip(self, tmp_path):
        original = complete_tid(1, 2, 1, prob=Fraction(2, 5))
        path = tmp_path / "db.tsv"
        save_tid(original, path)
        rebuilt = load_tid(path)
        assert rebuilt.probability_map() == original.probability_map()

    def test_probabilities_stay_exact(self):
        original = complete_tid(1, 1, 1, prob=Fraction(123456789, 987654321))
        rebuilt = loads_tid(dumps_tid(original))
        for tuple_id in original.instance.tuple_ids():
            assert rebuilt.probability_of(tuple_id) == Fraction(
                123456789, 987654321
            )


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nR\ta\t1/2\n# trailing comment\n"
        tid = loads_tid(text)
        assert len(tid) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            loads_tid("R a 1/2\n")  # spaces, not tabs

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            loads_tid("R\ta\tnot-a-number\n")
        with pytest.raises(ValueError):
            loads_tid("R\ta\t1/0\n")

    def test_declare_directive(self):
        tid = loads_tid("!declare S9 2\n")
        assert tid.instance.relation("S9").arity == 2

    def test_malformed_declare_rejected(self):
        with pytest.raises(ValueError):
            loads_tid("!declare S9\n")

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            loads_tid("R\ta\t3/2\n")


class TestQueriesOnLoadedData:
    def test_loaded_database_evaluates(self):
        from repro.pqe import evaluate
        from repro.queries.hqueries import q9

        text = "\n".join(
            [
                "R\tu\t4/5",
                "S1\tu,v\t1/2",
                "S2\tu,v\t1/2",
                "S3\tu,v\t1/2",
                "T\tv\t2/3",
            ]
        )
        tid = loads_tid(text)
        result = evaluate(q9(), tid)
        from repro.pqe import probability_by_world_enumeration

        assert result.probability == probability_by_world_enumeration(
            q9(), tid
        )

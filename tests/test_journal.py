"""Tests for the durable registration journal
(:mod:`repro.serving.journal`).

Crash semantics under a microscope: append/replay round trips,
checksummed lines, torn-tail truncation (unterminated, mangled, and
bad-checksum tails), the torn-vs-corrupt distinction (a mangled record
*before* the tail raises), atomic compaction, fsync policies, and
auto-compaction.
"""

from __future__ import annotations

import json

import pytest

from repro.serving.journal import (
    JournalCorrupt,
    JournalStats,
    RegistrationJournal,
    encode_record,
)

pytestmark = pytest.mark.filterwarnings("error")


def record_for(name: str, replicas: int = 1, facts=None) -> dict:
    return {
        "instance": name,
        "relations": [],
        "facts": facts if facts is not None else [["R", [1], [1, 2]]],
        "replicas": replicas,
    }


class TestAppendReplay:
    def test_round_trip_preserves_records_and_order(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        records = [
            record_for("orders"),
            record_for("users", replicas=2),
            record_for("events", facts=[["S1", [1, 2]]]),
        ]
        for record in records:
            journal.append(record)
        journal.close()

        fresh = RegistrationJournal(path)
        assert fresh.replay() == records
        assert fresh.stats().replayed == 3
        assert fresh.stats().live == 3
        assert fresh.stats().dead == 0

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        journal = RegistrationJournal(tmp_path / "never-written.journal")
        assert journal.replay() == []
        assert journal.stats() == JournalStats()

    def test_lines_are_checksummed_canonical_json(self, tmp_path):
        # The on-disk envelope is inspectable and the checksum covers
        # the canonical record encoding, so key order cannot matter.
        a = {"instance": "orders", "facts": [["R", [1]]], "replicas": 1}
        b = {"replicas": 1, "facts": [["R", [1]]], "instance": "orders"}
        line_a, line_b = encode_record(a), encode_record(b)
        assert json.loads(line_a)["sum"] == json.loads(line_b)["sum"]
        assert json.loads(line_a)["v"] == 1

    def test_append_requires_an_instance_name(self, tmp_path):
        journal = RegistrationJournal(tmp_path / "edge.journal")
        with pytest.raises(ValueError, match="instance"):
            journal.append({"facts": []})
        with pytest.raises(ValueError, match="instance"):
            journal.append({"instance": ""})

    def test_replay_on_the_writing_journal_sees_its_own_appends(
        self, tmp_path
    ):
        journal = RegistrationJournal(
            tmp_path / "edge.journal", fsync="batch"
        )
        journal.append(record_for("orders"))
        # replay() syncs the open handle first, so no append is missed.
        assert journal.replay() == [record_for("orders")]
        journal.close()


class TestTornTail:
    def test_unterminated_tail_is_truncated(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.append(record_for("users"))
        journal.close()
        good = path.read_bytes()
        path.write_bytes(good + b'{"v":1,"sum":"dead')  # crash mid-write

        fresh = RegistrationJournal(path)
        records = fresh.replay()
        assert [r["instance"] for r in records] == ["orders", "users"]
        # The tail was physically truncated back to the durable prefix.
        assert path.read_bytes() == good
        stats = fresh.stats()
        assert stats.torn_records == 1
        assert stats.torn_bytes == len(b'{"v":1,"sum":"dead')

    def test_mangled_final_line_is_truncated(self, tmp_path):
        # Newline-terminated but unparseable: still a torn append (the
        # crash hit between the payload write and the flush boundary).
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.close()
        good = path.read_bytes()
        path.write_bytes(good + b"not json at all\n")

        fresh = RegistrationJournal(path)
        assert [r["instance"] for r in fresh.replay()] == ["orders"]
        assert path.read_bytes() == good

    def test_bad_checksum_final_line_is_truncated(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.close()
        good = path.read_bytes()
        line = json.loads(encode_record(record_for("users")))
        line["sum"] = "0" * 16  # bit rot in the tail record
        path.write_bytes(good + json.dumps(line).encode() + b"\n")

        fresh = RegistrationJournal(path)
        assert [r["instance"] for r in fresh.replay()] == ["orders"]
        assert path.read_bytes() == good

    def test_replay_after_truncation_is_stable(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.close()
        path.write_bytes(path.read_bytes() + b"torn")

        fresh = RegistrationJournal(path)
        first = fresh.replay()
        second = fresh.replay()  # no tail left to forgive
        assert first == second
        assert fresh.stats().torn_records == 1

    def test_mangled_record_before_the_tail_raises(self, tmp_path):
        # A hole in the middle is corruption, not a torn append:
        # replaying around it would silently drop a registration.
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.append(record_for("users"))
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"garbage line\n" + lines[1])

        with pytest.raises(JournalCorrupt, match="corrupted"):
            RegistrationJournal(path).replay()

    def test_bad_checksum_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.append(record_for("users"))
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        first = json.loads(lines[0])
        first["sum"] = "f" * 16
        path.write_bytes(
            json.dumps(first).encode() + b"\n" + lines[1]
        )

        with pytest.raises(JournalCorrupt):
            RegistrationJournal(path).replay()


class TestCompaction:
    def test_compact_keeps_last_record_per_name(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders", replicas=1))
        journal.append(record_for("users"))
        journal.append(record_for("orders", replicas=3))
        assert journal.stats().dead == 1

        dropped = journal.compact()
        assert dropped == 1
        assert journal.stats().dead == 0
        assert journal.stats().compactions == 1
        journal.close()

        records = RegistrationJournal(path).replay()
        # First-appearance order, last record wins.
        assert [(r["instance"], r["replicas"]) for r in records] == [
            ("orders", 3),
            ("users", 1),
        ]

    def test_compact_leaves_no_snapshot_litter(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.append(record_for("orders", replicas=2))
        journal.compact()
        journal.close()
        assert [p.name for p in tmp_path.iterdir()] == ["edge.journal"]

    def test_append_after_compact_continues_the_file(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.append(record_for("orders", replicas=2))
        journal.compact()
        journal.append(record_for("users"))
        journal.close()
        records = RegistrationJournal(path).replay()
        assert [r["instance"] for r in records] == ["orders", "users"]

    def test_forget_drops_a_name_at_the_next_compaction(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path)
        journal.append(record_for("orders"))
        journal.append(record_for("users"))
        journal.forget("orders")
        assert journal.stats().live == 1
        journal.compact()
        journal.close()
        records = RegistrationJournal(path).replay()
        assert [r["instance"] for r in records] == ["users"]

    def test_auto_compact_dead_threshold(self, tmp_path):
        path = tmp_path / "edge.journal"
        journal = RegistrationJournal(path, auto_compact_dead=2)
        journal.append(record_for("orders", replicas=1))
        journal.append(record_for("orders", replicas=2))  # dead: 1
        assert journal.stats().compactions == 0
        journal.append(record_for("orders", replicas=3))  # dead: 2 -> go
        stats = journal.stats()
        assert stats.compactions == 1
        assert stats.dead == 0
        journal.close()
        records = RegistrationJournal(path).replay()
        assert [(r["instance"], r["replicas"]) for r in records] == [
            ("orders", 3)
        ]


class TestPolicyAndStats:
    def test_fsync_policy_is_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            RegistrationJournal(tmp_path / "x", fsync="sometimes")
        with pytest.raises(ValueError, match="auto_compact_dead"):
            RegistrationJournal(tmp_path / "x", auto_compact_dead=0)

    @pytest.mark.parametrize("fsync", ["always", "batch", "never"])
    def test_every_fsync_policy_round_trips(self, tmp_path, fsync):
        path = tmp_path / f"{fsync}.journal"
        journal = RegistrationJournal(path, fsync=fsync)
        journal.append(record_for("orders"))
        journal.sync()  # explicit sync is always allowed
        journal.close()
        assert [
            r["instance"] for r in RegistrationJournal(path).replay()
        ] == ["orders"]

    def test_stats_payload_round_trip(self, tmp_path):
        journal = RegistrationJournal(tmp_path / "edge.journal")
        journal.append(record_for("orders"))
        journal.append(record_for("orders", replicas=2))
        journal.close()
        stats = journal.stats()
        assert stats.appended == 2
        assert stats.live == 1
        assert stats.dead == 1
        assert JournalStats.from_payload(stats.to_payload()) == stats

    def test_live_records_is_a_snapshot(self, tmp_path):
        journal = RegistrationJournal(tmp_path / "edge.journal")
        journal.append(record_for("orders"))
        image = journal.live_records
        image.clear()  # mutating the copy cannot touch the journal
        assert journal.stats().live == 1
        journal.close()

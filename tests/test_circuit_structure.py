"""Structural coverage for the circuit arena: reachability, wires, stats,
DLDD shape, and copy semantics."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, GateKind, copy_into, is_dldd_shaped
from repro.obdd import ObddManager, obdd_to_circuit


class TestReachability:
    def test_dead_gates_excluded(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        circuit.add_not(x)  # dead
        circuit.set_output(x)
        assert circuit.reachable_from_output() == {x}

    def test_shared_gates_counted_once(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        n = circuit.add_not(x)
        circuit.set_output(circuit.add_or(
            [circuit.add_and([x, n]), circuit.add_and([n, x])]
        ))
        live = circuit.reachable_from_output()
        assert x in live and n in live

    def test_num_wires(self):
        circuit = Circuit()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        circuit.set_output(circuit.add_and([x, y]))
        assert circuit.num_wires() == 2


class TestDlddShape:
    def test_obdd_expansion_is_dldd(self):
        manager = ObddManager(["a", "b"])
        root = manager.apply(
            "or", manager.variable("a"), manager.variable("b")
        )
        circuit = obdd_to_circuit(manager, root)
        assert is_dldd_shaped(circuit)

    def test_plain_or_is_not_dldd(self):
        circuit = Circuit()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        left = circuit.add_and([x, y])
        right = circuit.add_and([circuit.add_not(x), circuit.add_not(y)])
        wrong = circuit.add_or([left, circuit.add_or([right, left])])
        circuit.set_output(wrong)
        assert not is_dldd_shaped(circuit)

    def test_decision_on_shared_variable(self):
        # (v ∧ w) ∨ (¬v ∧ u): decision on v even though w is also a var.
        circuit = Circuit()
        v, w, u = (circuit.add_var(s) for s in "vwu")
        circuit.set_output(
            circuit.add_or(
                [
                    circuit.add_and([v, w]),
                    circuit.add_and([circuit.add_not(v), u]),
                ]
            )
        )
        assert is_dldd_shaped(circuit)

    def test_template_circuits_leave_dldd(self):
        # The paper's point (via [6]): the compiled d-Ds for nondegenerate
        # H-queries are NOT DLDD-shaped at the template gates.
        from repro.db.generator import complete_tid
        from repro.pqe.intensional import compile_lineage
        from repro.queries.hqueries import q9

        tid = complete_tid(3, 1, 2)
        compiled = compile_lineage(q9(), tid.instance)
        assert not is_dldd_shaped(compiled.circuit)


class TestCopySemantics:
    def test_copy_preserves_sharing(self):
        source = Circuit()
        x = source.add_var("x")
        shared = source.add_not(x)
        source.set_output(source.add_or(
            [source.add_and([x, shared]), shared]
        ))
        target = Circuit()
        out = copy_into(source, target)
        target.set_output(out)
        # The shared NOT gate is materialized once.
        nots = [g for _, g in target.gates() if g.kind is GateKind.NOT]
        assert len(nots) == 1

    def test_copy_into_same_arena_twice(self):
        source = Circuit()
        x = source.add_var("x")
        source.set_output(source.add_not(x))
        target = Circuit()
        first = copy_into(source, target)
        second = copy_into(source, target)
        combined = target.add_or([first, second])
        target.set_output(combined)
        # Variables hash-cons across copies; evaluation is consistent.
        assert target.evaluate({"x": False})
        assert not target.evaluate({"x": True})

    def test_rename_collision_rejected_semantically(self):
        source = Circuit()
        x, y = source.add_var("x"), source.add_var("y")
        source.set_output(source.add_and([x, source.add_not(y)]))
        target = Circuit()
        out = copy_into(source, target, rename={"x": "z", "y": "z"})
        target.set_output(out)
        # Renaming both onto z collapses them: z ∧ ¬z is unsatisfiable.
        assert not target.evaluate({"z": True})
        assert not target.evaluate({"z": False})


class TestStats:
    def test_stats_keys(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_const(True))
        stats = circuit.stats()
        for key in ("VAR", "NOT", "AND", "OR", "CONST", "TOTAL", "WIRES"):
            assert key in stats

    def test_is_nnf_flags(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        inner = circuit.add_and([x, circuit.add_const(True)])
        circuit.set_output(circuit.add_not(inner))
        assert not circuit.is_nnf()

"""Tests for the FBDD substrate."""

from __future__ import annotations

import itertools
from fractions import Fraction

import pytest

from repro.circuits import assert_d_d, is_dldd_shaped, probability
from repro.obdd import ObddManager, build_obdd, LayeredAutomaton
from repro.obdd.fbdd import Fbdd, fbdd_from_obdd


def xor_fbdd() -> Fbdd:
    """x XOR y with different orders on the two branches of x."""
    fbdd = Fbdd()
    # Branch when x = 0: test y.
    y_pos = fbdd.add_node("y", 0, 1)
    # Branch when x = 1: test y with flipped outcome.
    y_neg = fbdd.add_node("y", 1, 0)
    root = fbdd.add_node("x", y_pos, y_neg)
    fbdd.set_root(root)
    return fbdd


class TestStructure:
    def test_basic_evaluation(self):
        fbdd = xor_fbdd()
        fbdd.validate()
        assert fbdd.evaluate({"x": True, "y": False})
        assert not fbdd.evaluate({"x": True, "y": True})
        assert fbdd.evaluate({"y": True})

    def test_variables_and_size(self):
        fbdd = xor_fbdd()
        assert fbdd.variables() == frozenset({"x", "y"})
        assert fbdd.size() == 5  # two terminals + three decisions

    def test_unknown_child_rejected(self):
        fbdd = Fbdd()
        with pytest.raises(ValueError):
            fbdd.add_node("x", 0, 99)

    def test_root_required(self):
        fbdd = Fbdd()
        with pytest.raises(ValueError):
            _ = fbdd.root

    def test_read_once_violation_detected(self):
        fbdd = Fbdd()
        inner = fbdd.add_node("x", 0, 1)
        outer = fbdd.add_node("x", inner, 1)  # x tested twice on a path
        fbdd.set_root(outer)
        with pytest.raises(ValueError):
            fbdd.validate()

    def test_free_order_is_legal(self):
        # Different variable orders per branch: legal for FBDDs (this is
        # exactly what OBDDs forbid).
        fbdd = Fbdd()
        low_branch = fbdd.add_node("y", 0, 1)
        zed = fbdd.add_node("z", 0, 1)
        high_branch = fbdd.add_node("y", zed, 1)
        root = fbdd.add_node("x", low_branch, high_branch)
        fbdd.set_root(root)
        fbdd.validate()


class TestSemantics:
    def test_probability_exact(self):
        fbdd = xor_fbdd()
        prob = {"x": Fraction(1, 2), "y": Fraction(1, 3)}
        assert fbdd.probability(prob) == Fraction(1, 2)

    def test_probability_matches_enumeration(self):
        fbdd = xor_fbdd()
        prob = {"x": Fraction(1, 4), "y": Fraction(2, 3)}
        expected = Fraction(0)
        for bits in itertools.product([False, True], repeat=2):
            assignment = dict(zip(("x", "y"), bits))
            if fbdd.evaluate(assignment):
                weight = Fraction(1)
                for label, value in assignment.items():
                    p = prob[label]
                    weight *= p if value else 1 - p
                expected += weight
        assert fbdd.probability(prob) == expected

    def test_model_count(self):
        assert xor_fbdd().model_count() == 2

    def test_to_circuit_is_dldd_d_d(self):
        circuit = xor_fbdd().to_circuit()
        assert_d_d(circuit)
        assert is_dldd_shaped(circuit)
        for bits in itertools.product([False, True], repeat=2):
            assignment = dict(zip(("x", "y"), bits))
            assert circuit.evaluate(assignment) == xor_fbdd().evaluate(
                assignment
            )

    def test_circuit_probability_agrees(self):
        fbdd = xor_fbdd()
        circuit = fbdd.to_circuit()
        prob = {"x": Fraction(3, 7), "y": Fraction(1, 5)}
        assert probability(circuit, prob) == fbdd.probability(prob)


class TestObddImport:
    def test_import_preserves_semantics(self):
        labels = ["a", "b", "c"]
        automaton = LayeredAutomaton(
            order=labels,
            initial=0,
            transition=lambda s, _p, v: s + int(v),
            accepting=lambda s: s >= 2,
        )
        manager, root = build_obdd(automaton)
        fbdd = fbdd_from_obdd(manager, root)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(labels, bits))
            assert fbdd.evaluate(assignment) == manager.evaluate(
                root, assignment
            )

    def test_import_preserves_probability(self):
        manager = ObddManager(["a", "b"])
        a, b = manager.variable("a"), manager.variable("b")
        root = manager.apply("or", a, b)
        fbdd = fbdd_from_obdd(manager, root)
        prob = {"a": Fraction(1, 2), "b": Fraction(1, 3)}
        assert fbdd.probability(prob) == manager.probability(root, prob)

"""Index-backed join matching against the seed backtracking matcher.

``ConjunctiveQuery.matches`` / ``grounding_sets`` now run on per-relation
hash indexes with most-bound-atom-first ordering and in-place binding
mutation.  These tests pin the new matcher to the seed nested-loop
implementation (reproduced verbatim below) on randomized instances and
queries, including the corner cases the seed defined implicitly: missing
relations, arity mismatches, repeated variables, and constants.
"""

from __future__ import annotations

import random

from repro.db.relation import Instance, Relation
from repro.queries.cq import Atom, ConjunctiveQuery, Constant
from repro.queries.hqueries import h_query


def reference_matches(query, db):
    """The seed matcher, kept verbatim as the semantic oracle."""
    yield from _ref_match_atoms(list(query.atoms), db, {})


def _ref_match_atoms(atoms, db, binding):
    if not atoms:
        yield dict(binding)
        return
    atom, rest = atoms[0], atoms[1:]
    try:
        relation = db.relation(atom.relation)
    except KeyError:
        return
    for values in relation:
        extension = _ref_unify(atom, values, binding)
        if extension is not None:
            yield from _ref_match_atoms(rest, db, extension)


def _ref_unify(atom, values, binding):
    if len(values) != len(atom.terms):
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif term in extended:
            if extended[term] != value:
                return None
        else:
            extended[term] = value
    return extended


def as_match_set(matches):
    return {frozenset(m.items()) for m in matches}


def random_instance(rng: random.Random, size: int) -> Instance:
    db = Instance()
    domain = [f"c{i}" for i in range(rng.randrange(2, 6))]
    db.declare("U", 1)
    db.declare("B", 2)
    db.declare("T3", 3)
    for _ in range(size):
        which = rng.random()
        if which < 0.3:
            db.add("U", (rng.choice(domain),))
        elif which < 0.75:
            db.add("B", (rng.choice(domain), rng.choice(domain)))
        else:
            db.add(
                "T3",
                (
                    rng.choice(domain),
                    rng.choice(domain),
                    rng.choice(domain),
                ),
            )
    return db


def random_query(rng: random.Random) -> ConjunctiveQuery:
    variables = ["x", "y", "z", "w"]
    atoms = []
    for _ in range(rng.randrange(1, 4)):
        which = rng.random()

        def term():
            if rng.random() < 0.2:
                return Constant(f"c{rng.randrange(0, 6)}")
            return rng.choice(variables)

        if which < 0.3:
            atoms.append(Atom("U", (term(),)))
        elif which < 0.75:
            atoms.append(Atom("B", (term(), term())))
        else:
            atoms.append(Atom("T3", (term(), term(), term())))
    return ConjunctiveQuery(tuple(atoms))


class TestIndexedMatchingAgainstReference:
    def test_random_queries_and_instances(self):
        rng = random.Random(101)
        for _ in range(60):
            db = random_instance(rng, rng.randrange(0, 18))
            query = random_query(rng)
            assert as_match_set(query.matches(db)) == as_match_set(
                reference_matches(query, db)
            )

    def test_grounding_sets_equal_reference_witnesses(self):
        rng = random.Random(103)
        for _ in range(40):
            db = random_instance(rng, rng.randrange(0, 18))
            query = random_query(rng)
            witnesses = query.grounding_sets(db)
            # Rebuild the witness sets through the reference matcher.
            expected = set()
            for match in reference_matches(query, db):
                expected.add(
                    frozenset(
                        db.add(
                            atom.relation,
                            tuple(
                                t.value
                                if isinstance(t, Constant)
                                else match[t]
                                for t in atom.terms
                            ),
                        )
                        for atom in query.atoms
                    )
                )
            assert witnesses == expected

    def test_h_queries_on_random_h_instances(self):
        rng = random.Random(107)
        for _ in range(20):
            db = Instance()
            for rel, arity in (
                ("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)
            ):
                db.declare(rel, arity)
            xs = [f"a{i}" for i in range(3)]
            ys = [f"b{i}" for i in range(3)]
            for x in xs:
                if rng.random() < 0.6:
                    db.add("R", (x,))
            for y in ys:
                if rng.random() < 0.6:
                    db.add("T", (y,))
            for i in (1, 2, 3):
                for x in xs:
                    for y in ys:
                        if rng.random() < 0.4:
                            db.add(f"S{i}", (x, y))
            for i in range(4):
                query = h_query(3, i)
                assert query.grounding_sets(db) == {
                    frozenset(
                        db.add(
                            atom.relation,
                            tuple(
                                t.value
                                if isinstance(t, Constant)
                                else match[t]
                                for t in atom.terms
                            ),
                        )
                        for atom in query.atoms
                    )
                    for match in reference_matches(query, db)
                }
                assert query.holds_in(db) == (
                    next(reference_matches(query, db), None) is not None
                )

    def test_missing_relation_yields_no_matches(self):
        db = Instance()
        db.add("B", ("a", "b"))
        query = ConjunctiveQuery(
            (Atom("B", ("x", "y")), Atom("Missing", ("y",)))
        )
        assert list(query.matches(db)) == []
        assert query.grounding_sets(db) == set()

    def test_arity_mismatch_yields_no_matches(self):
        db = Instance()
        db.add("B", ("a", "b"))
        query = ConjunctiveQuery((Atom("B", ("x",)),))
        assert list(query.matches(db)) == []

    def test_repeated_variable_within_atom(self):
        db = Instance()
        db.add("B", ("a", "a"))
        db.add("B", ("a", "b"))
        query = ConjunctiveQuery((Atom("B", ("x", "x")),))
        assert as_match_set(query.matches(db)) == {
            frozenset({("x", "a")})
        }

    def test_constants_filter_through_the_index(self):
        db = Instance()
        db.add("B", ("a", "b"))
        db.add("B", ("c", "b"))
        query = ConjunctiveQuery((Atom("B", (Constant("a"), "y")),))
        assert as_match_set(query.matches(db)) == {
            frozenset({("y", "b")})
        }


class TestRelationIndexes:
    def test_lookup_groups_by_projection(self):
        relation = Relation("B", 2)
        relation.add(("a", "b"))
        relation.add(("a", "c"))
        relation.add(("d", "b"))
        assert relation.lookup((0,), ("a",)) == [("a", "b"), ("a", "c")]
        assert relation.lookup((1,), ("b",)) == [("a", "b"), ("d", "b")]
        assert relation.lookup((0, 1), ("d", "b")) == [("d", "b")]
        assert relation.lookup((0,), ("z",)) == []

    def test_empty_positions_index_scans_everything(self):
        relation = Relation("B", 2)
        relation.add(("a", "b"))
        relation.add(("c", "d"))
        assert relation.lookup((), ()) == [("a", "b"), ("c", "d")]

    def test_insertion_invalidates_indexes(self):
        relation = Relation("U", 1)
        relation.add(("a",))
        assert relation.lookup((0,), ("b",)) == []
        relation.add(("b",))
        assert relation.lookup((0,), ("b",)) == [("b",)]

    def test_idempotent_insertion_keeps_indexes(self):
        relation = Relation("U", 1)
        relation.add(("a",))
        index_before = relation.index((0,))
        relation.add(("a",))  # Already present: no invalidation.
        assert relation.index((0,)) is index_before

    def test_out_of_range_positions_rejected(self):
        relation = Relation("U", 1)
        try:
            relation.index((1,))
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError for bad position")

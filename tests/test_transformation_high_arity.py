"""The ± transformation machinery at 5 and 6 variables.

The generic property tests stop at 4 variables for speed; these push the
derivations through the structured families where combinatorial edge cases
live: slices, parity functions, functions with huge positive or negative
Euler characteristics, and the searched figure witnesses.
"""

from __future__ import annotations

import random

from repro.core import valuations as v
from repro.core.boolean_function import BooleanFunction
from repro.core.euler import upper_slice
from repro.core.transformation import (
    apply_steps,
    is_canonical_form,
    minimize_to_even,
    canonicalize,
    reduce_to_bottom,
    transform,
    verify_steps,
)


class TestSlices:
    def test_slice_transforms_to_slice(self):
        # Two different-looking functions with the same (non-zero) Euler
        # characteristic: a slice and a permuted slice.
        slice_a = upper_slice(4, 2)
        slice_b = slice_a.permute([4, 3, 2, 1, 0])
        assert slice_a.euler_characteristic() == slice_b.euler_characteristic()
        steps = transform(slice_a, slice_b)
        assert verify_steps(slice_a, steps, slice_b)

    def test_each_slice_canonicalizes(self):
        for k in (3, 4):
            for threshold in range(1, k + 2):
                phi = upper_slice(k, threshold)
                if phi.euler_characteristic() < 0:
                    continue
                even = apply_steps(phi, minimize_to_even(phi))
                canonical = apply_steps(even, canonicalize(even))
                assert is_canonical_form(canonical), (k, threshold)


class TestParityFamilies:
    def test_even_parity_function_is_stable(self):
        # phi_maxEuler at 5 variables: 16 models, all even — already
        # even-minimized and canonical (it fills even levels bottom-up).
        phi = BooleanFunction(5, v.even_parity_table(5))
        assert minimize_to_even(phi) == []
        assert is_canonical_form(phi)

    def test_odd_parity_function_transforms_to_flipped(self):
        # All odd-size valuations: e = -16; its variable-0 flip has e = 16.
        # They are NOT ≃-equivalent; but two different odd-parity-like
        # functions are.
        odd = ~BooleanFunction(5, v.even_parity_table(5))
        permuted = odd.permute([1, 0, 2, 3, 4])
        assert odd.euler_characteristic() == permuted.euler_characteristic()
        steps = transform(odd, permuted)
        assert verify_steps(odd, steps, permuted)

    def test_negative_euler_transform(self):
        odd = ~BooleanFunction(4, v.even_parity_table(4))
        assert odd.euler_characteristic() == -8
        # Remove one model from a copy and add a different one elsewhere
        # keeping e fixed; transform between them.
        models = list(odd.satisfying_masks())
        variant_table = odd.table
        # Swap one odd model for another odd valuation not satisfying.
        non_models_odd = [
            m
            for m in range(16)
            if v.parity(m) == -1 and not odd(m)
        ]
        if non_models_odd:
            variant_table ^= 1 << models[0]
            variant_table |= 1 << non_models_odd[0]
        variant = BooleanFunction(4, variant_table)
        if variant.euler_characteristic() == odd.euler_characteristic():
            steps = transform(odd, variant)
            assert verify_steps(odd, steps, variant)


class TestSixVariables:
    def test_zero_euler_reduction_at_6vars(self):
        rng = random.Random(606)
        done = 0
        while done < 3:
            phi = BooleanFunction.random(6, rng)
            if phi.euler_characteristic() != 0:
                continue
            steps = reduce_to_bottom(phi)
            assert apply_steps(phi, steps).is_bottom()
            done += 1

    def test_transform_at_6vars(self):
        rng = random.Random(607)
        done = 0
        while done < 2:
            a = BooleanFunction.random(6, rng)
            b = BooleanFunction.random(6, rng)
            if a.euler_characteristic() != b.euler_characteristic():
                continue
            steps = transform(a, b)
            assert verify_steps(a, steps, b)
            done += 1

    def test_figure_witness_transform(self):
        # phi_oneneg (6 vars, e = 0) transforms to ⊥ and to phi_maxEuler's
        # complement-style siblings of equal characteristic.
        from repro.core.zoo import find_phi_one_neg

        phi = find_phi_one_neg()
        steps = reduce_to_bottom(phi)
        assert apply_steps(phi, steps).is_bottom()
        # And to any other zero-Euler function on 6 variables.
        rng = random.Random(608)
        other = None
        while other is None or other.euler_characteristic() != 0:
            other = BooleanFunction.random(6, rng)
        steps = transform(phi, other)
        assert verify_steps(phi, steps, other)

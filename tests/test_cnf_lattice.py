"""Tests for the CNF/DNF lattices and Lemma 3.8 (Euler = Möbius)."""

from __future__ import annotations

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.enumeration.monotone import enumerate_nondegenerate_monotone
from repro.lattice.cnf_lattice import (
    ClauseLattice,
    cnf_lattice,
    dnf_lattice,
    mobius_cnf_value,
    mobius_dnf_value,
    verify_lemma_38,
)
from repro.queries.hqueries import phi_9


class TestFigure2:
    """The paper's Figure 2: the CNF lattice of phi_9."""

    def test_lattice_elements(self):
        lattice = cnf_lattice(phi_9())
        elements = {tuple(sorted(e)) for e in lattice.elements()}
        assert elements == {
            (),
            (0, 3),
            (1, 3),
            (2, 3),
            (0, 1, 2),
            (0, 1, 3),
            (0, 2, 3),
            (1, 2, 3),
            (0, 1, 2, 3),
        }

    def test_mobius_annotations(self):
        # The green values of Figure 2.
        lattice = cnf_lattice(phi_9())
        column = {
            tuple(sorted(e)): v for e, v in lattice.mobius_column().items()
        }
        assert column == {
            (): 1,
            (0, 3): -1,
            (1, 3): -1,
            (2, 3): -1,
            (0, 1, 2): -1,
            (0, 1, 3): 1,
            (0, 2, 3): 1,
            (1, 2, 3): 1,
            (0, 1, 2, 3): 0,
        }

    def test_bottom_top(self):
        lattice = cnf_lattice(phi_9())
        assert lattice.top == frozenset()
        assert lattice.bottom == frozenset({0, 1, 2, 3})

    def test_q9_is_safe(self):
        # Example 3.6: mu(0-hat, 1-hat) = 0, so PQE(q_9) is PTIME.
        assert cnf_lattice(phi_9()).mobius_bottom_top() == 0


class TestLatticeBasics:
    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            ClauseLattice([])

    def test_rejects_non_monotone(self):
        phi = BooleanFunction.from_satisfying(2, [{0}])
        with pytest.raises(ValueError):
            cnf_lattice(phi)

    def test_single_clause(self):
        phi = BooleanFunction.from_cnf(2, [{0, 1}])
        lattice = cnf_lattice(phi)
        assert len(lattice.elements()) == 2
        assert lattice.mobius_bottom_top() == -1


class TestLemma38:
    """e(phi) = mu_CNF(0,1) = (-1)^k mu_DNF(0,1) for nondegenerate
    monotone functions."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_exhaustive(self, k):
        checked = 0
        for phi in enumerate_nondegenerate_monotone(k + 1):
            if phi.is_bottom() or phi.is_top():
                continue
            assert verify_lemma_38(phi), phi
            checked += 1
        assert checked > 0

    def test_k3_sample(self):
        import random

        rng = random.Random(38)
        from repro.enumeration.monotone import monotone_tables

        all_tables = monotone_tables(4)
        for table in rng.sample(all_tables, 60):
            phi = BooleanFunction(4, table)
            if phi.is_degenerate() or phi.is_bottom() or phi.is_top():
                continue
            assert verify_lemma_38(phi)

    def test_phi9_values(self):
        phi = phi_9()
        assert phi.euler_characteristic() == 0
        assert mobius_cnf_value(phi) == 0
        # k = 3 odd: e = (-1)^3 mu_DNF, so mu_DNF must also be 0.
        assert mobius_dnf_value(phi) == 0

    def test_verify_rejects_degenerate(self):
        phi = BooleanFunction.variable(0, 2)  # ignores variable 1
        with pytest.raises(ValueError):
            verify_lemma_38(phi)

    def test_verify_rejects_non_monotone(self):
        phi = BooleanFunction.from_satisfying(2, [{0}])
        with pytest.raises(ValueError):
            verify_lemma_38(phi)


class TestDnfLattice:
    def test_dnf_lattice_of_phi9(self):
        lattice = dnf_lattice(phi_9())
        # phi_9 is self-dual in clause structure: same generating sets.
        assert lattice.bottom == frozenset({0, 1, 2, 3})
        assert lattice.mobius_bottom_top() == 0

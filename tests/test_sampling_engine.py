"""Tests for the vectorized sampling engine (:mod:`repro.pqe.approximate`
on the counter-based draw stream of :mod:`repro.db.tid`).

The contracts under test:

* **draw-stream determinism** — the numpy path and the pure-Python
  fallback emit bit-identical draws, worlds and estimates for a fixed
  seed, and the stream has the prefix property (wave/chunk boundaries
  are invisible);
* **exactness** — per-tuple draws are exactly ``Bernoulli(p)`` by
  integer rejection, including probabilities whose denominators exceed
  64 bits;
* **statistical correctness** — estimates cover brute-force truth on a
  small hard-query zoo, for both estimators, monotone and not;
* **budget adaptivity** — adaptive runs stop early when the target is
  met, never exceed the fixed-count worst case, and agree bit-for-bit
  with a fixed run of the same length;
* **interval reporting** — the normal half-width is exactly zero at
  0/n hits (no phantom ``1e-12`` floor), the Wilson option never is.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits.evaluator import tape_for
from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.db.tid import (
    DrawStream,
    TupleIndependentDatabase,
    WorldSampler,
    _py_uniform_below,
    _stream_base,
)
from repro.pqe.approximate import (
    AccuracyBudget,
    Estimate,
    SamplingPlan,
    approximate_probability,
    half_width,
    karp_luby_probability,
    karp_luby_probability_vectorized,
    monte_carlo_probability_vectorized,
    sampling_plan,
)
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.engine import HardQueryError, evaluate, evaluate_batch
from repro.queries.hqueries import HQuery, q9
from repro.queries.lineage import hquery_lineage_circuit_naive


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def hard_non_monotone(k: int = 3) -> HQuery:
    rng = random.Random(0xA11CE)
    while True:
        phi = BooleanFunction.random(k + 1, rng)
        if phi.euler_characteristic() != 0 and not phi.is_monotone():
            return HQuery(k, phi)


class TestDrawStream:
    def test_numpy_and_python_worlds_identical(self):
        probabilities = [
            Fraction(1, 2),
            Fraction(1, 3),
            Fraction(2, 7),
            Fraction(0),
            Fraction(1),
            Fraction(5, 12),
            Fraction(1, 2**70 + 3),  # big-denominator path
        ]
        sampler = WorldSampler(probabilities, seed=42)
        vectorized = sampler.sample(0, 64, use_numpy=True)
        fallback = sampler.sample(0, 64, use_numpy=False)
        assert vectorized.tolist() == fallback

    def test_prefix_property_across_wave_boundaries(self):
        probabilities = [Fraction(1, 3)] * 5
        sampler = WorldSampler(probabilities, seed=9)
        whole = sampler.sample(0, 40, use_numpy=False)
        split = sampler.sample(0, 13, use_numpy=False) + sampler.sample(
            13, 27, use_numpy=False
        )
        assert whole == split

    def test_draws_uniform_and_exact_over_small_denominator(self):
        # Over many counters the empirical frequency of a 1/3 draw must
        # sit near 1/3 (the draw itself is exact per counter; this is a
        # sanity check of the mix quality, not of rounding).
        sampler = WorldSampler([Fraction(1, 3)], seed=7)
        worlds = sampler.sample(0, 30_000, use_numpy=True)
        frequency = float(worlds.mean())
        assert abs(frequency - 1 / 3) < 0.01

    def test_deterministic_tuples_are_constant_and_draw_free(self):
        # Probability-0/1 columns are constant in every world.  (They
        # also consume no stream words — but because every cell is
        # counter-addressed, whether or not a neighbor draws can never
        # shift another cell's value anyway.)
        probabilities = [
            Fraction(1), Fraction(1, 3), Fraction(2, 5), Fraction(0)
        ]
        sampler = WorldSampler(probabilities, seed=3)
        for row in sampler.sample(0, 20, use_numpy=False):
            assert row[0] == 1 and row[3] == 0

    def test_uniform_below_big_bound_in_range(self):
        base = _stream_base(11, 0)
        bound = (1 << 130) + 17
        draws = {_py_uniform_below(base, i, bound) for i in range(50)}
        assert all(0 <= d < bound for d in draws)
        assert any(d > (1 << 64) for d in draws)  # actually uses the range

    def test_draw_stream_below_matches_backends(self):
        stream = DrawStream(5, lane=1)
        vectorized = stream.below(999_983, 0, 500, use_numpy=True)
        fallback = stream.below(999_983, 0, 500, use_numpy=False)
        assert [int(d) for d in vectorized] == fallback
        assert all(0 <= d < 999_983 for d in fallback)

    def test_bound_one_draws_nothing(self):
        assert DrawStream(1).below(1, 0, 5) == [0, 0, 0, 0, 0]
        with pytest.raises(ValueError):
            DrawStream(1).below(0, 0, 5)


class TestBackendEquivalence:
    """Fixed-seed scalar(fallback)-vs-vectorized draw-stream equivalence
    for whole estimates."""

    @pytest.mark.parametrize("prob", [Fraction(1, 2), Fraction(1, 3)])
    def test_karp_luby_backends_identical(self, prob):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 3, 3, prob=prob)
        plan = SamplingPlan(query, tid)
        vectorized = plan.run_fixed(400, seed=13, use_numpy=True)
        fallback = plan.run_fixed(400, seed=13, use_numpy=False)
        assert vectorized == fallback

    def test_monte_carlo_backends_identical_non_monotone(self):
        query = hard_non_monotone(3)
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        plan = SamplingPlan(query, tid)
        assert plan.engine == "monte_carlo"
        vectorized = plan.run_fixed(300, seed=8, use_numpy=True)
        fallback = plan.run_fixed(300, seed=8, use_numpy=False)
        assert vectorized == fallback

    def test_no_numpy_module_fallback_runs(self, monkeypatch):
        # Simulate a numpy-free interpreter: the engine must produce the
        # same estimate through the pure-Python paths end to end.
        import repro.db.tid as tid_module
        import repro.pqe.approximate as approximate_module

        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 3))
        with_numpy = SamplingPlan(query, tid).run(
            AccuracyBudget(epsilon=0.1, min_samples=50, seed=4)
        )
        monkeypatch.setattr(tid_module, "_np", None)
        monkeypatch.setattr(approximate_module, "_np", None)
        without_numpy = SamplingPlan(query, tid).run(
            AccuracyBudget(epsilon=0.1, min_samples=50, seed=4)
        )
        assert with_numpy == without_numpy

    def test_reproducible_for_fixed_seed(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(epsilon=0.1, seed=77)
        first, engine_a = approximate_probability(query, tid, budget)
        second, engine_b = approximate_probability(query, tid, budget)
        assert first == second
        assert engine_a == engine_b == "karp_luby"


class TestStatisticalCoverage:
    """The hard-query zoo vs the brute-force oracle."""

    CASES = [
        (hard_full_disjunction(2), complete_tid(2, 2, 2, Fraction(1, 3))),
        (hard_full_disjunction(2), complete_tid(2, 1, 2, Fraction(1, 7))),
        (hard_full_disjunction(3), complete_tid(3, 1, 1, Fraction(1, 2))),
        (q9(), complete_tid(3, 1, 2, Fraction(1, 2))),
    ]

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_karp_luby_vectorized_near_truth(self, case):
        query, tid = self.CASES[case]
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = karp_luby_probability_vectorized(
            query, tid, 4000, seed=case
        )
        assert abs(estimate.value - truth) <= max(
            1.5 * estimate.half_width, 0.04
        )

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_monte_carlo_vectorized_near_truth(self, case):
        query, tid = self.CASES[case]
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = monte_carlo_probability_vectorized(
            query, tid, 4000, seed=case
        )
        assert abs(estimate.value - truth) <= max(
            1.5 * estimate.half_width, 0.04
        )

    def test_non_monotone_monte_carlo_near_truth(self):
        query = hard_non_monotone(3)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 3))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = monte_carlo_probability_vectorized(query, tid, 5000, 3)
        assert abs(estimate.value - truth) <= max(
            1.5 * estimate.half_width, 0.03
        )

    def test_unbiased_across_seeds_on_thirds(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 3))
        truth = float(probability_by_world_enumeration(query, tid))
        values = [
            karp_luby_probability_vectorized(query, tid, 500, seed).value
            for seed in range(10)
        ]
        assert abs(sum(values) / len(values) - truth) <= 0.03

    def test_exotic_denominators_still_exact_and_covered(self):
        # Denominators beyond 64 bits exercise the big-int draw path in
        # both the clause selection (lcm blows up) and world completion.
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 2))
        ids = tid.instance.tuple_ids()
        tid.set_probability(ids[0], Fraction(1, (1 << 70) + 1))
        tid.set_probability(ids[1], Fraction(3, 7))
        truth = float(probability_by_world_enumeration(query, tid))
        plan = SamplingPlan(query, tid)
        vectorized = plan.run_fixed(2000, seed=2, use_numpy=True)
        fallback = plan.run_fixed(2000, seed=2, use_numpy=False)
        assert vectorized == fallback
        assert abs(vectorized.value - truth) <= max(
            2 * vectorized.half_width, 0.05
        )


class TestEdgeCases:
    def _empty_schema_tid(self) -> TupleIndependentDatabase:
        tid = TupleIndependentDatabase()
        for name, arity in (
            ("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)
        ):
            tid.instance.declare(name, arity)
        return tid

    def test_empty_lineage_estimates_zero(self):
        tid = self._empty_schema_tid()
        estimate = karp_luby_probability_vectorized(q9(), tid, 100, 0)
        assert estimate == Estimate(0.0, 0.0, 100, "normal", 0)
        adaptive, engine = approximate_probability(q9(), tid)
        assert adaptive.value == 0.0 and engine == "karp_luby"

    def test_zero_weight_lineage_estimates_zero(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(0))
        estimate = karp_luby_probability_vectorized(q9(), tid, 100, 0)
        assert estimate.value == 0.0
        assert estimate.waves == 0

    def test_all_certain_tuples(self):
        # Certain tuples draw nothing; Monte Carlo sees the query hold in
        # every sampled world, exactly.  Karp-Luby stays merely unbiased
        # (value = W * hits/n with hits ~ Binomial(n, 1/m)), so it gets a
        # statistical assertion on a small-m query.
        tid = complete_tid(3, 2, 2, prob=Fraction(1))
        mc = monte_carlo_probability_vectorized(q9(), tid, 50, 0)
        assert mc.value == 1.0
        assert mc.half_width == 0.0
        query = hard_full_disjunction(2)
        certain = complete_tid(2, 1, 1, prob=Fraction(1))
        estimate = karp_luby_probability_vectorized(query, certain, 3000, 0)
        assert abs(estimate.value - 1.0) <= max(
            1.5 * estimate.half_width, 0.05
        )

    def test_rejects_non_monotone_karp_luby(self):
        query = HQuery(3, ~BooleanFunction.variable(0, 4))
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            karp_luby_probability_vectorized(query, tid, 10, 0)

    def test_invalid_sample_counts(self):
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            karp_luby_probability_vectorized(q9(), tid, 0, 0)


class TestAdaptiveBudgets:
    def test_adaptive_matches_fixed_prefix(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        plan = SamplingPlan(query, tid)
        budget = AccuracyBudget(epsilon=0.05, min_samples=50, seed=6)
        adaptive = plan.run(budget)
        fixed = plan.run_fixed(adaptive.samples, seed=6)
        assert adaptive.value == fixed.value
        assert adaptive.samples == fixed.samples

    def test_adaptive_stops_before_fixed_worst_case(self):
        # On this instance the Karp-Luby indicator probability is far
        # from 1/2, so the Wilson stopping rule fires before the
        # worst-case count the same epsilon would buy fixed.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 4, 4, prob=Fraction(1, 2))
        budget = AccuracyBudget(epsilon=0.02, min_samples=100, seed=1)
        estimate = SamplingPlan(query, tid).run(budget)
        assert estimate.samples < budget.samples()
        assert estimate.waves >= 1
        # ... and the reported (scale-relative) accuracy met the target.
        scale = float(SamplingPlan(query, tid)._total_weight)
        assert half_width(
            round(estimate.value / scale * estimate.samples),
            estimate.samples,
            scale,
            "wilson",
        ) <= budget.epsilon * scale

    def test_non_adaptive_budget_draws_fixed_count(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(
            epsilon=0.1, min_samples=10, seed=2, adaptive=False
        )
        estimate = SamplingPlan(query, tid).run(budget)
        assert estimate.samples == budget.samples()
        assert estimate.waves == 1

    def test_adaptive_never_exceeds_cap(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 2))
        budget = AccuracyBudget(
            epsilon=0.01, min_samples=16, max_samples=300, seed=3
        )
        estimate = SamplingPlan(query, tid).run(budget)
        assert estimate.samples <= 300


class TestIntervals:
    def test_normal_half_width_zero_at_extremes(self):
        assert half_width(0, 500) == 0.0
        assert half_width(500, 500) == 0.0
        assert half_width(250, 500) > 0.0

    def test_wilson_half_width_positive_at_extremes(self):
        assert half_width(0, 500, interval="wilson") > 0.0
        assert half_width(500, 500, interval="wilson") > 0.0

    def test_wilson_close_to_normal_at_half(self):
        normal = half_width(250, 500)
        wilson = half_width(250, 500, interval="wilson")
        assert abs(normal - wilson) < 0.1 * normal

    def test_interval_flag_threads_through_estimates(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 2))
        wilson = karp_luby_probability_vectorized(
            query, tid, 300, seed=1, interval="wilson"
        )
        assert wilson.interval == "wilson"
        budget = AccuracyBudget(epsilon=0.1, seed=1, interval="wilson")
        estimate = SamplingPlan(query, tid).run(budget)
        assert estimate.interval == "wilson"

    def test_scalar_samplers_accept_interval(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 2))
        estimate = karp_luby_probability(
            query, tid, 100, random.Random(0), interval="wilson"
        )
        assert estimate.interval == "wilson"

    def test_unknown_interval_rejected(self):
        with pytest.raises(ValueError):
            AccuracyBudget(interval="bayesian")
        with pytest.raises(ValueError):
            half_width(3, 10, interval="bayesian")


class TestEngineRouting:
    def test_auto_with_budget_samples_instead_of_refusing(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        with pytest.raises(HardQueryError):
            evaluate(query, tid)
        result = evaluate(query, tid, budget=AccuracyBudget(seed=1))
        assert result.engine == "karp_luby"
        assert result.estimate is not None
        assert 0 <= result.probability <= 1
        assert result.estimate.samples > 0

    def test_explicit_sampling_method(self):
        query = hard_non_monotone(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        result = evaluate(query, tid, method="sampling")
        assert result.engine == "monte_carlo"
        assert result.estimate is not None

    def test_sampling_close_to_exact_on_safe_query(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        exact = evaluate(q9(), tid)
        sampled = evaluate(
            q9(), tid, method="sampling",
            budget=AccuracyBudget(epsilon=0.02, seed=9),
        )
        assert abs(
            float(sampled.probability) - float(exact.probability)
        ) <= max(2 * sampled.estimate.half_width, 0.04)

    def test_batch_sampling(self):
        query = hard_full_disjunction(3)
        tids = [
            complete_tid(3, 3, 3, prob=Fraction(1, 3)),
            complete_tid(3, 3, 3, prob=Fraction(1, 2)),
        ]
        batch = evaluate_batch(
            query, tids, method="sampling",
            budget=AccuracyBudget(epsilon=0.1, seed=2),
        )
        assert batch.engine == "karp_luby"
        assert len(batch.probabilities) == 2
        assert all(0.0 <= p <= 1.0 for p in batch.probabilities)
        empty = evaluate_batch(query, [], method="sampling")
        assert empty.engine == "karp_luby"
        assert empty.probabilities == []

    def test_auto_batch_with_budget_falls_back_to_sampling(self):
        query = hard_full_disjunction(3)
        tids = [complete_tid(3, 3, 3, prob=Fraction(1, 3))]
        batch = evaluate_batch(
            query, tids, budget=AccuracyBudget(epsilon=0.1, seed=4)
        )
        assert batch.engine == "karp_luby"


class TestIndicatorTape:
    def test_boolean_tape_matches_holds_in_oracle(self):
        query = hard_non_monotone(3)
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        circuit = hquery_lineage_circuit_naive(query, tid.instance)
        tape = tape_for(circuit)
        ids = tid.instance.tuple_ids()
        column_of = {t: i for i, t in enumerate(ids)}
        columns = [column_of[label] for label in tape.var_labels]
        rng = random.Random(5)
        worlds = [[rng.randrange(2) for _ in ids] for _ in range(64)]
        rows = [[world[c] for c in columns] for world in worlds]
        got = tape.evaluate_worlds(rows)
        for world, value in zip(worlds, got):
            present = frozenset(
                t for t, bit in zip(ids, world) if bit
            )
            expected = query.holds_in(tid.instance.restrict_to(present))
            assert value == expected

    def test_evaluate_worlds_rejects_ragged_rows(self):
        tid = complete_tid(3, 1, 1)
        circuit = hquery_lineage_circuit_naive(q9(), tid.instance)
        tape = tape_for(circuit)
        with pytest.raises(ValueError):
            tape.evaluate_worlds([[1, 0]])

    def test_evaluate_worlds_empty_batch(self):
        tid = complete_tid(3, 1, 1)
        circuit = hquery_lineage_circuit_naive(q9(), tid.instance)
        tape = tape_for(circuit)
        assert tape.evaluate_worlds([]) == []


class TestPlanSharing:
    def test_structure_cached_per_instance_content(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 2))
        first = sampling_plan(query, tid)
        second = sampling_plan(query, tid)
        assert first._structure is second._structure

    def test_probability_updates_reflected_without_stale_weights(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 2))
        before = SamplingPlan(query, tid).run_fixed(2000, seed=1)
        for tuple_id in tid.instance.tuple_ids():
            tid.set_probability(tuple_id, Fraction(1, 8))
        after = SamplingPlan(query, tid).run_fixed(2000, seed=1)
        truth = float(probability_by_world_enumeration(query, tid))
        assert after.value != before.value
        assert abs(after.value - truth) <= max(
            2 * after.half_width, 0.05
        )

    def test_probability_fingerprint_tracks_updates(self):
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 2))
        first = tid.probability_fingerprint()
        assert tid.probability_fingerprint() is first  # memoized
        tuple_id = tid.instance.tuple_ids()[0]
        tid.set_probability(tuple_id, Fraction(1, 3))
        second = tid.probability_fingerprint()
        assert second != first

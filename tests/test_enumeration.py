"""Tests for the enumeration substrate (Dedekind ideals, isomorphism)."""

from __future__ import annotations

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.enumeration import (
    DEDEKIND_NUMBERS,
    canonical_table,
    count_classes,
    count_monotone,
    enumerate_all_functions,
    enumerate_class_representatives,
    enumerate_monotone_functions,
    enumerate_nondegenerate_monotone,
    monotone_tables,
)


class TestMonotoneEnumeration:
    @pytest.mark.parametrize("nvars", [0, 1, 2, 3, 4])
    def test_counts_match_dedekind(self, nvars):
        assert count_monotone(nvars) == DEDEKIND_NUMBERS[nvars]

    def test_count_m5(self):
        assert count_monotone(5) == 7581

    def test_all_results_monotone(self):
        for phi in enumerate_monotone_functions(3):
            assert phi.is_monotone()

    def test_no_duplicates(self):
        tables = monotone_tables(4)
        assert len(tables) == len(set(tables))

    def test_contains_constants(self):
        tables = monotone_tables(3)
        assert 0 in tables  # bottom
        assert (1 << 8) - 1 in tables  # top

    def test_rejects_beyond_six(self):
        with pytest.raises(ValueError):
            monotone_tables(7)

    def test_nondegenerate_subset(self):
        nondegenerate = list(enumerate_nondegenerate_monotone(3))
        assert all(phi.is_nondegenerate() for phi in nondegenerate)
        assert 0 < len(nondegenerate) < DEDEKIND_NUMBERS[3]

    def test_monotone_iff_enumerated(self):
        # Every monotone 3-variable function appears exactly once.
        expected = {
            table
            for table in range(1 << 8)
            if BooleanFunction(3, table).is_monotone()
        }
        assert set(monotone_tables(3)) == expected


class TestAllFunctions:
    def test_count(self):
        assert len(list(enumerate_all_functions(3))) == 256

    def test_rejects_large(self):
        with pytest.raises(ValueError):
            list(enumerate_all_functions(5))


class TestIsomorphism:
    def test_canonical_invariance(self):
        phi = BooleanFunction.from_satisfying(3, [{0}, {1, 2}])
        for perm in ([1, 0, 2], [2, 1, 0], [1, 2, 0]):
            assert canonical_table(phi.permute(perm)) == canonical_table(phi)

    def test_classes_of_two_variables(self):
        # 16 functions on 2 variables fall into 12 permutation classes
        # (the swap identifies x0<->x1).
        functions = [BooleanFunction(2, t) for t in range(16)]
        assert count_classes(functions) == 12

    def test_representatives_unique(self):
        functions = [BooleanFunction(2, t) for t in range(16)]
        representatives = list(enumerate_class_representatives(functions))
        keys = [canonical_table(phi) for phi in representatives]
        assert len(keys) == len(set(keys)) == 12

    def test_class_invariants_uniform(self):
        # Euler characteristic constant across each class.
        functions = [BooleanFunction(3, t) for t in range(0, 256, 7)]
        from repro.enumeration.isomorphism import isomorphism_classes

        classes = isomorphism_classes(functions)
        for phi in functions:
            representative = classes[canonical_table(phi)]
            assert (
                representative.euler_characteristic()
                == phi.euler_characteristic()
            )

"""Tests for the named functions and figure-witness searchers."""

from __future__ import annotations

import pytest

from repro.core import valuations as v
from repro.core.zoo import (
    find_phi_no_pm,
    find_phi_one_neg,
    is_phi_no_pm_witness,
    is_phi_one_neg_witness,
    phi_9,
    phi_max_euler,
    phi_no_pm_constraints,
)
from repro.matching.graph import ColoredGraph
from repro.matching.perfect_matching import has_perfect_matching


class TestPhi9:
    def test_example_33_properties(self):
        phi = phi_9()
        assert phi.nvars == 4
        assert phi.is_monotone()
        assert phi.is_nondegenerate()
        assert phi.euler_characteristic() == 0
        assert phi.sat_count() == 8


class TestPhiMaxEuler:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_value(self, k):
        phi = phi_max_euler(k)
        assert phi.euler_characteristic() == 1 << k

    def test_models_are_even(self):
        phi = phi_max_euler(3)
        assert all(v.parity(m) == 1 for m in phi.satisfying_masks())


class TestPhiNoPm:
    """Figure 5 (searched witness; see DESIGN.md §3)."""

    def test_constraints_are_consistent(self):
        nvars, forced_true, forced_false = phi_no_pm_constraints()
        assert nvars == 5
        assert not set(forced_true) & set(forced_false)

    def test_witness_found_and_verified(self):
        phi = find_phi_no_pm()
        assert is_phi_no_pm_witness(phi)

    def test_witness_properties_explicit(self):
        phi = find_phi_no_pm()
        assert phi.euler_characteristic() == 0
        colored = ColoredGraph(phi)
        # The paper's stated witnesses for the missing matchings.
        assert v.set_to_mask({3, 4}) in colored.isolated_colored_nodes()
        assert v.set_to_mask({0, 3, 4}) in colored.isolated_uncolored_nodes()
        assert not has_perfect_matching(colored.colored_subgraph())
        assert not has_perfect_matching(colored.uncolored_subgraph())

    def test_witness_is_not_monotone(self):
        # Otherwise it would contradict Conjecture 1 (checked exhaustively
        # for this k by the paper and by bench E13).
        assert not find_phi_no_pm().is_monotone()

    def test_deterministic_for_seed(self):
        assert find_phi_no_pm(seed=0) == find_phi_no_pm(seed=0)


class TestPhiOneNeg:
    """Figure 7 (searched witness)."""

    def test_witness_found_and_verified(self):
        phi = find_phi_one_neg()
        assert is_phi_one_neg_witness(phi)

    def test_witness_properties_explicit(self):
        phi = find_phi_one_neg()
        assert phi.nvars == 6
        assert phi.is_monotone()
        assert phi.euler_characteristic() == 0
        colored = ColoredGraph(phi)
        assert not has_perfect_matching(colored.colored_subgraph())
        assert has_perfect_matching(colored.uncolored_subgraph())

    def test_blocked_top_structure(self):
        # The figure's caption: the top valuation must be matched with both
        # 01234 and 01345, whose only colored neighbor it is.
        phi = find_phi_one_neg()
        top = (1 << 6) - 1
        for node in (v.set_to_mask({0, 1, 2, 3, 4}),
                     v.set_to_mask({0, 1, 3, 4, 5})):
            assert phi(node)
            colored_neighbors = [
                n for n in v.neighbors(node, 6) if phi(n)
            ]
            assert colored_neighbors == [top]

    def test_conjecture_or_is_necessary(self):
        # phi_oneneg satisfies Conjecture 1 only through its *uncolored*
        # side: the "or" cannot be dropped.
        from repro.matching.conjecture import check_function

        verdict = check_function(find_phi_one_neg())
        assert verdict.satisfies_conjecture
        assert not verdict.colored_has_pm
        assert verdict.uncolored_has_pm

"""Tests for the lifted safe-plan evaluation of h-disjunctions."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.safe_plans import (
    UnsafeSubqueryError,
    chain_probability,
    disjunction_probability,
    runs_of,
)
from repro.queries.hqueries import HQuery


class TestRuns:
    def test_examples(self):
        assert runs_of([0, 1, 3, 5, 6]) == [(0, 1), (3, 3), (5, 6)]
        assert runs_of([]) == []
        assert runs_of([2]) == [(2, 2)]
        assert runs_of([3, 1, 2]) == [(1, 3)]

    def test_duplicates_ignored(self):
        assert runs_of([1, 1, 2]) == [(1, 2)]


class TestChainProbability:
    def test_empty_chain(self):
        assert chain_probability([]) == 0

    def test_single_tuple_needs_flag(self):
        p = [Fraction(1, 2)]
        assert chain_probability(p) == 0
        assert chain_probability(p, satisfied_by_first=True) == Fraction(1, 2)
        assert chain_probability(p, satisfied_by_last=True) == Fraction(1, 2)

    def test_two_tuples(self):
        p = [Fraction(1, 2), Fraction(1, 2)]
        assert chain_probability(p) == Fraction(1, 4)

    def test_matches_enumeration(self):
        rng = random.Random(3)
        for _ in range(20):
            length = rng.randint(1, 6)
            probs = [Fraction(rng.randint(0, 4), 4) for _ in range(length)]
            for first in (False, True):
                for last in (False, True):
                    expected = Fraction(0)
                    for mask in range(1 << length):
                        bits = [bool(mask >> i & 1) for i in range(length)]
                        satisfied = any(
                            bits[i] and bits[i + 1]
                            for i in range(length - 1)
                        )
                        if first and bits[0]:
                            satisfied = True
                        if last and bits[-1]:
                            satisfied = True
                        if not satisfied:
                            continue
                        weight = Fraction(1)
                        for bit, p in zip(bits, probs):
                            weight *= p if bit else 1 - p
                        expected += weight
                    assert (
                        chain_probability(
                            probs,
                            satisfied_by_first=first,
                            satisfied_by_last=last,
                        )
                        == expected
                    )


class TestDisjunctionProbability:
    def brute_force_disjunction(self, indices, k, tid):
        phi = BooleanFunction.bottom(k + 1)
        for i in indices:
            phi = phi | BooleanFunction.variable(i, k + 1)
        return probability_by_world_enumeration(HQuery(k, phi), tid)

    def test_empty_disjunction(self):
        tid = complete_tid(2, 1, 1)
        assert disjunction_probability([], 2, tid) == 0

    def test_full_set_rejected(self):
        tid = complete_tid(2, 1, 1)
        with pytest.raises(UnsafeSubqueryError):
            disjunction_probability([0, 1, 2], 2, tid)

    def test_out_of_range_rejected(self):
        tid = complete_tid(2, 1, 1)
        with pytest.raises(ValueError):
            disjunction_probability([5], 2, tid)

    @pytest.mark.parametrize(
        "indices",
        [[0], [1], [2], [3], [0, 1], [1, 2], [2, 3], [0, 3], [0, 1, 2],
         [1, 2, 3], [0, 2], [1, 3], [0, 1, 3], [0, 2, 3]],
    )
    def test_k3_against_brute_force_complete(self, indices):
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        assert disjunction_probability(
            indices, 3, tid
        ) == self.brute_force_disjunction(indices, 3, tid)

    def test_k2_random_instances(self):
        rng = random.Random(77)
        cases = 0
        while cases < 6:
            tid = random_tid(2, 2, 2, rng, tuple_density=0.5)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            for indices in ([0], [1], [2], [0, 1], [1, 2], [0, 2]):
                assert disjunction_probability(
                    indices, 2, tid
                ) == self.brute_force_disjunction(indices, 2, tid), indices

    def test_k4_interior_run(self):
        # Interior runs never touch R or T.
        tid = complete_tid(4, 2, 1, prob=Fraction(1, 3))
        assert disjunction_probability(
            [1, 2, 3], 4, tid
        ) == self.brute_force_disjunction([1, 2, 3], 4, tid)

    def test_left_and_right_runs_with_unaries(self):
        rng = random.Random(99)
        cases = 0
        while cases < 4:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.45)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            for indices in ([0, 1], [2, 3], [0, 1, 2], [1, 2, 3]):
                assert disjunction_probability(
                    indices, 3, tid
                ) == self.brute_force_disjunction(indices, 3, tid), indices

"""Property tests for the compilation fast path (PR 2).

The shared-order OBDD families, tabular automata, hash-consed arenas and
the exact common-denominator tape backend must be *semantically invisible*:
every construction here is compared gate-for-gate — via exact ``Fraction``
probabilities, d-D validation and automaton-run equivalence — against the
seed behavior it replaces.
"""

from __future__ import annotations

import random
import threading
from fractions import Fraction

import pytest

from repro.circuits import (
    Circuit,
    GateKind,
    assert_d_d,
    probability as circuit_probability,
)
from repro.circuits.evaluator import tape_for
from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.obdd.builder import LayeredAutomaton, build_obdd, build_obdd_family
from repro.obdd.obdd import ObddManager
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.degenerate import (
    left_side_machine,
    pair_query_circuit,
    right_side_machine,
)
from repro.pqe.engine import (
    clear_compilation_cache,
    compilation_cache_stats,
    evaluate,
    evaluate_batch,
)
from repro.pqe.intensional import (
    compile_lineage,
    compile_lineage_ddnnf,
)
from repro.queries.hqueries import HQuery, q9


def closure_side_reference(events, values):
    """The seed closure-automaton transition, verbatim, run to the final
    ``(mask, unary, prev)`` state."""
    mask, unary, prev = 0, False, False
    for kind, value in zip(events, values):
        if kind[0] == "unary":
            unary, prev = value, False
            continue
        chain_position = kind[1]
        if chain_position == 0:
            if unary and value:
                mask |= 1
        elif prev and value:
            mask |= 1 << chain_position
        prev = value
    return mask


class TestTabularAutomata:
    @pytest.mark.parametrize("l,k", [(1, 3), (2, 3), (3, 3), (1, 2)])
    def test_left_machine_matches_closure_reference(self, l, k):
        rng = random.Random(100 * l + k)
        tid = complete_tid(k, 3, 2)
        machine = left_side_machine(l, tid.instance)
        events = []
        for tuple_id in machine.order:
            if tuple_id.relation == "R":
                events.append(("unary",))
            else:
                events.append(("s", int(tuple_id.relation[1:]) - 1))
        for _ in range(50):
            values = [rng.random() < 0.5 for _ in machine.order]
            assert machine.run(values) == closure_side_reference(
                events, values
            )

    @pytest.mark.parametrize("l,k", [(0, 3), (1, 3), (2, 3), (0, 2)])
    def test_right_machine_matches_closure_reference(self, l, k):
        rng = random.Random(300 + 10 * l + k)
        tid = complete_tid(k, 2, 3)
        machine = right_side_machine(l, k, tid.instance)
        events = []
        for tuple_id in machine.order:
            if tuple_id.relation == "T":
                events.append(("unary",))
            else:
                events.append(("s", k - int(tuple_id.relation[1:])))
        for _ in range(50):
            values = [rng.random() < 0.5 for _ in machine.order]
            assert machine.run(values) == closure_side_reference(
                events, values
            )

    def test_accept_view_is_a_layered_automaton(self):
        tid = complete_tid(3, 2, 2)
        machine = left_side_machine(2, tid.instance)
        rng = random.Random(11)
        view = machine.accept(1)
        assert isinstance(view, LayeredAutomaton)
        for _ in range(20):
            values = [rng.random() < 0.5 for _ in machine.order]
            assert view.run(values) == (machine.run(values) == 1)

    def test_machines_are_memoized_per_instance_content(self):
        tid = complete_tid(3, 2, 2)
        db = tid.instance
        first = left_side_machine(1, db)
        assert left_side_machine(1, db) is first
        db.add("R", ("a_new",))  # content change invalidates
        assert left_side_machine(1, db) is not first


class TestObddFamily:
    def test_family_matches_per_mask_build(self):
        tid = complete_tid(3, 2, 2)
        rng = random.Random(5)
        for machine in (
            left_side_machine(2, tid.instance),
            right_side_machine(1, 3, tid.instance),
        ):
            masks = sorted({machine.run(
                [rng.random() < 0.5 for _ in machine.order]
            ) for _ in range(12)})
            shared = ObddManager(machine.order)
            _, family = build_obdd_family(machine, masks, shared)
            for mask in masks:
                single_manager, single_root = build_obdd(
                    machine.accept(mask)
                )
                for _ in range(40):
                    assignment = {
                        label: rng.random() < 0.5
                        for label in machine.order
                    }
                    assert shared.evaluate(
                        family[mask], assignment
                    ) == single_manager.evaluate(single_root, assignment)

    def test_family_members_are_disjoint_events(self):
        # Distinct accepting masks partition the runs, so the OBDDs are
        # pairwise disjoint — the determinism the template ∨-gates rely on.
        tid = complete_tid(2, 2, 2)
        machine = left_side_machine(2, tid.instance)
        manager = ObddManager(machine.order)
        _, family = build_obdd_family(machine, [0, 1, 2, 3], manager)
        roots = list(family.values())
        for i, a in enumerate(roots):
            for b in roots[i + 1:]:
                assert manager.apply("and", a, b) == 0

    def test_incremental_masks_reuse_the_manager(self):
        tid = complete_tid(2, 2, 2)
        machine = left_side_machine(1, tid.instance)
        manager = ObddManager(machine.order)
        _, first = build_obdd_family(machine, [0], manager)
        size_after_first = len(manager._nodes)
        _, again = build_obdd_family(machine, [0], manager)
        # Same function, same hash-consed nodes: no growth.
        assert len(manager._nodes) == size_after_first
        assert first[0] == again[0]


class TestSharedCompilationSemantics:
    def zero_euler_queries(self, rng, count=4):
        queries = [q9()]
        while len(queries) < count:
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() == 0 and not phi.is_bottom():
                queries.append(HQuery(3, phi))
        return queries

    def test_compiled_probability_matches_brute_force(self):
        rng = random.Random(42)
        cases = 0
        while cases < 5:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.5)
            if not 0 < len(tid) <= 14:
                continue
            cases += 1
            for query in self.zero_euler_queries(rng, 3):
                compiled = compile_lineage(query, tid.instance)
                assert_d_d(compiled.circuit)
                assert circuit_probability(
                    compiled.circuit, tid.probability_map()
                ) == probability_by_world_enumeration(query, tid)

    def test_dedup_arena_matches_append_only_arena(self):
        rng = random.Random(77)
        cases = 0
        while cases < 4:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.6)
            if len(tid) == 0:
                continue
            cases += 1
            for l, pattern in ((0, 12), (1, 9), (2, 10), (3, 7)):
                shared = Circuit(dedup=True)
                shared.set_output(
                    pair_query_circuit(3, l, pattern, tid.instance, shared)
                )
                plain = Circuit()
                plain.set_output(
                    pair_query_circuit(3, l, pattern, tid.instance, plain)
                )
                prob = tid.probability_map()
                assert circuit_probability(
                    shared, prob
                ) == circuit_probability(plain, prob)
                assert len(shared) <= len(plain)

    def test_repeated_compiles_share_pair_roots(self):
        clear_compilation_cache()
        tid = complete_tid(3, 3, 3)
        first = compile_lineage(q9(), tid.instance)
        before = compilation_cache_stats()
        second = compile_lineage(q9(), tid.instance)
        after = compilation_cache_stats()
        assert after.pair_hits > before.pair_hits
        assert len(second.circuit) == len(first.circuit)
        assert first.compile_ms >= 0.0

    def test_overlapping_pairs_share_gates_in_one_arena(self):
        # A degenerate phi with several model pairs over the same flip
        # variable: all pairs share the side managers, so later pairs
        # reuse gates earlier pairs already materialized — the shared
        # arena must be smaller than the standalone expansions combined.
        tid = complete_tid(3, 2, 2)
        base = [{0}, {0, 1}, {2}, {1, 2}, {0, 2}, {0, 1, 2}]
        phi = BooleanFunction.from_satisfying(
            4, [s for m in base for s in (m, m | {3})]
        )
        assert not phi.depends_on(3)
        from repro.pqe.degenerate import degenerate_lineage_circuit

        circuit = degenerate_lineage_circuit(phi, tid.instance)
        standalone_total = 0
        for model in sorted(phi.satisfying_masks()):
            if model & 8:
                continue
            single = Circuit(dedup=True)
            single.set_output(
                pair_query_circuit(3, 3, model, tid.instance, single)
            )
            standalone_total += len(single)
        assert len(circuit) < standalone_total
        assert circuit_probability(
            circuit, tid.probability_map()
        ) == probability_by_world_enumeration(HQuery(3, phi), tid)

    def test_instance_mutation_invalidates_shared_state(self):
        from repro.db.relation import TupleId

        tid = complete_tid(3, 2, 2)
        db = tid.instance
        compile_lineage(q9(), db)  # warm the side caches
        tid.add("S1", ("a_extra", "b_extra"), Fraction(1, 2))
        second = compile_lineage(q9(), db)
        # The new tuple's variable must appear in the recompiled lineage:
        # stale cached orders/machines/managers would omit it.
        assert (
            TupleId("S1", ("a_extra", "b_extra"))
            in second.circuit.variables()
        )
        assert circuit_probability(
            second.circuit, tid.probability_map()
        ) == probability_by_world_enumeration(q9(), tid)

    def test_ddnnf_route_stays_nnf(self):
        tid = complete_tid(3, 2, 2)
        compiled = compile_lineage_ddnnf(q9(), tid.instance)
        assert compiled.is_nnf
        assert compiled.circuit.is_nnf()
        # The incremental NNF counter agrees with a full rescan.
        rescan = all(
            compiled.circuit.gate(g.inputs[0]).kind is GateKind.VAR
            for _, g in compiled.circuit.gates()
            if g.kind is GateKind.NOT
        )
        assert rescan == compiled.circuit.is_nnf()

    def test_incremental_nnf_counter_detects_violations(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        inner = circuit.add_and([x, circuit.add_var("y")])
        circuit.set_output(circuit.add_not(inner))
        assert not circuit.is_nnf()
        nnf = Circuit(dedup=True)
        nnf.set_output(nnf.add_not(nnf.add_var("x")))
        assert nnf.is_nnf()


class TestExactCommonDenominatorBackend:
    def test_bit_identical_on_random_lineages(self):
        rng = random.Random(9)
        cases = 0
        while cases < 5:
            tid = random_tid(3, 2, 3, rng, tuple_density=0.6)
            if len(tid) == 0:
                continue
            cases += 1
            compiled = compile_lineage(q9(), tid.instance)
            tape = tape_for(compiled.circuit)
            prob = tid.probability_map()
            fast = tape.evaluate(prob)
            reference = tape._interpret(prob, tape.live)[tape.output]
            assert fast == reference
            assert isinstance(fast, Fraction)

    def test_fallback_on_oversized_denominator(self):
        tid = complete_tid(3, 2, 2)
        compiled = compile_lineage(q9(), tid.instance)
        tape = tape_for(compiled.circuit)
        prob = tid.probability_map()
        some = next(iter(prob))
        prob[some] = Fraction(1, (1 << 80) + 1)  # lcm blows past 64 bits
        assert tape._evaluate_common_denominator(prob) is None
        reference = tape._interpret(prob, tape.live)[tape.output]
        assert tape.evaluate(prob) == reference

    def test_float_maps_keep_float_semantics(self):
        tid = complete_tid(3, 2, 2)
        compiled = compile_lineage(q9(), tid.instance)
        tape = tape_for(compiled.circuit)
        prob = {t: 0.5 for t in tid.instance.tuple_ids()}
        assert isinstance(tape.evaluate(prob), float)

    def test_mixed_int_and_fraction_values(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        compiled = compile_lineage(q9(), tid.instance)
        tape = tape_for(compiled.circuit)
        prob = tid.probability_map()
        for i, key in enumerate(list(prob)):
            if i % 3 == 0:
                prob[key] = 1  # deterministic tuple, as plain int
        fast = tape.evaluate(prob)
        reference = tape._interpret(prob, tape.live)[tape.output]
        assert fast == reference


class TestEngineConcurrencyAndBatch:
    def test_concurrent_evaluate_keeps_cache_consistent(self):
        clear_compilation_cache()
        tid = complete_tid(3, 3, 3)
        errors = []

        def worker():
            try:
                for _ in range(5):
                    result = evaluate(q9(), tid, method="intensional")
                    assert result.probability is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = compilation_cache_stats()
        assert stats.hits + stats.misses == 40
        # At most a few racing compiles; every later call must hit.
        assert stats.hits >= 40 - 8

    def test_concurrent_compiles_on_one_instance_stay_exact(self):
        # Regression: compiling mutates instance-shared derivations (the
        # side OBDD managers grow while templates are plugged), so two
        # compilers racing over one instance — exactly what replicated
        # serving does, with a separate CompilationCache per replica
        # shard — used to corrupt the shared manager and make *both*
        # emit a circuit computing the wrong probability.  The
        # per-instance derivation lock must keep every concurrently
        # compiled tape bit-identical to the single-threaded value.
        from repro.pqe.engine import CompilationCache

        rng = random.Random(0xD1CE)
        while True:
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() == 0 and not phi.is_monotone():
                break
        query = HQuery(3, phi)
        reference = evaluate(
            query, complete_tid(3, 3, 3), method="intensional"
        ).probability
        for _ in range(8):
            tid = complete_tid(3, 3, 3)
            caches = [CompilationCache() for _ in range(3)]
            results: list[float | None] = [None] * len(caches)
            barrier = threading.Barrier(len(caches))

            def worker(slot: int) -> None:
                barrier.wait()
                compiled, _ = caches[slot].get_or_compile(
                    query, tid.instance
                )
                tape = compiled.tape
                vector = tape.probability_vector(tid.probability_map())
                results[slot] = tape.evaluate_vectors([vector])[0]

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(len(caches))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert results == [reference] * len(caches)

    def test_batch_fallback_reports_per_tid_engines(self):
        def full_disjunction(k):
            phi = BooleanFunction.bottom(k + 1)
            for i in range(k + 1):
                phi = phi | BooleanFunction.variable(i, k + 1)
            return phi

        query = HQuery(3, full_disjunction(3))
        tids = [complete_tid(3, 1, 1) for _ in range(3)]
        result = evaluate_batch(query, tids)
        assert result.engine == "brute_force"
        assert result.engines == ["brute_force"] * 3

    def test_batch_intensional_keeps_single_label(self):
        tids = [complete_tid(3, 2, 2) for _ in range(2)]
        result = evaluate_batch(q9(), tids, method="intensional")
        assert result.engine == "intensional"
        assert result.engines is None

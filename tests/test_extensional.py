"""Tests for the extensional (lifted inference / Möbius) engine."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.extensional import (
    UnsafeQueryError,
    is_safe,
    mobius_terms,
    probability,
    probability_by_raw_inclusion_exclusion,
)
from repro.queries.hqueries import HQuery, phi_9, q9


class TestSafety:
    def test_q9_is_safe(self):
        assert is_safe(q9())

    def test_full_disjunction_unsafe(self):
        # H_k = h_0 ∨ ... ∨ h_k is the canonical unsafe query.
        phi = BooleanFunction.bottom(4)
        for i in range(4):
            phi = phi | BooleanFunction.variable(i, 4)
        assert not is_safe(HQuery(3, phi))

    def test_degenerate_monotone_safe(self):
        phi = BooleanFunction.variable(1, 4)  # just h_1
        assert is_safe(HQuery(3, phi))

    def test_safety_undefined_for_non_monotone(self):
        with pytest.raises(ValueError):
            is_safe(HQuery(3, ~phi_9()))

    def test_safety_matches_euler(self):
        from repro.enumeration.monotone import enumerate_monotone_functions

        for phi in enumerate_monotone_functions(3):
            query = HQuery(2, phi)
            assert is_safe(query) == (phi.euler_characteristic() == 0)


class TestMobiusTerms:
    def test_q9_terms_exclude_bottom(self):
        terms = dict(mobius_terms(q9()))
        # The #P-hard bottom {0,1,2,3} has Möbius value 0, so it is absent.
        assert frozenset({0, 1, 2, 3}) not in terms
        # The seven nontrivial lattice elements survive.
        assert len(terms) == 7

    def test_q9_coefficients(self):
        terms = {
            tuple(sorted(e)): c for e, c in mobius_terms(q9())
        }
        assert terms == {
            (0, 3): 1,
            (1, 3): 1,
            (2, 3): 1,
            (0, 1, 2): 1,
            (0, 1, 3): -1,
            (0, 2, 3): -1,
            (1, 2, 3): -1,
        }

    def test_non_monotone_rejected(self):
        with pytest.raises(UnsafeQueryError):
            mobius_terms(HQuery(3, ~phi_9()))


class TestProbability:
    def test_constants(self):
        tid = complete_tid(2, 1, 1)
        assert probability(HQuery(2, BooleanFunction.bottom(3)), tid) == 0
        assert probability(HQuery(2, BooleanFunction.top(3)), tid) == 1

    def test_q9_against_brute_force(self):
        rng = random.Random(101)
        cases = 0
        while cases < 5:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.45)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            assert probability(q9(), tid) == probability_by_world_enumeration(
                q9(), tid
            )

    def test_q9_complete_instances(self):
        for n in (1, 2):
            tid = complete_tid(3, n, n, prob=Fraction(1, 2))
            if len(tid) <= 22:
                assert probability(
                    q9(), tid
                ) == probability_by_world_enumeration(q9(), tid)

    def test_unsafe_query_raises(self):
        phi = BooleanFunction.bottom(4)
        for i in range(4):
            phi = phi | BooleanFunction.variable(i, 4)
        tid = complete_tid(3, 1, 1)
        with pytest.raises(UnsafeQueryError):
            probability(HQuery(3, phi), tid)

    def test_all_safe_monotone_k2(self):
        # Exhaustive: every safe monotone phi on 3 variables agrees with
        # brute force on a fixed small instance.
        tid = complete_tid(2, 2, 1, prob=Fraction(1, 3))
        from repro.enumeration.monotone import enumerate_monotone_functions

        for phi in enumerate_monotone_functions(3):
            query = HQuery(2, phi)
            if not is_safe(query):
                continue
            assert probability(
                query, tid
            ) == probability_by_world_enumeration(query, tid), phi

    def test_degenerate_monotone_random(self):
        rng = random.Random(103)
        cases = 0
        while cases < 4:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.4)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            # Single h_i queries and small disjunctions are degenerate.
            for phi in (
                BooleanFunction.variable(1, 4),
                BooleanFunction.variable(0, 4)
                | BooleanFunction.variable(2, 4),
            ):
                query = HQuery(3, phi)
                assert probability(
                    query, tid
                ) == probability_by_world_enumeration(query, tid)


class TestRawInclusionExclusion:
    def test_matches_mobius_collapse(self):
        rng = random.Random(107)
        cases = 0
        while cases < 4:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.4)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            assert probability(
                q9(), tid
            ) == probability_by_raw_inclusion_exclusion(q9(), tid)

    def test_unsafe_raises(self):
        phi = BooleanFunction.bottom(3)
        for i in range(3):
            phi = phi | BooleanFunction.variable(i, 3)
        tid = complete_tid(2, 1, 1)
        with pytest.raises(UnsafeQueryError):
            probability_by_raw_inclusion_exclusion(HQuery(2, phi), tid)

"""Tests for the Proposition 3.7 constructions (degenerate H-queries)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import assert_d_d, probability as circuit_probability
from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.degenerate import (
    degenerate_lineage_circuit,
    degenerate_lineage_obdd,
    left_variable_order,
    pair_query_circuit,
    right_variable_order,
)
from repro.queries.hqueries import HQuery


def make_degenerate(nvars: int, missing: int, rng: random.Random):
    """A random function not depending on ``missing``."""
    base = BooleanFunction.random(nvars, rng)
    pos, neg = base.cofactors(missing)
    phi = pos | neg if rng.random() < 0.5 else pos & neg
    return phi


class TestVariableOrders:
    def test_left_order_shape(self):
        tid = complete_tid(3, 2, 2)
        order = left_variable_order(2, tid.instance)
        # For each of 2 x-values: R + 2 y-values * 2 S-relations = 5.
        assert len(order) == 2 * (1 + 2 * 2)
        assert order[0].relation == "R"

    def test_right_order_shape(self):
        tid = complete_tid(3, 2, 2)
        order = right_variable_order(1, 3, tid.instance)
        # For each of 2 y-values: T + 2 x-values * 2 S-relations (S3, S2).
        assert len(order) == 2 * (1 + 2 * 2)
        assert order[0].relation == "T"
        assert order[1].relation == "S3"


class TestPairQueryCircuit:
    def exact_pattern_function(self, k: int, l: int, pattern: int):
        """The Boolean function of the pair query: h-pattern equals
        ``pattern`` on all indices != l."""
        phi = BooleanFunction.top(k + 1)
        for i in range(k + 1):
            if i == l:
                continue
            var = BooleanFunction.variable(i, k + 1)
            phi = phi & (var if pattern >> i & 1 else ~var)
        return phi

    @pytest.mark.parametrize("l", [0, 1, 2])
    def test_pair_circuit_matches_brute_force(self, l):
        rng = random.Random(200 + l)
        cases = 0
        while cases < 3:
            tid = random_tid(2, 2, 2, rng, tuple_density=0.45)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            for pattern in range(8):
                if pattern >> l & 1:
                    continue
                from repro.circuits import Circuit

                circuit = Circuit()
                out = pair_query_circuit(2, l, pattern, tid.instance, circuit)
                circuit.set_output(out)
                assert_d_d(circuit)
                phi = self.exact_pattern_function(2, l, pattern)
                expected = probability_by_world_enumeration(
                    HQuery(2, phi), tid
                )
                assert (
                    circuit_probability(circuit, tid.probability_map())
                    == expected
                ), (l, pattern)


class TestDegenerateCircuit:
    def test_rejects_nondegenerate(self):
        from repro.queries.hqueries import phi_9

        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            degenerate_lineage_circuit(phi_9(), tid.instance)

    def test_circuit_matches_brute_force(self):
        rng = random.Random(211)
        cases = 0
        while cases < 6:
            missing = rng.randrange(4)
            phi = make_degenerate(4, missing, rng)
            if phi.depends_on(missing):
                continue
            tid = random_tid(3, 2, 2, rng, tuple_density=0.4)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            circuit = degenerate_lineage_circuit(phi, tid.instance)
            assert_d_d(circuit)
            expected = probability_by_world_enumeration(HQuery(3, phi), tid)
            assert (
                circuit_probability(circuit, tid.probability_map())
                == expected
            )

    def test_explicit_missing_variable(self):
        rng = random.Random(213)
        phi = make_degenerate(3, 1, rng)
        tid = complete_tid(2, 1, 1)
        circuit = degenerate_lineage_circuit(
            phi, tid.instance, missing_variable=1
        )
        assert_d_d(circuit)

    def test_wrong_missing_variable_rejected(self):
        phi = BooleanFunction.variable(0, 3)  # depends on 0 only
        tid = complete_tid(2, 1, 1)
        with pytest.raises(ValueError):
            degenerate_lineage_circuit(phi, tid.instance, missing_variable=0)


class TestDegenerateObdd:
    def test_obdd_matches_circuit_and_brute_force(self):
        rng = random.Random(217)
        cases = 0
        while cases < 5:
            missing = rng.randrange(4)
            phi = make_degenerate(4, missing, rng)
            if phi.depends_on(missing):
                continue
            tid = random_tid(3, 2, 2, rng, tuple_density=0.4)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            manager, root = degenerate_lineage_obdd(phi, tid.instance)
            expected = probability_by_world_enumeration(HQuery(3, phi), tid)
            assert manager.probability(root, tid.probability_map()) == expected

    def test_obdd_polynomial_width(self):
        # Proposition 3.7's point: the OBDD width is bounded by a constant
        # (in data complexity), so size grows linearly with the order.
        rng = random.Random(219)
        phi = make_degenerate(3, 2, rng)
        while phi.depends_on(2) or phi.sat_count() == 0:
            phi = make_degenerate(3, 2, rng)
        sizes = []
        for n in (1, 2, 3, 4):
            tid = complete_tid(2, n, n)
            manager, root = degenerate_lineage_obdd(phi, tid.instance)
            sizes.append((len(manager.order), manager.size(root)))
        # Size grows at most linearly with a generous constant.
        for order_len, size in sizes:
            assert size <= 16 * order_len + 20


class TestSingleHQueries:
    """Every single h_{k,i} is degenerate; its lineage OBDD must agree with
    brute force on random instances — the Appendix B.1 base case."""

    @pytest.mark.parametrize("i", [0, 1, 2, 3])
    def test_single_h_query(self, i):
        rng = random.Random(300 + i)
        phi = BooleanFunction.variable(i, 4)
        cases = 0
        while cases < 3:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.45)
            if not 0 < len(tid) <= 12:
                continue
            cases += 1
            circuit = degenerate_lineage_circuit(phi, tid.instance)
            assert_d_d(circuit)
            expected = probability_by_world_enumeration(HQuery(3, phi), tid)
            assert (
                circuit_probability(circuit, tid.probability_map())
                == expected
            )

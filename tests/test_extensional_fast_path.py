"""Tests for the vectorized extensional fast path: columnar views,
Möbius-batched plans, the plan cache, and the extensional-vs-intensional
equivalence the paper's conjecture line of work is about."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.columnar import columnar_layout, h_columns
from repro.db.generator import complete_tid, random_tid
from repro.db.relation import TupleId
from repro.enumeration.monotone import enumerate_monotone_functions
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.engine import (
    CompilationCache,
    ExtensionalPlanCache,
    evaluate,
    evaluate_batch,
)
from repro.pqe.extensional import (
    UnsafeQueryError,
    build_plan,
    is_safe,
    plan_for,
    probability,
    probability_batch,
    probability_float,
)
from repro.queries.hqueries import HQuery, q9


class TestColumnarView:
    def test_layout_matches_domains_and_positions(self):
        tid = complete_tid(2, 2, 3, prob=Fraction(1, 2))
        layout = columnar_layout(tid.instance, 2)
        assert layout.xs == ("a1", "a2")
        assert layout.ys == ("b1", "b2", "b3")
        assert len(layout.r_slots) == 2
        assert len(layout.t_slots) == 3
        assert all(len(slots) == 6 for slots in layout.s_slots)

    def test_layout_is_cached_until_instance_mutation(self):
        tid = complete_tid(2, 2, 2)
        first = columnar_layout(tid.instance, 2)
        assert columnar_layout(tid.instance, 2) is first
        tid.add("R", ("a99",), Fraction(1, 2))
        assert columnar_layout(tid.instance, 2) is not first

    def test_columns_hold_probabilities_and_absent_tuples_are_zero(self):
        tid = random_tid(2, 2, 2, random.Random(5), tuple_density=0.5)
        cols = h_columns(tid, 2)
        layout = cols.layout
        D = cols.denominator
        for xi, x in enumerate(layout.xs):
            expected = (
                tid.probability_of(TupleId("R", (x,)))
                if tid.instance.has("R", (x,))
                else Fraction(0)
            )
            assert Fraction(cols.r_num[xi], D) == expected
            assert cols.r_float[xi] == float(expected)

    def test_columns_invalidate_on_probability_update(self):
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 2))
        first = h_columns(tid, 2)
        assert h_columns(tid, 2) is first
        victim = tid.instance.tuple_ids()[0]
        tid.set_probability(victim, Fraction(1, 3))
        second = h_columns(tid, 2)
        assert second is not first
        assert second.denominator == 6

    def test_exact_encoding_disabled_beyond_64_bit_denominator(self):
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 2**70 + 1))
        cols = h_columns(tid, 2)
        assert cols.denominator is None
        assert cols.s_num is None
        assert cols.r_float is not None

    def test_out_of_schema_relations_are_ignored_not_parsed(self):
        # "Score" starts with S but is not an S_i chain relation; like
        # the scalar fallback, the columnar path must skip it — and a
        # non-ASCII digit suffix must never alias a genuine grid.
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 2))
        tid.add("Score", ("a1", "b1"), Fraction(1, 3))
        tid.add("S٣", ("a1", "b1"), Fraction(1, 5))  # "S٣"
        cols = h_columns(tid, 2)
        assert all(
            tuple_id.relation == f"S{i + 1}"
            for i, slots in enumerate(cols.layout.s_slots)
            for _, tuple_id in slots
        )
        query = HQuery(
            2,
            BooleanFunction.variable(0, 3) | BooleanFunction.variable(2, 3),
        )
        assert probability(query, tid) == probability_by_world_enumeration(
            query, tid
        )

    def test_per_k_cache_slots_do_not_thrash(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        k2_first = h_columns(tid, 2)
        k3_first = h_columns(tid, 3)
        assert h_columns(tid, 2) is k2_first
        assert h_columns(tid, 3) is k3_first


class TestNumpyFreeFallback:
    """The pure-Python float backends (list columns, per-group scalar
    chain DP) must agree with the oracle when numpy is absent."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro.db.columnar as columnar_module
        import repro.pqe.safe_plans as safe_plans_module

        monkeypatch.setattr(columnar_module, "_np", None)
        monkeypatch.setattr(safe_plans_module, "_np", None)

    def test_fallback_agrees_with_exact_and_brute_force(self, no_numpy):
        rng = random.Random(77)
        checked = 0
        while checked < 3:
            tid = random_tid(3, 2, 2, rng, tuple_density=0.5)
            if not 0 < len(tid) <= 12:
                continue
            cols = h_columns(tid, 3)
            assert isinstance(cols.s_float, list)
            assert not hasattr(cols.r_float, "dtype")
            exact = probability(q9(), tid)
            assert exact == probability_by_world_enumeration(q9(), tid)
            assert probability_float(q9(), tid) == pytest.approx(
                float(exact), abs=1e-9
            )
            checked += 1

    def test_fallback_batch_matches_singles(self, no_numpy):
        rng = random.Random(78)
        tids = [
            random_tid(3, 2, 2, rng, tuple_density=0.8) for _ in range(4)
        ]
        plan, _ = plan_for(q9())
        assert probability_batch(q9(), tids, plan=plan) == [
            probability_float(q9(), tid, plan=plan) for tid in tids
        ]


class TestPlans:
    def test_q9_plan_shares_runs_across_terms(self):
        plan = build_plan(q9())
        assert plan.constant is None
        assert len(plan.terms) == 7
        # The seven Möbius terms reference eleven runs, collapsing to
        # seven distinct ones: the per-run group reductions are shared
        # across lattice elements, not recomputed per term.
        references = [rid for _, ids in plan.terms for rid in ids]
        assert len(references) == 11
        assert len(plan.runs) == 7
        assert set(plan.runs) == {
            (0, 0), (3, 3), (1, 1), (2, 3), (0, 2), (0, 1), (1, 3),
        }
        assert sorted(set(references)) == list(range(len(plan.runs)))

    def test_constant_plans(self):
        tid = complete_tid(2, 1, 1)
        bottom = HQuery(2, BooleanFunction.bottom(3))
        top = HQuery(2, BooleanFunction.top(3))
        assert probability(bottom, tid) == 0
        assert probability(top, tid) == 1
        assert probability_float(bottom, tid) == 0.0
        assert probability_float(top, tid) == 1.0

    def test_unsafe_query_rejected_at_plan_build(self):
        phi = BooleanFunction.bottom(4)
        for i in range(4):
            phi = phi | BooleanFunction.variable(i, 4)
        with pytest.raises(UnsafeQueryError):
            build_plan(HQuery(3, phi))

    def test_plan_cache_counts_hits_misses_and_clears(self):
        cache = ExtensionalPlanCache()
        plan, hit = cache.get_or_build(q9())
        assert not hit
        again, hit = cache.get_or_build(q9())
        assert hit and again is plan
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_failed_builds_are_not_cached(self):
        cache = ExtensionalPlanCache()
        phi = BooleanFunction.bottom(4)
        for i in range(4):
            phi = phi | BooleanFunction.variable(i, 4)
        unsafe = HQuery(3, phi)
        for _ in range(2):
            with pytest.raises(UnsafeQueryError):
                cache.get_or_build(unsafe)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)
        assert len(cache) == 0

    def test_plan_cache_evicts_lru(self):
        cache = ExtensionalPlanCache(limit=2)
        queries = []
        for phi in enumerate_monotone_functions(3):
            if not phi.is_bottom():
                query = HQuery(2, phi)
                if is_safe(query):
                    queries.append(query)
            if len(queries) == 3:
                break
        for query in queries:
            cache.get_or_build(query)
        assert len(cache) == 2
        assert cache.stats().evictions == 1


class TestFloatAndBatchBackends:
    def test_float_tracks_exact(self):
        rng = random.Random(11)
        for _ in range(4):
            tid = random_tid(3, 3, 3, rng, tuple_density=0.7)
            exact = probability(q9(), tid)
            assert probability_float(q9(), tid) == pytest.approx(
                float(exact), abs=1e-12
            )

    def test_batch_is_bit_for_float_identical_to_singles(self):
        rng = random.Random(12)
        tids = [
            random_tid(3, 3, 2, rng, tuple_density=0.8) for _ in range(8)
        ]
        plan, _ = plan_for(q9())
        batch = probability_batch(q9(), tids, plan=plan)
        singles = [probability_float(q9(), tid, plan=plan) for tid in tids]
        assert batch == singles

    def test_evaluate_batch_extensional_matches_exact(self):
        rng = random.Random(13)
        tids = [
            random_tid(3, 2, 2, rng, tuple_density=0.7) for _ in range(6)
        ]
        result = evaluate_batch(q9(), tids)
        assert result.engine == "extensional"
        for got, tid in zip(result.probabilities, tids):
            assert got == pytest.approx(
                float(probability(q9(), tid)), abs=1e-12
            )


class TestExtensionalIntensionalEquivalence:
    """The conjecture as an executable test: on safe H+-queries the
    extensional and intensional engines return the *same Fraction*."""

    def test_exhaustive_safe_suite_k2(self):
        tid = random_tid(2, 3, 3, random.Random(21), tuple_density=0.8)
        cache = CompilationCache(limit=256)
        checked = 0
        for phi in enumerate_monotone_functions(3):
            query = HQuery(2, phi)
            if not is_safe(query):
                continue
            extensional = probability(query, tid)
            if phi.is_bottom() or phi.is_top():
                continue  # the compiler handles non-constant phi only
            intensional = evaluate(
                query, tid, method="intensional", cache=cache
            ).probability
            assert extensional == intensional, phi
            checked += 1
        # All nine non-constant safe monotone functions on 3 variables.
        assert checked == 9

    def test_random_safe_suite_k3(self):
        rng = random.Random(23)
        tid = random_tid(3, 3, 3, rng, tuple_density=0.75)
        cache = CompilationCache(limit=64)
        checked = 0
        while checked < 8:
            phi = BooleanFunction.random_monotone(4, rng)
            query = HQuery(3, phi)
            if phi.is_bottom() or phi.is_top() or not is_safe(query):
                continue
            extensional = probability(query, tid)
            intensional = evaluate(
                query, tid, method="intensional", cache=cache
            ).probability
            assert extensional == intensional, phi
            checked += 1


class TestEngineRouting:
    def test_auto_routes_safe_queries_without_compiling(self):
        cache = CompilationCache()
        plan_cache = ExtensionalPlanCache()
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        result = evaluate(q9(), tid, cache=cache, plan_cache=plan_cache)
        assert result.engine == "extensional"
        assert result.compiled is None
        assert result.compile_ms is None
        # No lineage was constructed: the compilation cache never saw
        # the query; the plan cache did.
        assert cache.stats().misses == 0
        assert plan_cache.stats().misses == 1

    def test_auto_exact_equals_brute_force_on_small_instances(self):
        rng = random.Random(31)
        for _ in range(3):
            tid = random_tid(3, 2, 2, rng, tuple_density=0.45)
            if not 0 < len(tid) <= 12:
                continue
            auto = evaluate(q9(), tid)
            assert auto.probability == probability_by_world_enumeration(
                q9(), tid
            )

    def test_degenerate_monotone_routes_extensionally(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        query = HQuery(3, BooleanFunction.variable(1, 4))
        result = evaluate(query, tid)
        assert result.engine == "extensional"
        assert result.probability == probability(query, tid)

"""Tests for circuit serialization round trips."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import Circuit, assert_d_d, probability
from repro.circuits.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    dumps,
    loads,
)
from repro.db.generator import complete_tid
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import q9


class TestRoundTrip:
    def test_small_circuit(self):
        circuit = Circuit()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        circuit.set_output(
            circuit.add_or(
                [
                    circuit.add_and([x, circuit.add_not(y)]),
                    circuit.add_and([circuit.add_not(x), y]),
                ]
            )
        )
        rebuilt = loads(dumps(circuit))
        for mx in (False, True):
            for my in (False, True):
                assignment = {"x": mx, "y": my}
                assert rebuilt.evaluate(assignment) == circuit.evaluate(
                    assignment
                )

    def test_compiled_lineage_round_trip(self):
        # The real use case: persist a compiled lineage, reload it, and
        # keep computing probabilities (with TupleId labels intact).
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        compiled = compile_lineage(q9(), tid.instance)
        rebuilt = loads(dumps(compiled.circuit))
        assert_d_d(rebuilt)
        assert probability(rebuilt, tid.probability_map()) == (
            compiled.probability(tid)
        )

    def test_reload_after_probability_update(self):
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        compiled = compile_lineage(q9(), tid.instance)
        text = dumps(compiled.circuit)
        rebuilt = loads(text)
        some_tuple = tid.instance.tuple_ids()[0]
        tid.set_probability(some_tuple, Fraction(1, 5))
        assert probability(rebuilt, tid.probability_map()) == (
            compiled.probability(tid)
        )

    def test_dead_gates_dropped(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        circuit.add_and([x, circuit.add_var("dead")])  # unreachable
        circuit.set_output(x)
        payload = circuit_to_dict(circuit)
        assert len(payload["gates"]) == 1

    def test_constants_round_trip(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_const(True))
        rebuilt = loads(dumps(circuit))
        assert rebuilt.evaluate({})


class TestValidation:
    def test_version_check(self):
        with pytest.raises(ValueError):
            circuit_from_dict({"format": 999, "gates": [], "output": 0})

    def test_unknown_gate_kind(self):
        payload = {
            "format": 1,
            "gates": [{"kind": "nand", "inputs": []}],
            "output": 0,
        }
        with pytest.raises(ValueError):
            circuit_from_dict(payload)

    def test_unencodable_label(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_var(("tuple", "label")))
        with pytest.raises(TypeError):
            circuit_to_dict(circuit)

    def test_custom_codec(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_var(("pair", 1)))
        payload = circuit_to_dict(
            circuit, encode_label=lambda label: list(label)
        )
        rebuilt = circuit_from_dict(
            payload, decode_label=lambda p: tuple(p)
        )
        assert rebuilt.evaluate({("pair", 1): True})


class TestRandomizedRoundTrips:
    def test_random_dd_circuits(self):
        rng = random.Random(31)
        from repro.core.boolean_function import BooleanFunction
        from repro.pqe.degenerate import degenerate_lineage_circuit

        tid = complete_tid(2, 1, 2)
        for _ in range(5):
            base = BooleanFunction.random(3, rng)
            pos, neg = base.cofactors(1)
            phi = pos | neg
            if phi.depends_on(1):
                continue
            circuit = degenerate_lineage_circuit(phi, tid.instance)
            rebuilt = loads(dumps(circuit))
            assert probability(
                rebuilt, tid.probability_map()
            ) == probability(circuit, tid.probability_map())

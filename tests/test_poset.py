"""Tests for repro.lattice.poset against known Möbius functions."""

from __future__ import annotations

import pytest

from repro.lattice.poset import FinitePoset, divisor_lattice, subset_lattice


class TestValidation:
    def test_rejects_non_antisymmetric(self):
        with pytest.raises(ValueError):
            FinitePoset([1, 2], lambda a, b: True)

    def test_rejects_non_transitive(self):
        order = {(1, 1), (2, 2), (3, 3), (1, 2), (2, 3)}
        with pytest.raises(ValueError):
            FinitePoset([1, 2, 3], lambda a, b: (a, b) in order)

    def test_chain_accepted(self):
        poset = FinitePoset([1, 2, 3], lambda a, b: a <= b)
        assert len(poset) == 3


class TestStructure:
    def test_minimum_maximum(self):
        poset = subset_lattice({0, 1})
        assert poset.minimum() == frozenset()
        assert poset.maximum() == frozenset({0, 1})

    def test_no_minimum(self):
        poset = FinitePoset(
            ["a", "b"], lambda a, b: a == b
        )  # antichain of 2
        with pytest.raises(ValueError):
            poset.minimum()

    def test_covers(self):
        poset = subset_lattice({0, 1})
        assert poset.covers(frozenset(), frozenset({0}))
        assert not poset.covers(frozenset(), frozenset({0, 1}))

    def test_hasse_edges_count(self):
        # Boolean lattice on 3 elements: 3 * 2^2 = 12 covering pairs.
        poset = subset_lattice({0, 1, 2})
        assert len(poset.hasse_edges()) == 12

    def test_down_up_sets(self):
        poset = subset_lattice({0, 1})
        assert len(poset.down_set(frozenset({0}))) == 2
        assert len(poset.up_set(frozenset({0}))) == 2

    def test_subset_lattice_is_lattice(self):
        assert subset_lattice({0, 1}).is_lattice()


class TestMobius:
    def test_subset_lattice_mobius(self):
        # mu(A, B) = (-1)^{|B \ A|} on the Boolean lattice.
        poset = subset_lattice({0, 1, 2})
        top = frozenset({0, 1, 2})
        for element in poset.elements:
            expected = (-1) ** (len(top) - len(element))
            assert poset.mobius(element, top) == expected

    def test_divisor_lattice_mobius(self):
        # Classical number-theoretic Möbius values mu(n) = mu_P(1, n).
        expected = {1: 1, 2: -1, 3: -1, 4: 0, 6: 1, 12: 0}
        poset = divisor_lattice(12)
        for n, value in expected.items():
            assert poset.mobius(1, n) == value

    def test_mobius_requires_leq(self):
        poset = subset_lattice({0, 1})
        with pytest.raises(ValueError):
            poset.mobius(frozenset({0}), frozenset({1}))

    def test_mobius_column_sums_to_zero(self):
        # For any nontrivial interval, sum_{u <= x} mu(u, x) = 0.
        poset = subset_lattice({0, 1, 2})
        column = poset.mobius_column(frozenset({0, 1, 2}))
        assert sum(column.values()) == 0

    def test_mobius_inversion(self):
        poset = subset_lattice({0, 1})
        f = {e: float(len(e)) for e in poset.elements}
        g = {
            e: sum(f[u] for u in poset.down_set(e)) for e in poset.elements
        }
        assert poset.mobius_inversion_check(f, g)

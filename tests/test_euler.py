"""Tests for repro.core.euler: identities, counts, extremes (footnote 6,
Proposition 4.6 facts, Theorem C.2 / Lemma C.1)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import euler
from repro.core.boolean_function import BooleanFunction
from repro.enumeration.monotone import enumerate_monotone_functions


def tables(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1)


class TestIdentities:
    @given(tables(4))
    def test_negation_identity(self, table):
        phi = BooleanFunction(4, table)
        assert euler.euler_of_negation(phi) == -phi.euler_characteristic()

    def test_disjoint_or_additivity(self):
        a = BooleanFunction.from_satisfying(3, [{0}, {0, 1}])
        b = BooleanFunction.from_satisfying(3, [{2}])
        assert euler.euler_of_disjoint_or(a, b) == (
            a.euler_characteristic() + b.euler_characteristic()
        )

    def test_disjoint_or_rejects_overlap(self):
        a = BooleanFunction.from_satisfying(2, [{0}])
        with pytest.raises(ValueError):
            euler.euler_of_disjoint_or(a, a)


class TestZeroEulerCount:
    def test_formula_values(self):
        # Footnote 6: sum_j C(2^k, j)^2 = C(2^{k+1}, 2^k).
        assert euler.count_zero_euler_functions(1) == math.comb(4, 2)
        assert euler.count_zero_euler_functions(2) == math.comb(8, 4)
        assert euler.count_zero_euler_functions(3) == math.comb(16, 8)

    def test_formula_matches_enumeration_k1(self):
        assert euler.count_zero_euler_functions(
            1
        ) == euler.count_zero_euler_functions_by_enumeration(1)

    def test_formula_matches_enumeration_k2(self):
        assert euler.count_zero_euler_functions(
            2
        ) == euler.count_zero_euler_functions_by_enumeration(2)

    def test_rejects_k0(self):
        with pytest.raises(ValueError):
            euler.count_zero_euler_functions(0)


class TestSlices:
    def test_slice_euler_closed_form(self):
        for k in range(1, 6):
            n = k + 1
            for threshold in range(n + 2):
                phi = euler.upper_slice(k, threshold)
                assert (
                    phi.euler_characteristic()
                    == euler.slice_euler_value(k, threshold)
                ), (k, threshold)

    def test_upper_slice_monotone(self):
        for threshold in range(5):
            assert euler.upper_slice(3, threshold).is_monotone()


class TestMonotoneExtremes:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_extremes_match_exhaustive(self, k):
        values = [
            phi.euler_characteristic()
            for phi in enumerate_monotone_functions(k + 1)
        ]
        assert euler.monotone_euler_extremes(k) == (min(values), max(values))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_max_abs_matches_exhaustive(self, k):
        values = [
            abs(phi.euler_characteristic())
            for phi in enumerate_monotone_functions(k + 1)
        ]
        assert euler.max_monotone_euler(k) == max(values)

    def test_bjorner_kalai_maximizer(self):
        for k in (1, 2, 3, 4):
            phi = euler.bjorner_kalai_maximizer(k)
            assert phi.is_monotone()
            assert abs(phi.euler_characteristic()) == euler.max_monotone_euler(k)

    def test_max_euler_function_unreachable(self):
        # Section 6.1: e(phi_maxEuler) = 2^k exceeds the monotone max.
        from repro.core.zoo import phi_max_euler

        for k in (2, 3, 4):
            low, high = euler.monotone_euler_extremes(k)
            assert phi_max_euler(k).euler_characteristic() == 1 << k
            assert 1 << k > high


class TestLemmaC1Construction:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_every_value_achievable(self, k):
        for target in euler.achievable_monotone_euler_values(k):
            phi = euler.monotone_function_with_euler(k, target)
            assert phi.is_monotone()
            assert phi.euler_characteristic() == target

    def test_rejects_unachievable(self):
        low, high = euler.monotone_euler_extremes(2)
        with pytest.raises(ValueError):
            euler.monotone_function_with_euler(2, high + 1)

    def test_k4_spot_checks(self):
        rng = random.Random(4)
        low, high = euler.monotone_euler_extremes(4)
        for target in rng.sample(range(low, high + 1), 5):
            phi = euler.monotone_function_with_euler(4, target)
            assert phi.is_monotone()
            assert phi.euler_characteristic() == target

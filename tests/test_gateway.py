"""Tests for the asyncio JSON-lines gateway (:mod:`repro.serving.gateway`).

A real TCP client (blocking sockets, newline-delimited JSON) against a
:class:`GatewayServer` running on its background event loop: protocol
round trips, float parity with the direct engine, typed errors on the
wire, tenant quotas, and both service backends behind one gateway.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.engine import BRUTE_FORCE_LIMIT, evaluate_batch
from repro.queries.hqueries import HQuery
from repro.serving import GatewayServer, ShardedService
from repro.serving.stats import ServiceStats

pytestmark = pytest.mark.filterwarnings("error")

#: The docstring query: k=1, phi = x0 AND x1 (truth table 0b1000) — the
#: canonical hard H_1, which brute-forces on the tiny reference TID.
CONJ_QUERY = HQuery(1, BooleanFunction(2, 8))
CONJUNCTION = {"k": 1, "nvars": 2, "table": 8}

#: k=1, phi = x0 (truth table 0b1010) — safe monotone, extensional.
SAFE_QUERY = HQuery(1, BooleanFunction(2, 10))
SAFE = {"k": 1, "nvars": 2, "table": 10}


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def query_payload(query: HQuery) -> dict:
    return {"k": query.k, "nvars": query.phi.nvars, "table": query.phi.table}


def facts_of(tid) -> list:
    """A TID's facts in the gateway's wire form (exact rationals)."""
    return [
        [
            t.relation,
            list(t.values),
            [
                tid.probability_of(t).numerator,
                tid.probability_of(t).denominator,
            ],
        ]
        for t in tid.instance.tuple_ids()
    ]


class Client:
    """A blocking JSON-lines client socket."""

    def __init__(self, port: int):
        self._sock = socket.create_connection(("127.0.0.1", port))
        self._file = self._sock.makefile("rw")

    def send(self, message: dict) -> None:
        self._file.write(json.dumps(message) + "\n")
        self._file.flush()

    def send_raw(self, line: str) -> None:
        self._file.write(line + "\n")
        self._file.flush()

    def recv(self) -> dict:
        return json.loads(self._file.readline())

    def rpc(self, message: dict) -> dict:
        self.send(message)
        return self.recv()

    def close(self) -> None:
        self._sock.close()


def reference_tid():
    """The TID matching :data:`REGISTER_FACTS`, built directly."""
    from repro.db.relation import Instance
    from repro.db.tid import TupleIndependentDatabase

    instance = Instance()
    tid = TupleIndependentDatabase(instance)
    a = instance.add("R", (1,))
    tid.set_probability(a, Fraction(1, 2))
    instance.add("S1", (1, 2))
    b = instance.add("T", (2,))
    tid.set_probability(b, Fraction(2, 3))
    return tid


REGISTER_FACTS = [
    ["R", [1], [1, 2]],
    ["S1", [1, 2]],
    ["T", [2], [2, 3]],
]


@pytest.fixture()
def gateway_backend(request):
    backend = getattr(request, "param", "threads")
    service = ShardedService(shards=2, backend=backend)
    server = GatewayServer(service)
    server.start()
    try:
        yield server
    finally:
        server.stop()
        service.stop(wait=True)


class TestProtocol:
    def test_ping(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc({"op": "ping", "id": 41})
            assert reply == {"id": 41, "ok": True, "pong": True}
        finally:
            client.close()

    def test_register_reports_shard_and_size(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            assert reply["ok"]
            assert reply["instance"] == "orders"
            assert reply["tuples"] == 3
            assert 0 <= reply["shard"] < 2
        finally:
            client.close()

    def test_query_matches_direct_engine_float(self, gateway_backend):
        reference = evaluate_batch(CONJ_QUERY, [reference_tid()])
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"]
            response = reply["response"]
            assert response["probability"] == reference.probabilities[0]
            assert response["engine"] == "brute_force"
            safe_reference = evaluate_batch(SAFE_QUERY, [reference_tid()])
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "orders",
                    "query": SAFE,
                }
            )
            assert reply["ok"]
            response = reply["response"]
            assert (
                response["probability"] == safe_reference.probabilities[0]
            )
            assert response["engine"] == "extensional"
        finally:
            client.close()

    def test_budgeted_hard_query_is_deterministic(self, gateway_backend):
        # A hard query on a large instance routes to seeded sampling;
        # the same (seed, budget) over the wire replays the same
        # estimate and error bar.
        large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        assert len(large_hard) > BRUTE_FORCE_LIMIT
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "big",
                    "facts": facts_of(large_hard),
                }
            )
            replies = [
                client.rpc(
                    {
                        "op": "query",
                        "id": 2 + i,
                        "instance": "big",
                        "query": query_payload(hard_full_disjunction(3)),
                        "budget": {"epsilon": 0.1, "seed": 11},
                    }
                )
                for i in range(2)
            ]
            assert all(reply["ok"] for reply in replies)
            first, second = (reply["response"] for reply in replies)
            assert first["engine"] == "karp_luby"
            assert first["samples"] > 0
            assert first["half_width"] > 0.0
            assert first["probability"] == second["probability"]
            assert first["half_width"] == second["half_width"]
            assert first["samples"] == second["samples"]
        finally:
            client.close()

    def test_stats_round_trip(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": SAFE,
                }
            )
            reply = client.rpc({"op": "stats", "id": 3})
            assert reply["ok"]
            stats = ServiceStats.from_payload(reply["stats"])
            assert stats.requests == 1
            assert stats.engines == {"extensional": 1}
            assert len(stats.shards) == 2
        finally:
            client.close()


@pytest.mark.parametrize(
    "gateway_backend", ["processes"], indirect=True
)
class TestProcessBackendGateway:
    def test_full_round_trip_over_worker_processes(self, gateway_backend):
        reference = evaluate_batch(CONJ_QUERY, [reference_tid()])
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"]
            assert (
                reply["response"]["probability"]
                == reference.probabilities[0]
            )
            stats = ServiceStats.from_payload(
                client.rpc({"op": "stats", "id": 3})["stats"]
            )
            assert stats.requests == 1
        finally:
            client.close()


class TestTypedErrors:
    def test_unknown_instance(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 5,
                    "instance": "nope",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"] is False
            assert reply["error"] == "KeyError"
            assert "register" in reply["message"]
            assert reply["id"] == 5
        finally:
            client.close()

    def test_malformed_json_still_gets_a_reply(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            client.send_raw("{not json")
            reply = client.recv()
            assert reply["ok"] is False
            assert reply["error"] == "JSONDecodeError"
            assert reply["id"] is None
            # The connection survives a bad line.
            assert client.rpc({"op": "ping", "id": 6})["pong"]
        finally:
            client.close()

    def test_unknown_op_and_unknown_budget_field(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc({"op": "explode", "id": 7})
            assert reply["error"] == "ValueError"
            client.rpc(
                {
                    "op": "register",
                    "id": 8,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 9,
                    "instance": "orders",
                    "query": CONJUNCTION,
                    "budget": {"epsilon": 0.1, "turbo": True},
                }
            )
            assert reply["error"] == "ValueError"
            assert "turbo" in reply["message"]
        finally:
            client.close()


class TestQuotas:
    def test_tenant_quota_rejects_second_inflight_request(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service, default_tenant_quota=1)
        server.start()
        slow = Client(server.port)
        fast = Client(server.port)
        try:
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            slow.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            slow.rpc(
                {
                    "op": "register",
                    "id": 2,
                    "instance": "big",
                    "facts": facts_of(large_hard),
                }
            )
            # Occupy tenant "acme"'s whole quota with a slow sampled
            # query (a large fixed-count budget), then race a second
            # request in on another connection.
            slow.send(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "tenant": "acme",
                    "budget": {
                        "epsilon": 0.001,
                        "min_samples": 200_000,
                        "max_samples": 200_000,
                        "seed": 1,
                        "adaptive": False,
                    },
                }
            )
            deadline = time.monotonic() + 10
            rejected = None
            while time.monotonic() < deadline:
                reply = fast.rpc(
                    {
                        "op": "query",
                        "id": 3,
                        "instance": "orders",
                        "query": CONJUNCTION,
                        "tenant": "acme",
                    }
                )
                if not reply["ok"]:
                    rejected = reply
                    break
                time.sleep(0.01)  # slow query not admitted yet; retry
            assert rejected is not None, "quota never engaged"
            assert rejected["error"] == "TenantQuotaExceeded"
            # Another tenant is not affected by acme's quota.
            other = fast.rpc(
                {
                    "op": "query",
                    "id": 4,
                    "instance": "orders",
                    "query": CONJUNCTION,
                    "tenant": "zeta",
                }
            )
            assert other["ok"]
            # The slow request itself completes fine.
            assert slow.recv()["ok"]
        finally:
            slow.close()
            fast.close()
            server.stop()
            service.stop(wait=True)


class TestLifecycle:
    def test_context_manager_and_concurrent_clients(self):
        service = ShardedService(shards=2)
        reference = evaluate_batch(CONJ_QUERY, [reference_tid()])
        errors: list[BaseException] = []
        with GatewayServer(service) as server:
            setup = Client(server.port)
            setup.rpc(
                {
                    "op": "register",
                    "id": 0,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            setup.close()

            def hammer():
                try:
                    client = Client(server.port)
                    for i in range(8):
                        reply = client.rpc(
                            {
                                "op": "query",
                                "id": i,
                                "instance": "orders",
                                "query": CONJUNCTION,
                            }
                        )
                        assert reply["ok"]
                        assert (
                            reply["response"]["probability"]
                            == reference.probabilities[0]
                        )
                    client.close()
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        service.stop(wait=True)

    def test_stop_with_open_connection_is_clean(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        assert client.rpc({"op": "ping", "id": 0})["pong"]
        server.stop()  # connection still open — must not hang or error
        service.stop(wait=True)
        client.close()

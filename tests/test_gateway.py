"""Tests for the asyncio JSON-lines gateway (:mod:`repro.serving.gateway`).

A real TCP client (blocking sockets, newline-delimited JSON) against a
:class:`GatewayServer` running on its background event loop: protocol
round trips, float parity with the direct engine, typed errors on the
wire, tenant quotas, and both service backends behind one gateway.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.engine import BRUTE_FORCE_LIMIT, evaluate_batch
from repro.queries.hqueries import HQuery
from repro.serving import GatewayServer, ShardedService
from repro.serving.stats import ServiceStats

pytestmark = pytest.mark.filterwarnings("error")

#: The docstring query: k=1, phi = x0 AND x1 (truth table 0b1000) — the
#: canonical hard H_1, which brute-forces on the tiny reference TID.
CONJ_QUERY = HQuery(1, BooleanFunction(2, 8))
CONJUNCTION = {"k": 1, "nvars": 2, "table": 8}

#: k=1, phi = x0 (truth table 0b1010) — safe monotone, extensional.
SAFE_QUERY = HQuery(1, BooleanFunction(2, 10))
SAFE = {"k": 1, "nvars": 2, "table": 10}


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def query_payload(query: HQuery) -> dict:
    return {"k": query.k, "nvars": query.phi.nvars, "table": query.phi.table}


def facts_of(tid) -> list:
    """A TID's facts in the gateway's wire form (exact rationals)."""
    return [
        [
            t.relation,
            list(t.values),
            [
                tid.probability_of(t).numerator,
                tid.probability_of(t).denominator,
            ],
        ]
        for t in tid.instance.tuple_ids()
    ]


class Client:
    """A blocking JSON-lines client socket."""

    def __init__(self, port: int):
        self._sock = socket.create_connection(("127.0.0.1", port))
        self._file = self._sock.makefile("rw")

    def send(self, message: dict) -> None:
        self._file.write(json.dumps(message) + "\n")
        self._file.flush()

    def send_raw(self, line: str) -> None:
        self._file.write(line + "\n")
        self._file.flush()

    def recv(self) -> dict:
        return json.loads(self._file.readline())

    def rpc(self, message: dict) -> dict:
        self.send(message)
        return self.recv()

    def close(self) -> None:
        # ``makefile`` holds its own reference to the socket: both must
        # close before the peer sees EOF.
        self._file.close()
        self._sock.close()


def reference_tid():
    """The TID matching :data:`REGISTER_FACTS`, built directly."""
    from repro.db.relation import Instance
    from repro.db.tid import TupleIndependentDatabase

    instance = Instance()
    tid = TupleIndependentDatabase(instance)
    a = instance.add("R", (1,))
    tid.set_probability(a, Fraction(1, 2))
    instance.add("S1", (1, 2))
    b = instance.add("T", (2,))
    tid.set_probability(b, Fraction(2, 3))
    return tid


REGISTER_FACTS = [
    ["R", [1], [1, 2]],
    ["S1", [1, 2]],
    ["T", [2], [2, 3]],
]


@pytest.fixture()
def gateway_backend(request):
    backend = getattr(request, "param", "threads")
    service = ShardedService(shards=2, backend=backend)
    server = GatewayServer(service)
    server.start()
    try:
        yield server
    finally:
        server.stop()
        service.stop(wait=True)


class TestProtocol:
    def test_ping(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc({"op": "ping", "id": 41})
            assert reply == {"id": 41, "ok": True, "pong": True}
        finally:
            client.close()

    def test_register_reports_shard_and_size(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            assert reply["ok"]
            assert reply["instance"] == "orders"
            assert reply["tuples"] == 3
            assert 0 <= reply["shard"] < 2
        finally:
            client.close()

    def test_query_matches_direct_engine_float(self, gateway_backend):
        reference = evaluate_batch(CONJ_QUERY, [reference_tid()])
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"]
            response = reply["response"]
            assert response["probability"] == reference.probabilities[0]
            assert response["engine"] == "brute_force"
            safe_reference = evaluate_batch(SAFE_QUERY, [reference_tid()])
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "orders",
                    "query": SAFE,
                }
            )
            assert reply["ok"]
            response = reply["response"]
            assert (
                response["probability"] == safe_reference.probabilities[0]
            )
            assert response["engine"] == "extensional"
        finally:
            client.close()

    def test_budgeted_hard_query_is_deterministic(self, gateway_backend):
        # A hard query on a large instance routes to seeded sampling;
        # the same (seed, budget) over the wire replays the same
        # estimate and error bar.
        large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        assert len(large_hard) > BRUTE_FORCE_LIMIT
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "big",
                    "facts": facts_of(large_hard),
                }
            )
            replies = [
                client.rpc(
                    {
                        "op": "query",
                        "id": 2 + i,
                        "instance": "big",
                        "query": query_payload(hard_full_disjunction(3)),
                        "budget": {"epsilon": 0.1, "seed": 11},
                    }
                )
                for i in range(2)
            ]
            assert all(reply["ok"] for reply in replies)
            first, second = (reply["response"] for reply in replies)
            assert first["engine"] == "karp_luby"
            assert first["samples"] > 0
            assert first["half_width"] > 0.0
            assert first["probability"] == second["probability"]
            assert first["half_width"] == second["half_width"]
            assert first["samples"] == second["samples"]
        finally:
            client.close()

    def test_stats_round_trip(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": SAFE,
                }
            )
            reply = client.rpc({"op": "stats", "id": 3})
            assert reply["ok"]
            stats = ServiceStats.from_payload(reply["stats"])
            assert stats.requests == 1
            assert stats.engines == {"extensional": 1}
            assert len(stats.shards) == 2
        finally:
            client.close()


@pytest.mark.parametrize(
    "gateway_backend", ["processes"], indirect=True
)
class TestProcessBackendGateway:
    def test_full_round_trip_over_worker_processes(self, gateway_backend):
        reference = evaluate_batch(CONJ_QUERY, [reference_tid()])
        client = Client(gateway_backend.port)
        try:
            client.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"]
            assert (
                reply["response"]["probability"]
                == reference.probabilities[0]
            )
            stats = ServiceStats.from_payload(
                client.rpc({"op": "stats", "id": 3})["stats"]
            )
            assert stats.requests == 1
        finally:
            client.close()


class TestTypedErrors:
    def test_unknown_instance(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 5,
                    "instance": "nope",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"] is False
            assert reply["error"] == "KeyError"
            assert "register" in reply["message"]
            assert reply["id"] == 5
        finally:
            client.close()

    def test_malformed_json_still_gets_a_reply(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            client.send_raw("{not json")
            reply = client.recv()
            assert reply["ok"] is False
            assert reply["error"] == "JSONDecodeError"
            assert reply["id"] is None
            # The connection survives a bad line.
            assert client.rpc({"op": "ping", "id": 6})["pong"]
        finally:
            client.close()

    def test_unknown_op_and_unknown_budget_field(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            reply = client.rpc({"op": "explode", "id": 7})
            assert reply["error"] == "ValueError"
            client.rpc(
                {
                    "op": "register",
                    "id": 8,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 9,
                    "instance": "orders",
                    "query": CONJUNCTION,
                    "budget": {"epsilon": 0.1, "turbo": True},
                }
            )
            assert reply["error"] == "ValueError"
            assert "turbo" in reply["message"]
        finally:
            client.close()


class TestQuotas:
    def test_tenant_quota_rejects_second_inflight_request(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service, default_tenant_quota=1)
        server.start()
        slow = Client(server.port)
        fast = Client(server.port)
        try:
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            slow.rpc(
                {
                    "op": "register",
                    "id": 1,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            slow.rpc(
                {
                    "op": "register",
                    "id": 2,
                    "instance": "big",
                    "facts": facts_of(large_hard),
                }
            )
            # Occupy tenant "acme"'s whole quota with a slow sampled
            # query (a large fixed-count budget), then race a second
            # request in on another connection.
            slow.send(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "tenant": "acme",
                    "budget": {
                        "epsilon": 0.001,
                        "min_samples": 200_000,
                        "max_samples": 200_000,
                        "seed": 1,
                        "adaptive": False,
                    },
                }
            )
            deadline = time.monotonic() + 10
            rejected = None
            while time.monotonic() < deadline:
                reply = fast.rpc(
                    {
                        "op": "query",
                        "id": 3,
                        "instance": "orders",
                        "query": CONJUNCTION,
                        "tenant": "acme",
                    }
                )
                if not reply["ok"]:
                    rejected = reply
                    break
                time.sleep(0.01)  # slow query not admitted yet; retry
            assert rejected is not None, "quota never engaged"
            assert rejected["error"] == "TenantQuotaExceeded"
            # Another tenant is not affected by acme's quota.
            other = fast.rpc(
                {
                    "op": "query",
                    "id": 4,
                    "instance": "orders",
                    "query": CONJUNCTION,
                    "tenant": "zeta",
                }
            )
            assert other["ok"]
            # The slow request itself completes fine.
            assert slow.recv()["ok"]
        finally:
            slow.close()
            fast.close()
            server.stop()
            service.stop(wait=True)


class TestLifecycle:
    def test_context_manager_and_concurrent_clients(self):
        service = ShardedService(shards=2)
        reference = evaluate_batch(CONJ_QUERY, [reference_tid()])
        errors: list[BaseException] = []
        with GatewayServer(service) as server:
            setup = Client(server.port)
            setup.rpc(
                {
                    "op": "register",
                    "id": 0,
                    "instance": "orders",
                    "facts": REGISTER_FACTS,
                }
            )
            setup.close()

            def hammer():
                try:
                    client = Client(server.port)
                    for i in range(8):
                        reply = client.rpc(
                            {
                                "op": "query",
                                "id": i,
                                "instance": "orders",
                                "query": CONJUNCTION,
                            }
                        )
                        assert reply["ok"]
                        assert (
                            reply["response"]["probability"]
                            == reference.probabilities[0]
                        )
                    client.close()
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        service.stop(wait=True)

    def test_stop_with_open_connection_is_clean(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        assert client.rpc({"op": "ping", "id": 0})["pong"]
        server.stop()  # connection still open — must not hang or error
        service.stop(wait=True)
        client.close()


#: REGISTER_FACTS with R's probability changed — different content
#: fingerprint, different answers: the replacement test pair.
REPLACED_FACTS = [
    ["R", [1], [1, 3]],
    ["S1", [1, 2]],
    ["T", [2], [2, 3]],
]

BIG_BUDGET = {
    "epsilon": 0.001,
    "min_samples": 150_000,
    "max_samples": 150_000,
    "seed": 1,
    "adaptive": False,
}


def replaced_tid():
    """The TID matching :data:`REPLACED_FACTS`, built directly."""
    from repro.db.relation import Instance
    from repro.db.tid import TupleIndependentDatabase

    instance = Instance()
    tid = TupleIndependentDatabase(instance)
    a = instance.add("R", (1,))
    tid.set_probability(a, Fraction(1, 3))
    instance.add("S1", (1, 2))
    b = instance.add("T", (2,))
    tid.set_probability(b, Fraction(2, 3))
    return tid


def register(client, name, facts, message_id=1, **extra):
    reply = client.rpc(
        {
            "op": "register",
            "id": message_id,
            "instance": name,
            "facts": facts,
            **extra,
        }
    )
    assert reply["ok"], reply
    return reply


def gateway_payload(client) -> dict:
    reply = client.rpc({"op": "stats", "id": 999})
    assert reply["ok"]
    return reply["gateway"]


def sans_latency(response: dict) -> dict:
    """A response payload without its wall-clock field — everything
    else is content-determined and must be bit-identical."""
    return {k: v for k, v in response.items() if k != "latency_ms"}


@pytest.mark.parametrize(
    "gateway_backend", ["threads", "processes"], indirect=True
)
class TestJournalRecovery:
    def test_crash_restart_recovers_bit_identically(
        self, gateway_backend, tmp_path
    ):
        # A gateway with a journal, killed without warning: the restart
        # replays the journal, and every answer — exact and sampled —
        # is the bit-identical float the pre-crash gateway served.
        service = gateway_backend._service
        server = GatewayServer(
            service, journal_path=tmp_path / "edge.journal"
        )
        server.start()
        try:
            client = Client(server.port)
            first = register(client, "orders", REGISTER_FACTS)
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            register(client, "big", facts_of(large_hard), message_id=2)
            exact = client.rpc(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            sampled = client.rpc(
                {
                    "op": "query",
                    "id": 4,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "budget": {"epsilon": 0.1, "seed": 11},
                }
            )
            assert exact["ok"] and sampled["ok"]
            client.close()

            server.restart(graceful=False)  # SIGKILL-equivalent

            client = Client(server.port)
            # No re-registration: the journal is the only recovery path.
            exact_after = client.rpc(
                {
                    "op": "query",
                    "id": 5,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            sampled_after = client.rpc(
                {
                    "op": "query",
                    "id": 6,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "budget": {"epsilon": 0.1, "seed": 11},
                }
            )
            assert exact_after["ok"] and sampled_after["ok"]
            assert sans_latency(exact_after["response"]) == sans_latency(
                exact["response"]
            )
            assert sans_latency(
                sampled_after["response"]
            ) == sans_latency(sampled["response"])
            # Same content, same shard_key, same ring: re-registering
            # after recovery is an idempotent no-op on the same shard.
            again = register(
                client, "orders", REGISTER_FACTS, message_id=7
            )
            assert again["replaced"] is False
            assert again["shard"] == first["shard"]
            assert again["placement"] == first["placement"]
            payload = gateway_payload(client)
            assert payload["replayed_instances"] == 2
            assert payload["journal"]["replayed"] == 2
            client.close()
        finally:
            server.stop()

    def test_gateway_stats_payload_round_trip(
        self, gateway_backend, tmp_path
    ):
        from repro.serving.stats import GatewayStats

        service = gateway_backend._service
        server = GatewayServer(
            service, journal_path=tmp_path / "edge.journal"
        )
        server.start()
        try:
            client = Client(server.port)
            register(client, "orders", REGISTER_FACTS)
            client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": SAFE,
                    "idempotency_key": "k1",
                }
            )
            payload = gateway_payload(client)
            stats = GatewayStats.from_payload(payload)
            assert stats.to_payload() == payload
            assert stats.requests == 1
            assert stats.journal.appended == 1
            assert stats.connections >= 1
            client.close()
        finally:
            server.stop()


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new_typed(self):
        # The ladder: accepted work finishes under its own deadline, a
        # pre-existing connection gets typed GatewayDraining for new
        # work, new connections cannot be opened, and the drain reports
        # clean because nothing in flight was cancelled.
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        slow = Client(server.port)
        other = Client(server.port)
        try:
            register(slow, "orders", REGISTER_FACTS)
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            register(slow, "big", facts_of(large_hard), message_id=2)
            slow.send(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "budget": BIG_BUDGET,
                }
            )
            time.sleep(0.2)  # let the slow query be admitted
            drained: dict = {}

            def drain():
                drained["clean"] = server.drain(grace_ms=60_000.0)

            drainer = threading.Thread(target=drain)
            drainer.start()
            # The draining flag flips on the loop promptly; poll the
            # pre-existing connection until the typed rejection lands.
            deadline = time.monotonic() + 10
            rejection = None
            while time.monotonic() < deadline:
                reply = other.rpc(
                    {
                        "op": "query",
                        "id": 4,
                        "instance": "orders",
                        "query": CONJUNCTION,
                    }
                )
                if not reply["ok"]:
                    rejection = reply
                    break
                time.sleep(0.01)
            assert rejection is not None, "draining never engaged"
            assert rejection["error"] == "GatewayDraining"
            # Registers are rejected the same way while draining.
            reject_register = other.rpc(
                {
                    "op": "register",
                    "id": 5,
                    "instance": "late",
                    "facts": REGISTER_FACTS,
                }
            )
            assert reject_register["error"] == "GatewayDraining"
            # The in-flight slow query still completes with an answer.
            finished = slow.recv()
            assert finished["ok"], finished
            drainer.join(timeout=60)
            assert drained["clean"] is True
            # The listener is gone: no new connection can be opened.
            with pytest.raises(OSError):
                socket.create_connection(
                    ("127.0.0.1", server.port), timeout=0.5
                )
        finally:
            slow.close()
            other.close()
            server.stop()
            service.stop(wait=True)

    def test_drain_with_expired_grace_reports_dirty(self):
        # grace_ms=0 with work in flight: the gateway closes anyway and
        # honestly reports the drain was not clean.
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        try:
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            register(client, "big", facts_of(large_hard))
            client.send(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "budget": BIG_BUDGET,
                }
            )
            time.sleep(0.2)
            assert server.drain(grace_ms=0.0) is False
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_drain_idle_gateway_is_clean_even_with_zero_grace(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        try:
            assert server.drain(grace_ms=0.0) is True
        finally:
            server.stop()
            service.stop(wait=True)


class TestIdempotency:
    def test_completed_retry_replays_recorded_reply_verbatim(self):
        service = ShardedService(shards=2)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        try:
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            register(client, "big", facts_of(large_hard))
            request = {
                "op": "query",
                "id": 2,
                "instance": "big",
                "query": query_payload(hard_full_disjunction(3)),
                "budget": {"epsilon": 0.1, "seed": 11},
                "idempotency_key": "req-1",
            }
            first = client.rpc(request)
            assert first["ok"]
            retry = client.rpc({**request, "id": 3})
            assert retry["ok"]
            assert retry["id"] == 3
            assert retry["response"] == first["response"]
            # One execution, one replay: the service saw one request.
            stats_reply = client.rpc({"op": "stats", "id": 4})
            assert (
                ServiceStats.from_payload(stats_reply["stats"]).requests
                == 1
            )
            idem = stats_reply["gateway"]["idempotency"]
            assert idem["hits"] == 1
            assert idem["joins"] == 0
            assert idem["entries"] == 1
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_inflight_retry_joins_the_same_execution(self):
        # A retry racing the original joins the same sampling sweep —
        # no duplicate submission, and both replies carry the same
        # bit-identical floats.
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        first = Client(server.port)
        second = Client(server.port)
        try:
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            register(first, "big", facts_of(large_hard))
            request = {
                "op": "query",
                "id": 2,
                "instance": "big",
                "query": query_payload(hard_full_disjunction(3)),
                "budget": BIG_BUDGET,
                "idempotency_key": "req-join",
            }
            first.send(request)
            time.sleep(0.2)  # the original is registered in the LRU
            joined = second.rpc({**request, "id": 3})
            original = first.recv()
            assert original["ok"] and joined["ok"]
            assert joined["response"] == original["response"]
            stats_reply = first.rpc({"op": "stats", "id": 4})
            assert (
                ServiceStats.from_payload(stats_reply["stats"]).requests
                == 1
            )
            assert stats_reply["gateway"]["idempotency"]["joins"] == 1
        finally:
            first.close()
            second.close()
            server.stop()
            service.stop(wait=True)

    def test_typed_error_outcome_is_recorded_and_replayed(self):
        # An admitted request's outcome is its outcome — even when that
        # outcome is a typed error.  The retry replays it rather than
        # executing a second time.
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        try:
            register(client, "orders", REGISTER_FACTS)
            request = {
                "op": "query",
                "id": 2,
                "instance": "orders",
                "query": CONJUNCTION,
                "deadline_ms": 0.0001,
                "idempotency_key": "req-dead",
            }
            first = client.rpc(request)
            assert first["ok"] is False
            assert first["error"] == "DeadlineExceeded"
            retry = client.rpc({**request, "id": 3})
            assert retry["error"] == first["error"]
            assert retry["message"] == first["message"]
            assert gateway_payload(client)["idempotency"]["hits"] == 1
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_rejected_requests_are_not_recorded(self):
        # A pre-admission failure (unknown instance) must not poison
        # the key: once the instance exists, the retry succeeds.
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        try:
            request = {
                "op": "query",
                "id": 1,
                "instance": "orders",
                "query": CONJUNCTION,
                "idempotency_key": "req-early",
            }
            early = client.rpc(request)
            assert early["error"] == "KeyError"
            register(client, "orders", REGISTER_FACTS, message_id=2)
            retry = client.rpc({**request, "id": 3})
            assert retry["ok"], retry
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_lru_eviction_bounds_the_response_journal(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service, idempotency_capacity=2)
        server.start()
        client = Client(server.port)
        try:
            register(client, "orders", REGISTER_FACTS)
            for i, key in enumerate(["k1", "k2", "k3"]):
                reply = client.rpc(
                    {
                        "op": "query",
                        "id": 10 + i,
                        "instance": "orders",
                        "query": CONJUNCTION,
                        "idempotency_key": key,
                    }
                )
                assert reply["ok"]
            idem = gateway_payload(client)["idempotency"]
            assert idem["entries"] == 2
            assert idem["evictions"] == 1
            # k1 was evicted: the retry re-executes instead of replaying.
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 20,
                    "instance": "orders",
                    "query": CONJUNCTION,
                    "idempotency_key": "k1",
                }
            )
            assert reply["ok"]
            stats_reply = client.rpc({"op": "stats", "id": 21})
            assert (
                ServiceStats.from_payload(stats_reply["stats"]).requests
                == 4
            )
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_bad_idempotency_key_is_a_typed_error(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        try:
            register(client, "orders", REGISTER_FACTS)
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": CONJUNCTION,
                    "idempotency_key": 7,
                }
            )
            assert reply["error"] == "ValueError"
            assert "idempotency_key" in reply["message"]
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)


class TestReRegister:
    def test_same_content_is_idempotent(self, gateway_backend):
        client = Client(gateway_backend.port)
        try:
            first = register(client, "orders", REGISTER_FACTS)
            again = register(client, "orders", REGISTER_FACTS, 2)
            assert again["replaced"] is False
            assert again["shard"] == first["shard"]
            assert again["placement"] == first["placement"]
            # The catalog did not grow a phantom second registration.
            stats_reply = client.rpc({"op": "stats", "id": 3})
            stats = ServiceStats.from_payload(stats_reply["stats"])
            assert sum(s.instances for s in stats.shards) == 1
        finally:
            client.close()

    def test_replicas_raise_on_reregister_widens_the_ring(
        self, gateway_backend
    ):
        client = Client(gateway_backend.port)
        try:
            first = register(client, "orders", REGISTER_FACTS)
            assert len(first["placement"]) == 1
            raised = register(
                client, "orders", REGISTER_FACTS, 2, replicas=2
            )
            assert raised["replaced"] is False
            # Prefix-stable ring: the original placement is the prefix.
            assert raised["placement"][0] == first["placement"][0]
            assert len(raised["placement"]) == 2
        finally:
            client.close()

    def test_different_content_replaces_atomically(self, gateway_backend):
        reference = evaluate_batch(CONJ_QUERY, [replaced_tid()])
        client = Client(gateway_backend.port)
        try:
            register(client, "orders", REGISTER_FACTS)
            replaced = register(client, "orders", REPLACED_FACTS, 2)
            assert replaced["replaced"] is True
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"]
            assert (
                reply["response"]["probability"]
                == reference.probabilities[0]
            )
            # The superseded registration was released, not leaked.
            stats_reply = client.rpc({"op": "stats", "id": 4})
            stats = ServiceStats.from_payload(stats_reply["stats"])
            assert sum(s.instances for s in stats.shards) == 1
        finally:
            client.close()

    def test_shared_content_survives_one_name_replacing(
        self, gateway_backend
    ):
        # Two names serving the same content share one registration;
        # replacing one name must not pull it out from under the other.
        client = Client(gateway_backend.port)
        try:
            register(client, "orders", REGISTER_FACTS)
            register(client, "mirror", REGISTER_FACTS, 2)
            register(client, "orders", REPLACED_FACTS, 3)
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 4,
                    "instance": "mirror",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"], reply
        finally:
            client.close()

    def test_replacement_survives_crash_restart_via_journal(
        self, tmp_path
    ):
        # Register, replace, crash: replay applies both records in
        # order and recovers the *replaced* catalog.
        reference = evaluate_batch(CONJ_QUERY, [replaced_tid()])
        service = ShardedService(shards=2)
        server = GatewayServer(
            service, journal_path=tmp_path / "edge.journal"
        )
        server.start()
        try:
            client = Client(server.port)
            register(client, "orders", REGISTER_FACTS)
            register(client, "orders", REPLACED_FACTS, 2)
            assert gateway_payload(client)["journal"]["dead"] == 1
            client.close()

            server.restart(graceful=False)

            client = Client(server.port)
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 3,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"]
            assert (
                reply["response"]["probability"]
                == reference.probabilities[0]
            )
            client.close()
        finally:
            server.stop()
            service.stop(wait=True)


class TestConnectionEdges:
    def test_oversized_line_gets_typed_reply_then_close(
        self, gateway_backend
    ):
        from repro.serving.gateway import _LINE_LIMIT

        client = Client(gateway_backend.port)
        try:
            padding = "a" * _LINE_LIMIT
            client.send_raw(
                '{"op": "ping", "id": 1, "pad": "' + padding + '"}'
            )
            reply = client.recv()
            assert reply["ok"] is False
            assert reply["error"] == "LineTooLong"
            # Framing is unrecoverable: the gateway closes after the
            # typed reply.
            assert client._file.readline() == ""
        finally:
            client.close()

    def test_idle_connection_times_out_typed(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service, idle_timeout_s=0.2)
        server.start()
        client = Client(server.port)
        try:
            assert client.rpc({"op": "ping", "id": 1})["pong"]
            reply = client.recv()  # no request sent: wait for the axe
            assert reply["ok"] is False
            assert reply["error"] == "IdleTimeout"
            assert client._file.readline() == ""
            observer = Client(server.port)
            assert gateway_payload(observer)["idle_timeouts"] == 1
            observer.close()
        finally:
            client.close()
            server.stop()
            service.stop(wait=True)

    def test_connection_cap_rejects_typed_then_recovers(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service, max_connections=1)
        server.start()
        first = Client(server.port)
        try:
            assert first.rpc({"op": "ping", "id": 1})["pong"]
            second = Client(server.port)
            reply = second.recv()
            assert reply["ok"] is False
            assert reply["error"] == "TooManyConnections"
            assert second._file.readline() == ""
            second.close()
            first.close()
            # The slot frees once the first connection is gone.
            deadline = time.monotonic() + 10
            while True:
                third = Client(server.port)
                try:
                    third.send({"op": "ping", "id": 2})
                except (BrokenPipeError, ConnectionResetError):
                    pass  # rejection raced the ping; retry below
                line = third._file.readline()
                reply = json.loads(line) if line else {}
                third.close()
                if reply.get("pong"):
                    break
                assert time.monotonic() < deadline, "cap never freed"
                time.sleep(0.02)
        finally:
            server.stop()
            service.stop(wait=True)


class TestCancellation:
    def test_stop_with_parked_inflight_query_terminates(self):
        # Regression: _serve_line used to catch BaseException including
        # CancelledError, turning gateway shutdown into an error reply
        # and leaving the handler task uncancellable — stop() would
        # hang on the gather forever.  The parked query keeps a handler
        # pinned mid-await while we pull the plug.
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        client = Client(server.port)
        thread = server._thread
        try:
            large_hard = complete_tid(3, 3, 3, prob=Fraction(1, 3))
            register(client, "big", facts_of(large_hard))
            client.send(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "big",
                    "query": query_payload(hard_full_disjunction(3)),
                    "budget": BIG_BUDGET,
                }
            )
            time.sleep(0.2)  # parked: admitted and awaiting its future
            server.stop()
            assert thread is not None and not thread.is_alive(), (
                "gateway loop never terminated — cancellation was "
                "swallowed"
            )
        finally:
            client.close()
            service.stop(wait=True)


class TestLifecycleEdges:
    def test_stop_before_start_is_a_noop(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.stop()  # never started: nothing to do, no error
        assert server.drain() is True
        service.stop(wait=True)

    def test_double_start_raises(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()
            service.stop(wait=True)

    def test_context_manager_graceful_restart_keeps_port_and_catalog(
        self, tmp_path
    ):
        service = ShardedService(shards=1)
        with GatewayServer(
            service, journal_path=tmp_path / "edge.journal"
        ) as server:
            client = Client(server.port)
            register(client, "orders", REGISTER_FACTS)
            client.close()
            port = server.port

            server.restart(graceful=True)

            assert server.port == port
            client = Client(server.port)
            reply = client.rpc(
                {
                    "op": "query",
                    "id": 2,
                    "instance": "orders",
                    "query": CONJUNCTION,
                }
            )
            assert reply["ok"], reply
            client.close()
        service.stop(wait=True)

    def test_negative_grace_raises(self):
        service = ShardedService(shards=1)
        server = GatewayServer(service)
        server.start()
        try:
            import concurrent.futures

            loop = server._loop
            future = None
            if loop is not None:
                future = __import__("asyncio").run_coroutine_threadsafe(
                    server.gateway.drain(-1.0), loop
                )
            with pytest.raises(
                (ValueError, concurrent.futures.CancelledError)
            ):
                assert future is not None
                future.result(timeout=10)
        finally:
            server.stop()
            service.stop(wait=True)

"""Tests for replica placement, hedged requests, and worker supervision.

The contract: ``register(..., replicas=n)`` places read-only copies of
an instance along a deterministic rendezvous ring; routing spreads load
across the healthy ring members and fails over past an unhealthy
primary; a :class:`HedgePolicy` races a delayed backup on a second
replica with the loser retired cooperatively — and none of it is
visible in the floats, because every replica computes the same
content-determined probabilities.  On the process backend, a supervisor
detects worker death, respawns the worker, replays its instance
registrations, and gives up into the circuit breaker after
``max_restarts`` — with zero ``/dev/shm`` leaks through arbitrary
kill-recover-stop cycles.
"""

from __future__ import annotations

import glob
import os
import signal
import time
from fractions import Fraction

import pytest

from repro.db.generator import complete_tid
from repro.pqe.engine import evaluate_batch
from repro.queries.hqueries import q9
from repro.serving import (
    CircuitBreakerOpen,
    FaultInjector,
    GatewayServer,
    HedgePolicy,
    LatencyEwma,
    ProcessShard,
    ShardedService,
    SupervisorPolicy,
    WorkerCrashError,
    placement_ring,
)
from repro.serving.api import QueryRequest
from repro.serving.shm import segment_prefix
from repro.serving.stats import ServiceStats

pytestmark = pytest.mark.filterwarnings("error")


def shm_entries() -> set[str]:
    return {
        os.path.basename(path)
        for path in glob.glob(f"/dev/shm/{segment_prefix()}*")
    }


class TestPlacementRing:
    def test_primary_first_distinct_and_deterministic(self):
        for key in (0, 1, 7, 12345, 2**61 - 1):
            ring = placement_ring(key, 8, 3)
            assert ring[0] == key % 8
            assert len(ring) == 3
            assert len(set(ring)) == 3
            assert all(0 <= index < 8 for index in ring)
            assert ring == placement_ring(key, 8, 3)

    def test_replicas_capped_at_shard_count(self):
        ring = placement_ring(5, 3, 10)
        assert len(ring) == 3
        assert set(ring) == {0, 1, 2}

    def test_prefix_stable_under_replica_increase(self):
        for key in range(40):
            previous = placement_ring(key, 8, 1)
            for replicas in range(2, 9):
                ring = placement_ring(key, 8, replicas)
                assert ring[: len(previous)] == previous
                previous = ring

    def test_replicas_spread_across_instances(self):
        # Rendezvous ordering: different instances pick different first
        # replicas, not one designated backup shard.
        first_replicas = {
            placement_ring(key, 8, 2)[1] for key in range(64)
        }
        assert len(first_replicas) > 3

    def test_validation(self):
        with pytest.raises(ValueError):
            placement_ring(1, 0, 1)
        with pytest.raises(ValueError):
            placement_ring(1, 4, 0)


class TestReplicatedRouting:
    def test_register_places_instance_on_ring_shards(self):
        with ShardedService(shards=4) as service:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            primary = service.register(tid, replicas=3)
            placement = service.placement_of(tid)
            assert placement[0] == primary == service.shard_of(tid)
            assert len(placement) == 3
            for index in placement:
                assert service._shards[index].stats().instances == 1

    def test_reregister_with_more_replicas_extends_prefix(self):
        with ShardedService(shards=4) as service:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            service.register(tid, replicas=2)
            before = service.placement_of(tid)
            service.register(tid, replicas=3)
            after = service.placement_of(tid)
            assert after[:2] == before
            assert len(after) == 3
            # Shrinking never un-places.
            service.register(tid, replicas=1)
            assert service.placement_of(tid) == after

    def test_spread_is_bit_invisible_in_probabilities(self):
        tid = complete_tid(3, 3, 2, prob=Fraction(1, 3))
        reference = evaluate_batch(q9(), [tid] * 16)
        with ShardedService(shards=4) as service:
            service.register(tid, replicas=3)
            responses = service.submit_batch(q9(), [tid] * 16)
            assert [
                r.probability for r in responses
            ] == reference.probabilities
            stats = service.stats()
            assert stats.replication.replicated_instances == 1
            assert stats.replication.replicas_placed == 2
            assert stats.replication.spread > 0
            # Several ring members actually served.
            serving = [s for s in stats.shards if s.requests > 0]
            assert len(serving) > 1

    def test_failover_past_tripped_primary(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        reference = evaluate_batch(q9(), [tid])
        with ShardedService(shards=4) as service:
            service.register(tid, replicas=2)
            primary = service.shard_of(tid)
            service._shards[primary]._breaker.trip()
            responses = service.submit_batch(q9(), [tid] * 4)
            for response in responses:
                assert response.probability == reference.probabilities[0]
            stats = service.stats()
            assert stats.replication.failovers == 4
            assert stats.shards[primary].requests == 0

    def test_unreplicated_instance_gets_primary_rejection(self):
        # No replicas: a tripped primary's typed rejection surfaces —
        # failover is opt-in via register(replicas>=2).
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        with ShardedService(shards=2) as service:
            service.register(tid)
            service._shards[service.shard_of(tid)]._breaker.trip()
            future = service.submit(q9(), tid)
            assert isinstance(
                future.exception(timeout=60), CircuitBreakerOpen
            )


class TestHedging:
    def test_delay_ms_is_deterministic_and_bounded(self):
        policy = HedgePolicy(
            initial_delay_ms=10.0,
            min_delay_ms=1.0,
            max_delay_ms=100.0,
            jitter=0.25,
            seed=3,
        )
        for token, quantile in [(0, 0.0), (1, 4.0), (7, 400.0), (12, 40.0)]:
            delay = policy.delay_ms(token, quantile)
            assert delay == policy.delay_ms(token, quantile)
            base = quantile if quantile > 0 else 10.0
            base = min(max(base, 1.0), 100.0)
            assert base * 0.75 <= delay <= base
        # Different tokens draw different jitter.
        delays = {policy.delay_ms(t, 50.0) for t in range(16)}
        assert len(delays) > 1

    def test_hedged_responses_identical_to_reference(self):
        # Zero hedge delay: a backup fires on (almost) every request.
        # Whichever side wins, the floats match the direct engine.
        tid = complete_tid(3, 3, 2, prob=Fraction(1, 2))
        reference = evaluate_batch(q9(), [tid] * 24)
        hedge = HedgePolicy(
            initial_delay_ms=0.0, min_delay_ms=0.0, jitter=0.0
        )
        with ShardedService(shards=4, hedge=hedge) as service:
            service.register(tid, replicas=2)
            responses = service.submit_batch(q9(), [tid] * 24)
            assert [
                r.probability for r in responses
            ] == reference.probabilities
            stats = service.stats()
            assert (
                stats.hedging.primary_wins + stats.hedging.backup_wins
                == 24
            )
            # Losers were retired, not leaked: every launched backup
            # either won, was cancelled, or ran to completion (counted
            # in the winner/cancel split).
            assert stats.hedging.launched >= stats.hedging.backup_wins

    def test_hedge_beats_straggler_primary(self):
        # Straggle every attempt on every shard (rate 1), but hedge
        # after ~1 ms: the backup starts its straggle later yet the
        # *first* response still resolves the caller — and with the
        # straggler firing per-attempt the race stays deterministic in
        # outcome (both sides eventually answer with the same float).
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        reference = evaluate_batch(q9(), [tid])
        injector = FaultInjector(
            seed=5, straggler_rate=Fraction(1, 2), straggler_ms=30.0
        )
        hedge = HedgePolicy(
            initial_delay_ms=1.0,
            min_delay_ms=1.0,
            max_delay_ms=1.0,
            jitter=0.0,
        )
        with ShardedService(
            shards=2, hedge=hedge, fault_injector=injector
        ) as service:
            service.register(tid, replicas=2)
            responses = service.submit_batch(q9(), [tid] * 12)
            for response in responses:
                assert response.probability == reference.probabilities[0]
            stats = service.stats()
            assert stats.hedging.launched > 0
            assert injector.stats()["straggler_events"] > 0

    def test_disabled_hedging_never_launches(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        hedge = HedgePolicy(max_backups=0)
        assert not hedge.enabled
        with ShardedService(shards=4, hedge=hedge) as service:
            service.register(tid, replicas=2)
            service.submit_batch(q9(), [tid] * 8)
            assert service.stats().hedging.launched == 0


class TestLatencyQuantile:
    def test_quantile_tracks_mean_plus_deviation(self):
        ewma = LatencyEwma(alpha=0.5)
        assert ewma.quantile_ms() == 0.0
        for _ in range(32):
            ewma.observe(10.0)
        assert ewma.quantile_ms(z=2.0) == pytest.approx(10.0, abs=1e-6)
        for value in (5.0, 15.0) * 16:
            ewma.observe(value)
        low = ewma.quantile_ms(z=1.0)
        high = ewma.quantile_ms(z=3.0)
        assert high > low > ewma.value()


class TestFaultInjectorKillLanes:
    def test_kill_and_straggler_schedules_are_deterministic(self):
        first = FaultInjector(
            seed=7,
            worker_kill_rate=Fraction(1, 4),
            straggler_rate=Fraction(1, 3),
            straggler_ms=5.0,
        )
        second = FaultInjector(
            seed=7,
            worker_kill_rate=Fraction(1, 4),
            straggler_rate=Fraction(1, 3),
            straggler_ms=5.0,
        )
        kills = [
            (shard, index, attempt)
            for shard in range(2)
            for index in range(32)
            for attempt in range(2)
            if first.should_kill(shard, index, attempt)
        ]
        assert kills == [
            (shard, index, attempt)
            for shard in range(2)
            for index in range(32)
            for attempt in range(2)
            if second.should_kill(shard, index, attempt)
        ]
        assert kills  # the schedule actually fires at rate 1/4
        stragglers = [
            first.straggler_ms_for(shard, index)
            for shard in range(2)
            for index in range(32)
        ]
        assert stragglers == [
            second.straggler_ms_for(shard, index)
            for shard in range(2)
            for index in range(32)
        ]
        assert any(delay == 5.0 for delay in stragglers)
        assert first.stats()["kills"] == len(kills)
        assert first.stats()["straggler_events"] == sum(
            1 for delay in stragglers if delay > 0
        )

    def test_kill_fault_parity_across_backends(self):
        # The kill *schedule* is parent-side policy: the same request
        # indices crash on both backends — the thread backend has no
        # worker to kill but raises the same typed WorkerCrashError.
        def run(backend):
            service = ShardedService(
                shards=2,
                workers_per_shard=1,
                hedge=HedgePolicy(max_backups=0),
                fault_injector=FaultInjector(
                    seed=13, worker_kill_rate=Fraction(1, 5)
                ),
                backend=backend,
            )
            try:
                outcomes = []
                for i in range(16):
                    tid = complete_tid(
                        3, 2 + i % 3, 2, prob=Fraction(1, 2)
                    )
                    future = service.submit(q9(), tid)
                    error = future.exception(timeout=120)
                    if error is None:
                        outcomes.append(
                            ("ok", future.result().probability)
                        )
                    else:
                        outcomes.append((type(error).__name__, None))
                return outcomes
            finally:
                service.stop(wait=True)

        threads = run("threads")
        processes = run("processes")
        assert threads == processes
        assert any(kind == "ok" for kind, _ in threads)
        assert not shm_entries()


class TestSupervision:
    def test_injected_kill_respawns_and_retry_succeeds(self):
        # Rate 1/2 at seed 29 kills some first attempts; the retry runs
        # on the already-respawned worker and answers.
        injector = FaultInjector(
            seed=29, worker_kill_rate=Fraction(1, 2)
        )
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        reference = evaluate_batch(q9(), [tid])
        service = ShardedService(
            shards=1,
            workers_per_shard=1,
            backend="processes",
            fault_injector=injector,
            # Keep the breaker out of the picture: this test is about
            # kill -> respawn -> retry, not failure accounting.
            breaker_failure_threshold=100,
        )
        try:
            outcomes = []
            for _ in range(12):
                future = service.submit(q9(), tid)
                error = future.exception(timeout=120)
                outcomes.append(error)
            for error in outcomes:
                assert error is None or isinstance(
                    error, WorkerCrashError
                ), repr(error)
            assert any(error is None for error in outcomes)
            ok = service.submit(q9(), tid).result(timeout=120)
            assert ok.probability == reference.probabilities[0]
            stats = service.stats()
            assert injector.stats()["kills"] > 0
            assert stats.supervision.restarts == injector.stats()["kills"]
            assert stats.supervision.worker_alive
            assert not stats.supervision.gave_up
            assert service._shards[0].healthy()
        finally:
            service.stop(wait=True)
        assert not shm_entries()

    def test_external_kill_respawns_and_replays_registrations(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        service = ShardedService(
            shards=1, workers_per_shard=1, backend="processes"
        )
        try:
            reference = service.submit(q9(), tid).result(timeout=120)
            shard = service._shards[0]
            os.kill(shard._client._process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if shard.stats().supervisor.restarts >= 1:
                    break
                time.sleep(0.02)
            supervisor = shard.stats().supervisor
            assert supervisor.restarts == 1
            assert supervisor.replayed_instances == 1
            assert supervisor.respawn_ms > 0.0
            # Poll through the breaker window the death opened.
            again = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    again = service.submit(q9(), tid).result(timeout=120)
                    break
                except CircuitBreakerOpen:
                    time.sleep(0.05)
            assert again is not None
            assert again.probability == reference.probability
        finally:
            service.stop(wait=True)
        assert not shm_entries()

    def test_max_restarts_gives_up_into_breaker(self):
        from repro.serving import CircuitBreaker

        shard = ProcessShard(
            0,
            workers=1,
            breaker=CircuitBreaker(),
            supervisor=SupervisorPolicy(max_restarts=0),
        )
        try:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            shard.submit(QueryRequest(q9(), tid)).result(timeout=120)
            os.kill(shard._client._process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if shard._supervisor.gave_up:
                    break
                time.sleep(0.02)
            supervisor = shard.stats().supervisor
            assert supervisor.gave_up
            assert supervisor.restarts == 0
            assert not shard.healthy()
            future = shard.submit(QueryRequest(q9(), tid))
            assert isinstance(
                future.exception(timeout=60), CircuitBreakerOpen
            )
        finally:
            shard.stop(wait=True)
        assert not shm_entries()

    def test_replicas_share_segments_on_one_registry(self):
        # One service-wide registry: a replicated instance publishes its
        # probability columns once, not once per ring shard.
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        service = ShardedService(shards=2, backend="processes")
        try:
            service.register(tid, replicas=2)
            service.submit_batch(q9(), [tid] * 8)
            assert len(service._registry) == 1
        finally:
            service.stop(wait=True)
        assert not shm_entries()


class TestReplicationStatsAndGateway:
    def test_service_stats_payload_round_trips_new_sections(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        hedge = HedgePolicy(
            initial_delay_ms=0.0, min_delay_ms=0.0, jitter=0.0
        )
        with ShardedService(shards=4, hedge=hedge) as service:
            service.register(tid, replicas=2)
            service.submit_batch(q9(), [tid] * 8)
            stats = service.stats()
        payload = stats.to_payload()
        rebuilt = ServiceStats.from_payload(payload)
        assert rebuilt == stats
        assert rebuilt.replication == stats.replication
        assert rebuilt.hedging == stats.hedging
        assert rebuilt.supervision == stats.supervision
        import json

        assert json.loads(json.dumps(payload)) == payload

    def test_gateway_register_accepts_replicas(self):
        import socket

        service = ShardedService(shards=4)
        with GatewayServer(service) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                reader = sock.makefile("r")
                import json

                sock.sendall(
                    (
                        json.dumps(
                            {
                                "op": "register",
                                "id": 1,
                                "instance": "orders",
                                "facts": [
                                    ["R", [1], [1, 2]],
                                    ["S1", [1, 2]],
                                    ["T", [2], [2, 3]],
                                ],
                                "replicas": 2,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                reply = json.loads(reader.readline())
                assert reply["ok"], reply
                assert len(reply["placement"]) == 2
                assert reply["placement"][0] == reply["shard"]
                sock.sendall(
                    (
                        json.dumps(
                            {
                                "op": "register",
                                "id": 2,
                                "instance": "bad",
                                "facts": [],
                                "replicas": 0,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                reply = json.loads(reader.readline())
                assert not reply["ok"]
                assert reply["error"] == "ValueError"
        service.stop(wait=True)

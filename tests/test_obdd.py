"""Tests for the OBDD substrate: reduction, apply, automaton compilation,
probability and circuit expansion."""

from __future__ import annotations

import itertools
import random
from fractions import Fraction

import pytest

from repro.circuits import assert_d_d, probability as circuit_probability
from repro.obdd import (
    LayeredAutomaton,
    ObddManager,
    TERMINAL_FALSE,
    TERMINAL_TRUE,
    build_obdd,
    obdd_to_circuit,
    product_automaton,
)


class TestManagerBasics:
    def test_terminals(self):
        manager = ObddManager(["a"])
        assert manager.terminal(False) == TERMINAL_FALSE
        assert manager.terminal(True) == TERMINAL_TRUE

    def test_reduction_low_eq_high(self):
        manager = ObddManager(["a"])
        assert manager.make(0, TERMINAL_TRUE, TERMINAL_TRUE) == TERMINAL_TRUE

    def test_hash_consing(self):
        manager = ObddManager(["a", "b"])
        n1 = manager.make(0, TERMINAL_FALSE, TERMINAL_TRUE)
        n2 = manager.make(0, TERMINAL_FALSE, TERMINAL_TRUE)
        assert n1 == n2

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            ObddManager(["a", "a"])

    def test_variable(self):
        manager = ObddManager(["a", "b"])
        node = manager.variable("b")
        assert manager.evaluate(node, {"b": True})
        assert not manager.evaluate(node, {"b": False, "a": True})


class TestApply:
    def exhaustive_check(self, manager, root, labels, predicate):
        for bits in itertools.product([False, True], repeat=len(labels)):
            assignment = dict(zip(labels, bits))
            assert manager.evaluate(root, assignment) == predicate(
                assignment
            ), assignment

    def test_and_or_xor(self):
        manager = ObddManager(["a", "b", "c"])
        a, b, c = (manager.variable(x) for x in "abc")
        conj = manager.apply("and", a, b)
        self.exhaustive_check(
            manager, conj, "abc", lambda m: m["a"] and m["b"]
        )
        disj = manager.apply("or", conj, c)
        self.exhaustive_check(
            manager, disj, "abc", lambda m: (m["a"] and m["b"]) or m["c"]
        )
        xor = manager.apply("xor", a, c)
        self.exhaustive_check(
            manager, xor, "abc", lambda m: m["a"] != m["c"]
        )

    def test_negate(self):
        manager = ObddManager(["a", "b"])
        a = manager.variable("a")
        not_a = manager.negate(a)
        self.exhaustive_check(manager, not_a, "ab", lambda m: not m["a"])

    def test_unknown_op(self):
        manager = ObddManager(["a"])
        with pytest.raises(ValueError):
            manager.apply("nand", TERMINAL_TRUE, TERMINAL_TRUE)

    def test_conjoin_disjoin_all(self):
        manager = ObddManager(["a", "b", "c"])
        variables = [manager.variable(x) for x in "abc"]
        all_and = manager.conjoin_all(variables)
        self.exhaustive_check(
            manager, all_and, "abc", lambda m: all(m.values())
        )
        any_or = manager.disjoin_all(variables)
        self.exhaustive_check(
            manager, any_or, "abc", lambda m: any(m.values())
        )

    def test_random_equivalence_with_tables(self):
        rng = random.Random(31)
        labels = ["v0", "v1", "v2", "v3"]
        manager = ObddManager(labels)
        for _ in range(20):
            # Random expression tree over 4 variables.
            nodes = [manager.variable(l) for l in labels]
            tables = [
                {
                    bits: bits[i]
                    for bits in itertools.product(
                        *[(False, True)] * len(labels)
                    )
                }
                for i in range(len(labels))
            ]
            for _ in range(4):
                op = rng.choice(["and", "or", "xor"])
                i, j = rng.randrange(len(nodes)), rng.randrange(len(nodes))
                fn = {
                    "and": lambda x, y: x and y,
                    "or": lambda x, y: x or y,
                    "xor": lambda x, y: x != y,
                }[op]
                nodes.append(manager.apply(op, nodes[i], nodes[j]))
                tables.append(
                    {
                        bits: fn(tables[i][bits], tables[j][bits])
                        for bits in tables[i]
                    }
                )
            root, table = nodes[-1], tables[-1]
            for bits in table:
                assignment = dict(zip(labels, bits))
                assert manager.evaluate(root, assignment) == table[bits]


class TestProbability:
    def test_variable_probability(self):
        manager = ObddManager(["a"])
        a = manager.variable("a")
        assert manager.probability(a, {"a": Fraction(1, 3)}) == Fraction(1, 3)

    def test_skipped_variables_marginalize(self):
        manager = ObddManager(["a", "b"])
        a = manager.variable("a")  # b never tested
        assert manager.probability(
            a, {"a": Fraction(1, 2), "b": Fraction(1, 7)}
        ) == Fraction(1, 2)

    def test_model_count(self):
        manager = ObddManager(["a", "b", "c"])
        a, b = manager.variable("a"), manager.variable("b")
        disj = manager.apply("or", a, b)
        assert manager.model_count(disj) == 6  # 3/4 of 8

    def test_probability_matches_enumeration(self):
        rng = random.Random(37)
        labels = ["a", "b", "c"]
        manager = ObddManager(labels)
        a, b, c = (manager.variable(x) for x in labels)
        root = manager.apply("or", manager.apply("and", a, b), c)
        prob = {l: Fraction(rng.randint(0, 4), 4) for l in labels}
        expected = Fraction(0)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(labels, bits))
            if manager.evaluate(root, assignment):
                weight = Fraction(1)
                for label in labels:
                    p = prob[label]
                    weight *= p if assignment[label] else 1 - p
                expected += weight
        assert manager.probability(root, prob) == expected


class TestAutomatonCompilation:
    def parity_automaton(self, labels):
        return LayeredAutomaton(
            order=list(labels),
            initial=0,
            transition=lambda s, _pos, value: s ^ int(value),
            accepting=lambda s: s == 1,
        )

    def test_parity_obdd(self):
        labels = ["a", "b", "c", "d"]
        manager, root = build_obdd(self.parity_automaton(labels))
        for bits in itertools.product([False, True], repeat=4):
            assignment = dict(zip(labels, bits))
            assert manager.evaluate(root, assignment) == (sum(bits) % 2 == 1)

    def test_parity_obdd_is_linear(self):
        labels = [f"x{i}" for i in range(20)]
        manager, root = build_obdd(self.parity_automaton(labels))
        # Parity has exactly 2 nodes per level plus terminals.
        assert manager.size(root) <= 2 * len(labels) + 2

    def test_run_matches_obdd(self):
        labels = ["a", "b", "c"]
        automaton = self.parity_automaton(labels)
        manager, root = build_obdd(automaton)
        for bits in itertools.product([False, True], repeat=3):
            assert automaton.run(list(bits)) == manager.evaluate(
                root, dict(zip(labels, bits))
            )

    def test_threshold_automaton(self):
        labels = [f"x{i}" for i in range(6)]
        automaton = LayeredAutomaton(
            order=labels,
            initial=0,
            transition=lambda s, _pos, value: min(s + int(value), 3),
            accepting=lambda s: s >= 2,
        )
        manager, root = build_obdd(automaton)
        for bits in itertools.product([False, True], repeat=6):
            assert manager.evaluate(root, dict(zip(labels, bits))) == (
                sum(bits) >= 2
            )

    def test_incompatible_manager_order(self):
        automaton = self.parity_automaton(["a", "b"])
        manager = ObddManager(["b", "a"])
        with pytest.raises(ValueError):
            build_obdd(automaton, manager)

    def test_product_automaton(self):
        labels = ["a", "b", "c"]
        parity = self.parity_automaton(labels)
        count = LayeredAutomaton(
            order=labels,
            initial=0,
            transition=lambda s, _pos, value: s + int(value),
            accepting=lambda s: s >= 1,
        )
        product = product_automaton(
            [parity, count],
            accepting=lambda state: state[0] == 1 and state[1] >= 1,
        )
        manager, root = build_obdd(product)
        for bits in itertools.product([False, True], repeat=3):
            expected = (sum(bits) % 2 == 1) and sum(bits) >= 1
            assert manager.evaluate(root, dict(zip(labels, bits))) == expected

    def test_product_requires_same_order(self):
        with pytest.raises(ValueError):
            product_automaton(
                [
                    self.parity_automaton(["a"]),
                    self.parity_automaton(["b"]),
                ],
                accepting=lambda s: True,
            )


class TestCircuitExpansion:
    def test_expanded_circuit_is_d_d(self):
        labels = ["a", "b", "c"]
        manager = ObddManager(labels)
        a, b, c = (manager.variable(x) for x in labels)
        root = manager.apply("or", manager.apply("and", a, b), c)
        circuit = obdd_to_circuit(manager, root)
        assert_d_d(circuit)

    def test_expansion_preserves_semantics_and_probability(self):
        labels = ["a", "b", "c"]
        manager = ObddManager(labels)
        a, b, c = (manager.variable(x) for x in labels)
        root = manager.apply(
            "xor", manager.apply("or", a, b), c
        )
        circuit = obdd_to_circuit(manager, root)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(labels, bits))
            assert circuit.evaluate(assignment) == manager.evaluate(
                root, assignment
            )
        prob = {l: Fraction(1, 3) for l in labels}
        assert circuit_probability(circuit, prob) == manager.probability(
            root, prob
        )

    def test_terminal_expansion(self):
        manager = ObddManager(["a"])
        circuit = obdd_to_circuit(manager, TERMINAL_TRUE)
        assert circuit.evaluate({})

"""Property-based tests for the safe-plan building blocks."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import random_tid
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.safe_plans import (
    UnsafeSubqueryError,
    _run_probability_fractions,
    chain_probability,
    disjunction_probability,
    disjunction_probability_float,
    run_probability,
    run_probability_float,
    runs_of,
)
from repro.queries.hqueries import HQuery


class TestRunsProperties:
    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_runs_partition_the_input(self, indices):
        runs = runs_of(indices)
        covered = set()
        for start, end in runs:
            covered.update(range(start, end + 1))
        assert covered == set(indices)

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_runs_are_maximal_and_separated(self, indices):
        runs = runs_of(indices)
        for i, (start, end) in enumerate(runs):
            assert start <= end
            # Maximality: the elements just outside the run are absent.
            assert start - 1 not in indices
            assert end + 1 not in indices
            if i > 0:
                previous_end = runs[i - 1][1]
                assert start >= previous_end + 2

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_runs_sorted(self, indices):
        runs = runs_of(indices)
        assert runs == sorted(runs)


def probabilities_strategy():
    return st.lists(
        st.integers(min_value=0, max_value=4).map(lambda n: Fraction(n, 4)),
        min_size=0,
        max_size=7,
    )


class TestChainProperties:
    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_chain_probability_in_unit_interval(self, probs):
        for first in (False, True):
            for last in (False, True):
                value = chain_probability(
                    probs, satisfied_by_first=first, satisfied_by_last=last
                )
                assert 0 <= value <= 1

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_flags_are_monotone(self, probs):
        # Adding a satisfaction rule can only increase the probability.
        base = chain_probability(probs)
        with_first = chain_probability(probs, satisfied_by_first=True)
        with_last = chain_probability(probs, satisfied_by_last=True)
        both = chain_probability(
            probs, satisfied_by_first=True, satisfied_by_last=True
        )
        assert base <= with_first <= both
        assert base <= with_last <= both

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_reversal_symmetry(self, probs):
        # Reversing the chain swaps the roles of the two flags.
        assert chain_probability(
            probs, satisfied_by_first=True
        ) == chain_probability(
            list(reversed(probs)), satisfied_by_last=True
        )
        assert chain_probability(probs) == chain_probability(
            list(reversed(probs))
        )

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_certain_tuples(self, probs):
        # With every tuple certain, the chain is satisfied iff it has an
        # adjacent pair (length >= 2) or a flag applies to a nonempty chain.
        certain = [Fraction(1)] * len(probs)
        expected = Fraction(1) if len(certain) >= 2 else Fraction(0)
        assert chain_probability(certain) == expected
        if certain:
            assert chain_probability(
                certain, satisfied_by_first=True
            ) == Fraction(1)

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_zero_tuples_break_chain(self, probs):
        # Inserting a zero-probability tuple in the middle severs the
        # chain into independent halves.
        left = probs
        right = [Fraction(1, 2)] * 2
        severed = chain_probability(left + [Fraction(0)] + right)
        miss_left = 1 - chain_probability(left)
        miss_right = 1 - chain_probability(right)
        assert severed == 1 - miss_left * miss_right


def disjunction_query(k: int, indices) -> HQuery:
    """``∨_{i in S} h_{k,i}`` as an :class:`HQuery` (the brute-force
    oracle for the lifted plans)."""
    phi = BooleanFunction.bottom(k + 1)
    for i in indices:
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def proper_nonempty_subsets(k: int):
    full = (1 << (k + 1)) - 1
    for mask in range(1, full):
        yield [i for i in range(k + 1) if mask >> i & 1]


class TestBackendsAgainstBruteForce:
    """Randomized instances: both vectorized backends vs. the
    exponential oracle, the Fraction fallback, and each other."""

    def _random_instances(self, seed, count, k, density=0.5):
        rng = random.Random(seed)
        instances = []
        while len(instances) < count:
            tid = random_tid(k, 2, 2, rng, tuple_density=density)
            if 0 < len(tid) <= 12:
                instances.append(tid)
        return instances

    @pytest.mark.parametrize("k", [2, 3])
    def test_all_proper_disjunctions_match_brute_force(self, k):
        for tid in self._random_instances(0xBEEF + k, 3, k):
            for subset in proper_nonempty_subsets(k):
                exact = disjunction_probability(subset, k, tid)
                oracle = probability_by_world_enumeration(
                    disjunction_query(k, subset), tid
                )
                assert exact == oracle, (k, subset)
                as_float = disjunction_probability_float(subset, k, tid)
                assert as_float == pytest.approx(float(exact), abs=1e-12)

    def test_runs_match_fraction_fallback_bit_for_bit(self):
        k = 3
        for tid in self._random_instances(0xFA11, 4, k):
            for run in [(0, 0), (0, 2), (1, 2), (2, 2), (1, 3), (3, 3)]:
                vectorized = run_probability(run, k, tid)
                reference = _run_probability_fractions(run, k, tid)
                assert vectorized == reference, run
                assert run_probability_float(
                    run, k, tid
                ) == pytest.approx(float(reference), abs=1e-12)

    def test_zero_and_one_probability_tuples(self):
        # Degenerate pi values exercise the DP's absorbing states: kept
        # tuples that always/never fire, including whole certain chains.
        k = 2
        rng = random.Random(0x01AF)
        for _ in range(4):
            tid = TupleIndependentDatabase()
            for a in ("a1", "a2"):
                tid.add("R", (a,), rng.choice([0, 1, Fraction(1, 2)]))
                for b in ("b1", "b2"):
                    for i in range(1, k + 1):
                        tid.add(
                            f"S{i}",
                            (a, b),
                            rng.choice([0, 1, Fraction(1, 3)]),
                        )
            for b in ("b1", "b2"):
                tid.add("T", (b,), rng.choice([0, 1]))
            for subset in proper_nonempty_subsets(k):
                exact = disjunction_probability(subset, k, tid)
                oracle = probability_by_world_enumeration(
                    disjunction_query(k, subset), tid
                )
                assert exact == oracle, subset
                assert disjunction_probability_float(
                    subset, k, tid
                ) == pytest.approx(float(exact), abs=1e-12)

    def test_empty_run_set_and_empty_instance(self):
        k = 3
        empty = TupleIndependentDatabase()
        assert disjunction_probability([], k, empty) == 0
        assert disjunction_probability_float([], k, empty) == 0.0
        # A run over an empty instance can never be witnessed.
        assert run_probability((1, 2), k, empty) == 0
        assert run_probability_float((0, 1), k, empty) == 0.0

    def test_full_span_rejected_by_both_backends(self):
        k = 2
        tid = self._random_instances(0xF00, 1, k)[0]
        with pytest.raises(UnsafeSubqueryError):
            run_probability((0, k), k, tid)
        with pytest.raises(UnsafeSubqueryError):
            run_probability_float((0, k), k, tid)

    def test_exotic_denominators_fall_back_exactly(self):
        # A probability whose denominator overflows the 64-bit common
        # denominator guard: the columnar exact backend must hand off to
        # the Fraction fallback and still match the oracle bit for bit.
        k = 2
        huge = Fraction(1, 2**70 + 1)
        tid = TupleIndependentDatabase()
        tid.add("R", ("a1",), huge)
        tid.add("S1", ("a1", "b1"), Fraction(1, 2))
        tid.add("S2", ("a1", "b1"), 1 - huge)
        tid.add("T", ("b1",), Fraction(2, 3))
        from repro.db.columnar import h_columns

        assert h_columns(tid, k).denominator is None
        for subset in proper_nonempty_subsets(k):
            exact = disjunction_probability(subset, k, tid)
            oracle = probability_by_world_enumeration(
                disjunction_query(k, subset), tid
            )
            assert exact == oracle, subset

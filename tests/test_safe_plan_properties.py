"""Property-based tests for the safe-plan building blocks."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pqe.safe_plans import chain_probability, runs_of


class TestRunsProperties:
    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_runs_partition_the_input(self, indices):
        runs = runs_of(indices)
        covered = set()
        for start, end in runs:
            covered.update(range(start, end + 1))
        assert covered == set(indices)

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_runs_are_maximal_and_separated(self, indices):
        runs = runs_of(indices)
        for i, (start, end) in enumerate(runs):
            assert start <= end
            # Maximality: the elements just outside the run are absent.
            assert start - 1 not in indices
            assert end + 1 not in indices
            if i > 0:
                previous_end = runs[i - 1][1]
                assert start >= previous_end + 2

    @given(st.sets(st.integers(min_value=0, max_value=30)))
    def test_runs_sorted(self, indices):
        runs = runs_of(indices)
        assert runs == sorted(runs)


def probabilities_strategy():
    return st.lists(
        st.integers(min_value=0, max_value=4).map(lambda n: Fraction(n, 4)),
        min_size=0,
        max_size=7,
    )


class TestChainProperties:
    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_chain_probability_in_unit_interval(self, probs):
        for first in (False, True):
            for last in (False, True):
                value = chain_probability(
                    probs, satisfied_by_first=first, satisfied_by_last=last
                )
                assert 0 <= value <= 1

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_flags_are_monotone(self, probs):
        # Adding a satisfaction rule can only increase the probability.
        base = chain_probability(probs)
        with_first = chain_probability(probs, satisfied_by_first=True)
        with_last = chain_probability(probs, satisfied_by_last=True)
        both = chain_probability(
            probs, satisfied_by_first=True, satisfied_by_last=True
        )
        assert base <= with_first <= both
        assert base <= with_last <= both

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_reversal_symmetry(self, probs):
        # Reversing the chain swaps the roles of the two flags.
        assert chain_probability(
            probs, satisfied_by_first=True
        ) == chain_probability(
            list(reversed(probs)), satisfied_by_last=True
        )
        assert chain_probability(probs) == chain_probability(
            list(reversed(probs))
        )

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_certain_tuples(self, probs):
        # With every tuple certain, the chain is satisfied iff it has an
        # adjacent pair (length >= 2) or a flag applies to a nonempty chain.
        certain = [Fraction(1)] * len(probs)
        expected = Fraction(1) if len(certain) >= 2 else Fraction(0)
        assert chain_probability(certain) == expected
        if certain:
            assert chain_probability(
                certain, satisfied_by_first=True
            ) == Fraction(1)

    @given(probabilities_strategy())
    @settings(max_examples=60)
    def test_zero_tuples_break_chain(self, probs):
        # Inserting a zero-probability tuple in the middle severs the
        # chain into independent halves.
        left = probs
        right = [Fraction(1, 2)] * 2
        severed = chain_probability(left + [Fraction(0)] + right)
        miss_left = 1 - chain_probability(left)
        miss_right = 1 - chain_probability(right)
        assert severed == 1 - miss_left * miss_right

"""Tests for circuit smoothing and model enumeration."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.circuits import Circuit, assert_d_d
from repro.circuits.probability import model_count, probability
from repro.circuits.smoothing import (
    count_models_smoothed,
    enumerate_models,
    is_smooth,
    smooth,
)
from repro.db.generator import complete_tid
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import q9


def unbalanced_dd() -> Circuit:
    """(x ∧ ¬y) ∨ z-only-branch: branches see different variable sets."""
    circuit = Circuit()
    x, y, z = (circuit.add_var(v) for v in "xyz")
    left = circuit.add_and([x, circuit.add_not(y)])
    right = circuit.add_and([circuit.add_not(x), circuit.add_not(z)])
    circuit.set_output(circuit.add_or([left, right]))
    return circuit


class TestSmoothness:
    def test_unbalanced_detected(self):
        assert not is_smooth(unbalanced_dd())

    def test_smooth_output_is_smooth(self):
        smoothed = smooth(unbalanced_dd())
        assert is_smooth(smoothed)

    def test_smoothing_preserves_semantics(self):
        original = unbalanced_dd()
        smoothed = smooth(original)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("xyz", bits))
            assert smoothed.evaluate(assignment) == original.evaluate(
                assignment
            )

    def test_smoothing_preserves_d_d(self):
        smoothed = smooth(unbalanced_dd())
        assert_d_d(smoothed)

    def test_smoothing_preserves_probability(self):
        from fractions import Fraction

        original = unbalanced_dd()
        smoothed = smooth(original)
        prob = {v: Fraction(1, 3) for v in "xyz"}
        assert probability(smoothed, prob) == probability(original, prob)

    def test_already_smooth_unchanged_semantically(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        circuit.set_output(x)
        smoothed = smooth(circuit)
        assert is_smooth(smoothed)
        assert smoothed.evaluate({"x": True})


class TestEnumeration:
    def test_requires_smooth(self):
        with pytest.raises(ValueError):
            list(enumerate_models(unbalanced_dd()))

    def test_models_match_enumeration_oracle(self):
        original = unbalanced_dd()
        smoothed = smooth(original)
        expected = set(original.models_by_enumeration())
        got = set(enumerate_models(smoothed))
        assert got == expected

    def test_no_duplicates(self):
        smoothed = smooth(unbalanced_dd())
        models = list(enumerate_models(smoothed))
        assert len(models) == len(set(models))

    def test_count_matches_probability_count(self):
        original = unbalanced_dd()
        assert count_models_smoothed(original) == model_count(original)

    def test_on_compiled_lineage(self):
        tid = complete_tid(3, 1, 1)
        compiled = compile_lineage(q9(), tid.instance)
        smoothed = smooth(compiled.circuit)
        models = list(enumerate_models(smoothed))
        assert len(models) == len(set(models))
        assert len(models) == model_count(compiled.circuit)
        # Every enumerated model satisfies the circuit.
        for model in random.Random(0).sample(
            models, min(20, len(models))
        ):
            assignment = {
                label: label in model for label in compiled.circuit.variables()
            }
            assert compiled.circuit.evaluate(assignment)

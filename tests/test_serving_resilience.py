"""Tests for the serving resilience layer: deadlines, admission control,
circuit breaking, retries, degradation, and deterministic fault
injection (:mod:`repro.serving.resilience`, :mod:`repro.serving.faults`,
plus the shard/service wiring)."""

from __future__ import annotations

import time
from concurrent.futures import Future
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.db.generator import complete_tid
from repro.pqe.approximate import AccuracyBudget, Z_95, sampling_plan
from repro.pqe.engine import evaluate
from repro.queries.hqueries import HQuery, q9
from repro.serving import ShardedService
from repro.serving.api import QueryRequest
from repro.serving.faults import FaultInjector, TransientFaultError
from repro.serving.resilience import (
    CircuitBreaker,
    LatencyEwma,
    RetryPolicy,
    ServiceStopped,
    ShardOverloaded,
    degraded_budget,
)
from repro.serving.shard import Shard, _Pending

pytestmark = pytest.mark.filterwarnings("error")


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


class FakeClock:
    """A hand-driven monotonic clock for deadline/breaker tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_remaining_and_expiry_follow_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(100.0)
        assert not deadline.expired()
        deadline.check("nowhere")  # no raise
        clock.advance(0.0999)
        assert not deadline.expired()
        clock.advance(0.001)
        assert deadline.expired()
        assert deadline.remaining_ms() < 0

    def test_check_raises_typed_with_context(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded, match="sampling wave"):
            deadline.check("sampling wave")
        # DeadlineExceeded is a TimeoutError: generic timeout handling
        # upstack catches it without knowing this module.
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_latest_picks_the_least_restrictive(self):
        clock = FakeClock()
        short = Deadline(10.0, clock=clock)
        long = Deadline(50.0, clock=clock)
        assert Deadline.latest([short, long]) is long
        assert Deadline.latest([long, short]) is long
        with pytest.raises(ValueError):
            Deadline.latest([])

    @pytest.mark.parametrize(
        "bad", [0, -1, float("nan"), float("inf"), -0.5]
    )
    def test_rejects_non_positive_or_non_finite(self, bad):
        with pytest.raises(ValueError):
            Deadline(bad)

    def test_wave_loop_honors_deadline(self):
        # An already-expired deadline stops the sampler at admission —
        # typed, before drawing anything.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(1.0)
        plan = sampling_plan(query, tid)
        with pytest.raises(DeadlineExceeded):
            plan.run(AccuracyBudget(), deadline=deadline)

    def test_completed_run_is_untouched_by_its_deadline(self):
        # A run that finishes under a generous deadline is bit-identical
        # to the deadline-free run: checks sit between waves only.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(
            min_samples=64, max_samples=256, seed=11
        )
        free = sampling_plan(query, tid).run(budget)
        timed = sampling_plan(query, tid).run(
            budget, deadline=Deadline(60_000.0)
        )
        assert timed == free

    def test_engine_evaluate_checks_deadline_at_entry(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        with pytest.raises(DeadlineExceeded):
            evaluate(q9(), tid, deadline=deadline)


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_probes_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_after_ms=100.0,
            half_open_probes=2,
            clock=clock,
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.099)
        assert not breaker.allow()
        clock.advance(0.002)
        assert breaker.state == "half_open"
        # Exactly half_open_probes admissions, no more.
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_re_trips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=50.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_ms=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        policy = RetryPolicy(
            attempts=4, base_delay_ms=2.0, multiplier=3.0,
            max_delay_ms=10.0, jitter=0.5, seed=9,
        )
        for token in (0, 1, 17):
            for attempt in (1, 2, 3):
                first = policy.delay_ms(token, attempt)
                again = policy.delay_ms(token, attempt)
                assert first == again  # pure function of (token, attempt)
                ceiling = min(10.0, 2.0 * 3.0 ** (attempt - 1))
                assert ceiling * 0.5 <= first <= ceiling
        # Distinct tokens jitter independently.
        assert policy.delay_ms(0, 1) != policy.delay_ms(1, 1)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            attempts=3, base_delay_ms=1.0, multiplier=2.0,
            max_delay_ms=100.0, jitter=0.0,
        )
        assert policy.delay_ms(5, 1) == 1.0
        assert policy.delay_ms(5, 2) == 2.0
        assert policy.delay_ms(5, 3) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_ms(0, 0)


class TestAccuracyBudgetValidation:
    @pytest.mark.parametrize(
        "bad", [0.0, -0.1, 1.0, float("nan"), float("inf")]
    )
    def test_epsilon_rejected(self, bad):
        with pytest.raises(ValueError, match="epsilon"):
            AccuracyBudget(epsilon=bad)

    @pytest.mark.parametrize(
        "bad", [0.0, -0.05, 1.0, 1.5, float("nan")]
    )
    def test_delta_rejected(self, bad):
        with pytest.raises(ValueError, match="delta"):
            AccuracyBudget(delta=bad)

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError, match="min_samples"):
            AccuracyBudget(min_samples=0)
        with pytest.raises(ValueError, match="min_samples"):
            AccuracyBudget(min_samples=-5)
        with pytest.raises(ValueError, match="max_samples"):
            AccuracyBudget(min_samples=10, max_samples=9)

    def test_default_delta_reproduces_z95_exactly(self):
        assert AccuracyBudget().z() == Z_95
        # Tighter confidence buys more samples; the quantile matches the
        # textbook value.
        assert AccuracyBudget(delta=0.01).z() == pytest.approx(
            2.5758293, abs=1e-6
        )
        assert (
            AccuracyBudget(delta=0.01, max_samples=10**9).samples()
            > AccuracyBudget(max_samples=10**9).samples()
        )


class TestLatencyEwma:
    def test_first_observation_seeds_then_smooths(self):
        ewma = LatencyEwma(alpha=0.5)
        assert ewma.value() == 0.0
        assert ewma.samples == 0
        ewma.observe(10.0)
        assert ewma.value() == 10.0
        ewma.observe(20.0)
        assert ewma.value() == 15.0
        assert ewma.samples == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyEwma(alpha=0.0)
        with pytest.raises(ValueError):
            LatencyEwma(alpha=1.5)


class TestDegradedBudget:
    def test_cap_is_power_of_two_within_affordable(self):
        base = AccuracyBudget(seed=5)
        budget = degraded_budget(base, 100.0, samples_per_ms=100.0)
        assert budget is not None
        assert budget.max_samples == 8192  # floor pow2 of 10_000
        assert budget.max_samples & (budget.max_samples - 1) == 0
        assert budget.interval == "wilson"
        assert budget.seed == base.seed
        assert budget.min_samples <= budget.max_samples

    def test_quantization_absorbs_clock_jitter(self):
        # Remaining deadlines within one power-of-two band produce the
        # *same* budget — the determinism the degraded_identical bench
        # flag rests on.
        base = AccuracyBudget(seed=5)
        a = degraded_budget(base, 100.0, samples_per_ms=100.0)
        b = degraded_budget(base, 141.0, samples_per_ms=100.0)
        assert a == b

    def test_unaffordable_returns_none(self):
        base = AccuracyBudget()
        assert degraded_budget(base, 0.0) is None
        assert degraded_budget(base, -5.0) is None
        assert degraded_budget(base, 0.05, samples_per_ms=100.0) is None

    def test_never_exceeds_base_cap(self):
        base = AccuracyBudget(max_samples=1000)
        budget = degraded_budget(base, 10_000.0, samples_per_ms=100.0)
        assert budget.max_samples == 512  # floor pow2 of min(1000, 1e6)


class TestFaultInjector:
    def test_schedule_is_replayable(self):
        kwargs = dict(
            error_rate=0.25,
            latency_rate=0.5,
            latency_ms=3.0,
            pressure_rate=0.125,
            pressure_depth=4,
        )
        a = FaultInjector(seed=42, **kwargs)
        b = FaultInjector(seed=42, **kwargs)
        schedule_a = [
            (
                a.should_fail(s, i),
                a.latency_ms_for(s, i),
                a.phantom_depth(s, i),
            )
            for s in range(2)
            for i in range(64)
        ]
        schedule_b = [
            (
                b.should_fail(s, i),
                b.latency_ms_for(s, i),
                b.phantom_depth(s, i),
            )
            for s in range(2)
            for i in range(64)
        ]
        assert schedule_a == schedule_b
        assert any(hit for hit, _, _ in schedule_a)
        assert FaultInjector(seed=43, error_rate=0.25) is not None

    def test_attempts_re_roll_independently(self):
        injector = FaultInjector(seed=7, error_rate=0.5)
        rolls = {
            attempt: injector.should_fail(0, 3, attempt)
            for attempt in range(8)
        }
        assert len(set(rolls.values())) == 2  # not all equal at rate 1/2

    def test_broken_requests_fail_every_attempt(self):
        injector = FaultInjector(seed=0, broken_requests={(1, 5)})
        assert all(injector.should_fail(1, 5, attempt=a) for a in range(4))
        assert not injector.should_fail(0, 5)
        assert not injector.should_fail(1, 4)

    def test_zero_rates_never_fire_and_stats_count(self):
        injector = FaultInjector(seed=1)
        assert not injector.should_fail(0, 0)
        assert injector.latency_ms_for(0, 0) == 0.0
        assert injector.phantom_depth(0, 0) == 0
        assert not injector.should_kill(0, 0)
        assert injector.straggler_ms_for(0, 0) == 0.0
        assert not injector.should_drop_conn(0, 0)
        assert not injector.should_split_write(0, 0)
        assert injector.slow_client_ms_for(0, 0) == 0.0
        assert injector.stats() == {
            "errors": 0,
            "latency_events": 0,
            "pressure_events": 0,
            "kills": 0,
            "straggler_events": 0,
            "conn_drops": 0,
            "partial_writes": 0,
            "slow_client_events": 0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(latency_rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjector(latency_ms=-1.0)
        with pytest.raises(ValueError):
            FaultInjector(pressure_depth=-1)


class TestRequestValidation:
    def test_deadline_ms_must_be_positive_finite_or_none(self):
        tid = complete_tid(3, 2, 2)
        QueryRequest(q9(), tid)  # None is fine
        QueryRequest(q9(), tid, deadline_ms=25.0)
        for bad in (0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="deadline_ms"):
                QueryRequest(q9(), tid, deadline_ms=bad)

    def test_priority_must_be_int(self):
        tid = complete_tid(3, 2, 2)
        with pytest.raises(ValueError, match="priority"):
            QueryRequest(q9(), tid, priority=1.5)


class TestAdmissionControl:
    def _slow_shard(self, **kwargs) -> Shard:
        # One worker, every serve attempt slowed 300 ms: the queue
        # backs up deterministically while the worker sleeps.
        return Shard(
            0,
            workers=1,
            fault_injector=FaultInjector(
                seed=0, latency_rate=1, latency_ms=300.0
            ),
            **kwargs,
        )

    def _occupy_worker(self, shard: Shard, tid) -> Future:
        future = shard.submit(QueryRequest(q9(), tid))
        for _ in range(200):
            if shard.queue_depth() == 0:
                break
            time.sleep(0.005)
        else:  # pragma: no cover - diagnostic
            raise AssertionError("drain never claimed the first request")
        return future

    def test_full_queue_sheds_the_newcomer_typed(self):
        shard = self._slow_shard(max_queue_depth=1)
        tids = [
            complete_tid(3, 2 + i, 2, prob=Fraction(1, 2))
            for i in range(3)
        ]
        first = self._occupy_worker(shard, tids[0])
        second = shard.submit(QueryRequest(q9(), tids[1]))
        third = shard.submit(QueryRequest(q9(), tids[2]))
        with pytest.raises(ShardOverloaded):
            third.result(timeout=10)
        # The two admitted requests are both served normally.
        assert first.result(timeout=10).engine == "extensional"
        assert second.result(timeout=10).engine == "extensional"
        stats = shard.stats()
        assert stats.resilience.shed == 1
        shard.close()

    def test_priority_evicts_newest_lower_priority_victim(self):
        shard = self._slow_shard(max_queue_depth=1)
        tids = [
            complete_tid(3, 2 + i, 2, prob=Fraction(1, 2))
            for i in range(3)
        ]
        self._occupy_worker(shard, tids[0])
        victim = shard.submit(QueryRequest(q9(), tids[1], priority=0))
        vip = shard.submit(QueryRequest(q9(), tids[2], priority=5))
        with pytest.raises(ShardOverloaded):
            victim.result(timeout=10)
        response = vip.result(timeout=10)
        assert response.engine == "extensional"
        assert shard.stats().resilience.shed == 1
        shard.close()

    def test_expired_deadline_resolves_typed_at_dequeue(self):
        shard = self._slow_shard()
        busy = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        late = complete_tid(3, 3, 2, prob=Fraction(1, 2))
        self._occupy_worker(shard, busy)
        # Queued behind a 300 ms sleep with a 30 ms deadline: expired by
        # dequeue, resolved typed without being served.
        future = shard.submit(
            QueryRequest(q9(), late, deadline_ms=30.0)
        )
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=10)
        stats = shard.stats()
        assert stats.resilience.deadline_exceeded == 1
        assert stats.engines.get("extensional", 0) <= 1  # late one unserved
        shard.close()


class TestStop:
    def test_stop_resolves_queued_futures_typed(self):
        shard = Shard(
            0,
            workers=1,
            fault_injector=FaultInjector(
                seed=0, latency_rate=1, latency_ms=300.0
            ),
        )
        tids = [
            complete_tid(3, 2 + i, 2, prob=Fraction(1, 2))
            for i in range(4)
        ]
        in_flight = shard.submit(QueryRequest(q9(), tids[0]))
        for _ in range(200):
            if shard.queue_depth() == 0:
                break
            time.sleep(0.005)
        queued = [
            shard.submit(QueryRequest(q9(), tid)) for tid in tids[1:]
        ]
        shard.stop(wait=True)
        # The in-flight microbatch finishes; the queued rest resolve
        # typed — nobody blocks forever on a stopped shard.
        assert in_flight.result(timeout=10).engine == "extensional"
        for future in queued:
            with pytest.raises(ServiceStopped):
                future.result(timeout=10)

    def test_submit_after_stop_raises_service_stopped(self):
        shard = Shard(0, workers=1)
        shard.stop()
        tid = complete_tid(3, 2, 2)
        with pytest.raises(ServiceStopped):
            shard.submit(QueryRequest(q9(), tid))
        # ServiceStopped subclasses RuntimeError: pre-resilience callers
        # that caught the executor's bare RuntimeError keep working.
        assert issubclass(ServiceStopped, RuntimeError)
        shard.stop()  # idempotent

    def test_service_stop_covers_every_shard(self):
        service = ShardedService(shards=2, workers_per_shard=1)
        tid = complete_tid(3, 2, 2)
        service.stop()
        with pytest.raises(ServiceStopped):
            service.submit(q9(), tid)

    def test_empty_submit_batch(self):
        with ShardedService(shards=2) as service:
            assert service.submit_batch(q9(), []) == []


class TestMicrobatchIsolation:
    def test_broken_member_fails_alone(self):
        # A fused group with one permanently-broken member: the sweep
        # raises, the group is retried member-by-member, and only the
        # broken request fails — typed — while its peers get answers.
        injector = FaultInjector(seed=0, broken_requests={(0, 1)})
        shard = Shard(
            0,
            workers=1,
            fault_injector=injector,
            retry=RetryPolicy(attempts=2, base_delay_ms=0.1),
        )
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        group = [
            _Pending(QueryRequest(q9(), tid), Future(), time.perf_counter())
            for _ in range(3)
        ]
        for index, pending in enumerate(group):
            pending.index = index
        shard._serve(group)
        expected = float(
            evaluate(q9(), tid, method="extensional").probability
        )
        assert group[0].future.result(timeout=0).probability == expected
        assert group[2].future.result(timeout=0).probability == expected
        with pytest.raises(TransientFaultError):
            group[1].future.result(timeout=0)
        stats = shard.stats()
        assert stats.resilience.retries >= 3  # group split + solo retry
        assert stats.resilience.failures == 1
        assert stats.requests == 3  # counted once despite retries
        shard.close()

    def test_transient_single_fault_is_retried_to_success(self):
        # Request index 0 fails on attempt 0 only (broken set is empty;
        # error_rate targets attempt draws) — the retry policy recovers
        # it and the caller sees a normal response.
        class OneShotInjector(FaultInjector):
            def should_fail(self, shard, index, attempt=0):
                return attempt == 0

        shard = Shard(
            0,
            workers=1,
            fault_injector=OneShotInjector(seed=0),
            retry=RetryPolicy(attempts=2, base_delay_ms=0.1),
        )
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        future = shard.submit(QueryRequest(q9(), tid))
        assert future.result(timeout=10).engine == "extensional"
        stats = shard.stats()
        assert stats.resilience.retries == 1
        assert stats.resilience.failures == 0
        shard.close()


class TestDegradation:
    def _degraded_response(self, seed: int):
        shard = Shard(0, workers=1)
        # Teach the shard that brute force is hopeless (10 s per
        # request); a 5 s deadline then can't be met exactly and the
        # request downgrades to sampling.
        shard.observe_route_latency("brute_force", 10_000.0)
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 3))  # small => brute
        future = shard.submit(
            QueryRequest(
                query,
                tid,
                budget=AccuracyBudget(seed=seed),
                deadline_ms=5_000.0,
            )
        )
        response = future.result(timeout=30)
        stats = shard.stats()
        shard.close()
        return response, stats

    def test_predicted_miss_downgrades_to_sampling(self):
        response, stats = self._degraded_response(seed=7)
        assert response.degraded
        assert response.engine == "karp_luby"
        assert response.half_width > 0.0  # Wilson: never degenerate
        assert response.samples > 0
        assert stats.resilience.degraded == 1
        assert stats.engines.get("brute_force", 0) == 0

    def test_degraded_answers_are_deterministic(self):
        # Same seed + same (quantized) budget => bit-identical degraded
        # answers across independent shards and runs.
        first, _ = self._degraded_response(seed=7)
        second, _ = self._degraded_response(seed=7)
        assert first.probability == second.probability
        assert first.half_width == second.half_width
        assert first.samples == second.samples

    def test_no_deadline_never_degrades(self):
        shard = Shard(0, workers=1)
        shard.observe_route_latency("brute_force", 10_000.0)
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 3))
        response = shard.submit(QueryRequest(query, tid)).result(timeout=30)
        assert not response.degraded
        assert response.engine == "brute_force"
        shard.close()

    def test_degradation_can_be_disabled(self):
        shard = Shard(0, workers=1, degrade_to_sampling=False)
        shard.observe_route_latency("brute_force", 10_000.0)
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 3))
        response = shard.submit(
            QueryRequest(query, tid, deadline_ms=5_000.0)
        ).result(timeout=30)
        assert not response.degraded
        assert response.engine == "brute_force"
        shard.close()


class TestResilienceStats:
    def test_merged_sums_and_takes_worst_breaker(self):
        from repro.serving.stats import ResilienceStats

        a = ResilienceStats(shed=1, retries=2, breaker_state="closed")
        b = ResilienceStats(shed=3, failures=1, breaker_state="open")
        merged = a.merged(b)
        assert merged.shed == 4
        assert merged.retries == 2
        assert merged.failures == 1
        assert merged.breaker_state == "open"

    def test_service_stats_expose_resilience(self):
        with ShardedService(shards=2) as service:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            service.submit(q9(), tid).result(timeout=10)
            stats = service.stats()
            assert stats.resilience.shed == 0
            assert stats.resilience.breaker_state == "closed"
            shard = stats.shards[service.shard_of(tid)]
            assert shard.route_ewma_ms["extensional"] > 0.0

"""Tests for the sharded concurrent serving layer (:mod:`repro.serving`)."""

from __future__ import annotations

import random
import threading
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.engine import (
    BRUTE_FORCE_LIMIT,
    CompilationCache,
    evaluate,
    evaluate_batch,
)
from repro.queries.hqueries import HQuery, q9
from repro.serving import AccuracyBudget, ShardedService

pytestmark = pytest.mark.filterwarnings("error")


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def hard_non_monotone(k: int = 3) -> HQuery:
    """A non-monotone query outside d-D(PTIME) (``e(phi) != 0``)."""
    rng = random.Random(0xA11CE)
    while True:
        phi = BooleanFunction.random(k + 1, rng)
        if phi.euler_characteristic() != 0 and not phi.is_monotone():
            return HQuery(k, phi)


def distinct_tids(count: int, prob=Fraction(1, 2)):
    """TIDs over pairwise-distinct instance contents (distinct sizes)."""
    return [
        complete_tid(3, 2 + i, 2, prob=prob) for i in range(count)
    ]


def tids_covering_all_shards(service: ShardedService, prob=Fraction(1, 2)):
    """Distinct-content TIDs such that every shard owns at least one."""
    tids, covered, size = [], set(), 0
    while len(covered) < service.num_shards:
        size += 1
        if size > 64:
            raise AssertionError("shard digest failed to spread instances")
        tid = complete_tid(3, 1 + size, 2, prob=prob)
        index = service.shard_of(tid)
        if index not in covered:
            covered.add(index)
            tids.append(tid)
    return tids


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        with ShardedService(shards=4) as service:
            tid = complete_tid(3, 2, 2)
            first = service.shard_of(tid)
            assert 0 <= first < 4
            assert service.shard_of(tid) == first
            assert service.shard_of(tid.instance) == first

    def test_identical_content_routes_identically(self):
        # Two separately-built instances with the same facts share the
        # shard: routing depends on content, not object identity (and,
        # via Instance.shard_key, not on the process hash seed either).
        with ShardedService(shards=8) as service:
            a = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            b = complete_tid(3, 2, 2, prob=Fraction(1, 3))
            assert a.instance.shard_key() == b.instance.shard_key()
            assert service.shard_of(a) == service.shard_of(b)

    def test_register_pins_instance_and_reports_shard(self):
        with ShardedService(shards=4) as service:
            tid = complete_tid(3, 2, 2)
            index = service.register(tid)
            assert index == service.shard_of(tid)
            assert service.stats().shards[index].instances == 1

    def test_unregister_releases_every_ring_placement(self):
        # The gateway's replace-on-re-register path: unregistering
        # drops the placement entry and the fingerprint on every ring
        # shard, is idempotent, and does not break serving the same
        # content again later (it re-registers implicitly on submit).
        with ShardedService(shards=4) as service:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            service.register(tid, replicas=2)
            assert (
                sum(s.instances for s in service.stats().shards) == 2
            )
            service.unregister(tid)
            assert (
                sum(s.instances for s in service.stats().shards) == 0
            )
            service.unregister(tid)  # idempotent
            reference = evaluate_batch(q9(), [tid])
            response = service.submit(q9(), tid).result()
            assert response.probability == reference.probabilities[0]


class TestServingParity:
    def test_single_submit_matches_evaluate_batch(self):
        with ShardedService(shards=2) as service:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            response = service.submit(q9(), tid).result()
            reference = evaluate_batch(q9(), [tid])
            assert response.probability == reference.probabilities[0]
            assert response.engine == "extensional"
            assert response.shard == service.shard_of(tid)
            assert response.latency_ms >= 0.0

    def test_256_same_instance_requests_bit_for_float(self):
        # The acceptance workload: >= 4 shards, >= 256 same-instance
        # requests, probabilities identical to single-threaded
        # evaluate_batch, and cache hits showing up on the owning shard.
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        requests = [tid] * 256
        reference = evaluate_batch(q9(), requests)
        with ShardedService(shards=4, workers_per_shard=2) as service:
            first = service.submit_batch(q9(), requests)
            second = service.submit_batch(q9(), requests)
            stats = service.stats()
        for responses in (first, second):
            assert [r.probability for r in responses] == (
                reference.probabilities
            )
        owner = stats.shards[
            [s.requests for s in stats.shards].index(512)
        ]
        # Safe monotone queries are served extensionally: the owning
        # shard builds the lifted plan exactly once and never compiles.
        assert owner.plans.misses == 1
        assert owner.plans.hits >= 1
        assert owner.plan_hit_rate > 0.5
        assert owner.cache.misses == 0
        assert stats.requests == 512
        assert stats.engines == {"extensional": 512}

    def test_multi_shard_sweep_matches_and_all_shards_hit(self):
        with ShardedService(shards=4, workers_per_shard=1) as service:
            tids = tids_covering_all_shards(service)
            requests = [tid for tid in tids for _ in range(16)]
            reference = evaluate_batch(q9(), requests)
            first = service.submit_batch(q9(), requests)
            second = service.submit_batch(q9(), requests)
            stats = service.stats()
        assert [r.probability for r in first] == reference.probabilities
        assert [r.probability for r in second] == reference.probabilities
        for shard in stats.shards:
            assert shard.requests >= 32
            # Extensional route: one plan build per shard, then hits —
            # and no compilation anywhere.
            assert shard.plans.misses == 1
            assert shard.plans.hits >= 1
            assert shard.compile_ms == 0.0
            assert shard.p95_ms >= shard.p50_ms >= 0.0

    def test_microbatching_groups_same_work_requests(self):
        # One worker per shard: while the first drain compiles, the rest
        # of the wave queues up and later drains serve whole groups.
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        with ShardedService(shards=1, workers_per_shard=1) as service:
            futures = [service.submit(q9(), tid) for _ in range(128)]
            responses = [future.result() for future in futures]
            stats = service.stats()
        shard = stats.shards[0]
        assert shard.requests == 128
        assert shard.batches < 128  # at least one group formed
        assert shard.max_batch_size > 1
        assert shard.microbatched_requests > 0
        assert {r.probability for r in responses} == {
            responses[0].probability
        }
        assert max(r.batch_size for r in responses) == shard.max_batch_size

    def test_cancelled_future_does_not_poison_its_microbatch(self):
        # A client cancelling one queued request must not corrupt the
        # answers of the other requests microbatched with it: drains
        # claim futures before computing, so set_result never races a
        # cancel into InvalidStateError.
        from concurrent.futures import CancelledError

        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        reference = evaluate_batch(q9(), [tid]).probabilities[0]
        with ShardedService(shards=1, workers_per_shard=1) as service:
            futures = [service.submit(q9(), tid) for _ in range(64)]
            cancelled = [
                future for future in futures[1:] if future.cancel()
            ]
            for future in futures:
                if future in cancelled:
                    with pytest.raises(CancelledError):
                        future.result(timeout=60)
                else:
                    assert future.result(timeout=60).probability == (
                        reference
                    )
            # Cancelled entries leave the queue when their scheduled
            # drain claims them; with the fast extensional route that
            # can lag the last served result, so wait for quiescence.
            import time

            deadline = time.monotonic() + 30
            while (
                service.stats().queue_depth > 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = service.stats()
        # Cancelled requests were dropped at claim time, never served.
        assert stats.requests == 64 - len(cancelled)
        assert stats.queue_depth == 0

    def test_responses_keep_input_order(self):
        with ShardedService(shards=4) as service:
            tids = distinct_tids(5)
            requests = [tids[i % len(tids)] for i in range(40)]
            responses = service.submit_batch(q9(), requests)
            reference = evaluate_batch(q9(), requests)
        assert [r.probability for r in responses] == reference.probabilities


def nonmonotone_dd_query(k: int = 3) -> HQuery:
    """A zero-Euler but non-monotone query: d-D(PTIME), yet outside the
    extensional engine's reach — the compiled route's territory."""
    rng = random.Random(0xD1CE)
    while True:
        phi = BooleanFunction.random(k + 1, rng)
        if phi.euler_characteristic() == 0 and not phi.is_monotone():
            return HQuery(k, phi)


class TestEngineRouting:
    def test_safe_monotone_routes_extensionally_without_compiling(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        with ShardedService(shards=2) as service:
            response = service.submit(q9(), tid).result()
            stats = service.stats()
        assert response.engine == "extensional"
        exact = evaluate(q9(), tid, method="extensional")
        assert response.probability == pytest.approx(
            float(exact.probability), abs=1e-12
        )
        assert all(s.cache.misses == 0 for s in stats.shards)
        assert sum(s.plans.misses for s in stats.shards) == 1

    def test_non_monotone_dd_still_compiles_and_microbatches(self):
        query = nonmonotone_dd_query()
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 2))
        requests = [tid] * 64
        reference = evaluate_batch(query, requests)
        with ShardedService(shards=2, workers_per_shard=1) as service:
            responses = service.submit_batch(query, requests)
            stats = service.stats()
        assert [r.probability for r in responses] == reference.probabilities
        assert stats.engines == {"intensional": 64}
        assert sum(s.cache.misses for s in stats.shards) == 1
        assert sum(s.plans.misses for s in stats.shards) == 0

    def test_extensional_microbatch_bit_for_float_vs_direct(self):
        # Distinct probability maps over one instance, interleaved:
        # microbatched extensional answers must equal the direct
        # evaluate_batch floats, float for float.
        rng = random.Random(17)
        tids = []
        for _ in range(24):
            tid = complete_tid(3, 3, 2, prob=Fraction(1, 2))
            for t in tid.instance.tuple_ids():
                tid.set_probability(t, Fraction(rng.randrange(0, 9), 8))
            tids.append(tid)
        reference = evaluate_batch(q9(), tids)
        assert reference.engine == "extensional"
        with ShardedService(shards=2, workers_per_shard=2) as service:
            responses = service.submit_batch(q9(), tids)
        assert [r.probability for r in responses] == reference.probabilities


class TestHardRoutes:
    def test_small_hard_instance_routes_to_brute_force(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 3))
        assert len(tid) <= BRUTE_FORCE_LIMIT
        with ShardedService(shards=2) as service:
            response = service.submit(query, tid).result()
        assert response.engine == "brute_force"
        assert response.probability == float(
            probability_by_world_enumeration(query, tid)
        )
        assert response.half_width == 0.0

    def test_large_hard_ucq_routes_to_karp_luby(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        assert len(tid) > BRUTE_FORCE_LIMIT
        budget = AccuracyBudget(epsilon=0.1, seed=11)
        with ShardedService(shards=2) as service:
            response = service.submit(query, tid, budget).result()
            replay = service.submit(query, tid, budget).result()
        assert response.engine == "karp_luby"
        # The budget-adaptive sampler never draws beyond the fixed-count
        # worst case, and reports how many waves it took.
        assert 0 < response.samples <= budget.samples()
        assert response.waves >= 1
        assert response.half_width > 0.0
        assert 0.0 <= response.probability <= 1.0
        # Same seed, same sample path: shard answers are reproducible.
        assert replay.probability == response.probability
        assert replay.half_width == response.half_width
        assert replay.samples == response.samples

    def test_large_hard_non_monotone_routes_to_monte_carlo(self):
        query = hard_non_monotone(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        assert len(tid) > BRUTE_FORCE_LIMIT
        with ShardedService(shards=2) as service:
            response = service.submit(query, tid).result()
        assert response.engine == "monte_carlo"
        assert 0.0 <= response.probability <= 1.0
        assert response.samples > 0

    def test_default_budget_applies_when_request_has_none(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(
            epsilon=0.2, min_samples=10, max_samples=77, seed=3
        )
        with ShardedService(shards=1, default_budget=budget) as service:
            response = service.submit(query, tid).result()
        assert 0 < response.samples <= budget.samples() <= 77


class TestSamplingRoute:
    """The grouped vectorized sampling sweeps and their observability."""

    def test_microbatched_hard_requests_share_one_sweep(self):
        import time
        from concurrent.futures import Future

        from repro.serving.api import QueryRequest
        from repro.serving.shard import Shard, _Pending

        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(epsilon=0.1, seed=21)
        shard = Shard(0)
        try:
            group = [
                _Pending(
                    QueryRequest(query, tid, budget),
                    Future(),
                    time.perf_counter(),
                )
                for _ in range(5)
            ]
            for pending in group:
                pending.future.set_running_or_notify_cancel()
            shard._process(group)
            responses = [pending.future.result() for pending in group]
        finally:
            shard.close()
        # One shared sweep served all five same-budget same-map requests.
        stats = shard.stats()
        assert stats.sampling.requests == 5
        assert stats.sampling.sweeps == 1
        assert stats.sampling.waves >= 1
        assert stats.sampling.samples == responses[0].samples
        assert len({r.probability for r in responses}) == 1
        assert all(r.engine == "karp_luby" for r in responses)

    def test_distinct_budgets_get_distinct_sweeps(self):
        import time
        from concurrent.futures import Future

        from repro.serving.api import QueryRequest
        from repro.serving.shard import Shard, _Pending

        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        shard = Shard(0)
        try:
            group = []
            for seed in (1, 1, 2):
                pending = _Pending(
                    QueryRequest(
                        query, tid, AccuracyBudget(epsilon=0.1, seed=seed)
                    ),
                    Future(),
                    time.perf_counter(),
                )
                pending.future.set_running_or_notify_cancel()
                group.append(pending)
            shard._process(group)
            responses = [pending.future.result() for pending in group]
        finally:
            shard.close()
        stats = shard.stats()
        assert stats.sampling.requests == 3
        assert stats.sampling.sweeps == 2
        assert responses[0].probability == responses[1].probability

    def test_sampling_stats_aggregate_service_wide(self):
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 3, 3, prob=Fraction(1, 3))
        budget = AccuracyBudget(epsilon=0.1, seed=5)
        with ShardedService(shards=2) as service:
            for _ in range(3):
                service.submit(query, tid, budget).result()
            stats = service.stats()
        assert stats.sampling.requests == 3
        assert 1 <= stats.sampling.sweeps <= 3
        assert stats.sampling.samples > 0
        assert stats.sampling.max_half_width > 0.0
        assert stats.engines.get("karp_luby") == 3

    def test_exact_routes_leave_sampling_stats_empty(self):
        with ShardedService(shards=1) as service:
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            service.submit(q9(), tid).result()
            stats = service.stats()
        assert stats.sampling.requests == 0
        assert stats.sampling.sweeps == 0


class TestAccuracyBudget:
    def test_sample_arithmetic(self):
        assert AccuracyBudget(epsilon=0.049).samples() == 400
        assert AccuracyBudget(epsilon=0.5, min_samples=100).samples() == 100
        assert (
            AccuracyBudget(epsilon=0.001, max_samples=5000).samples() == 5000
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyBudget(epsilon=0.0)
        with pytest.raises(ValueError):
            AccuracyBudget(min_samples=0)
        with pytest.raises(ValueError):
            AccuracyBudget(min_samples=10, max_samples=5)


class TestShardIsolation:
    def test_shards_never_share_compiled_circuits(self):
        # Distinct fingerprints on distinct shards: each shard's cache
        # holds only its own instances' keys, with no overlap.
        with ShardedService(shards=4, workers_per_shard=1) as service:
            tids = tids_covering_all_shards(service)
            service.submit_batch(q9(), tids * 4)
            owners = {
                service.shard_of(tid): tid.instance.content_fingerprint()
                for tid in tids
            }
            for index, shard in enumerate(service._shards):
                keys = shard.cache.keys()
                fingerprints = {key[1] for key in keys}
                for fingerprint in fingerprints:
                    assert fingerprint == owners[index]
            all_keys = [
                key
                for shard in service._shards
                for key in shard.cache.keys()
            ]
        assert len(all_keys) == len(set(all_keys))

    def test_per_shard_caches_are_independent_objects(self):
        # The same (query, instance) compiled through two caches yields
        # two distinct frozen circuits: no hidden module-global sharing.
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        first_cache = CompilationCache()
        second_cache = CompilationCache()
        first, hit_a = first_cache.get_or_compile(q9(), tid.instance)
        second, hit_b = second_cache.get_or_compile(q9(), tid.instance)
        assert not hit_a and not hit_b
        assert first is not second
        assert first.probability(tid) == second.probability(tid)
        assert first_cache.stats().misses == 1
        assert second_cache.stats().misses == 1

    def test_concurrent_submits_from_many_threads(self):
        # Hammer one service from several client threads; every answer
        # must match the single-threaded reference and the counters must
        # add up.
        tids = distinct_tids(4)
        reference = {
            id(tid): evaluate_batch(q9(), [tid]).probabilities[0]
            for tid in tids
        }
        errors: list[BaseException] = []
        with ShardedService(shards=4, workers_per_shard=2) as service:
            barrier = threading.Barrier(6)

            def client():
                try:
                    barrier.wait()
                    for round_number in range(8):
                        futures = [
                            service.submit(q9(), tid) for tid in tids
                        ]
                        for tid, future in zip(tids, futures):
                            response = future.result(timeout=60)
                            assert (
                                response.probability == reference[id(tid)]
                            )
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert not errors
        assert stats.requests == 6 * 8 * len(tids)
        assert stats.queue_depth == 0
        # One lifted plan per busy shard (keyed by the query, not the
        # instance), no compilations at all.
        for shard in stats.shards:
            if shard.requests:
                assert shard.plans.misses == 1
            assert shard.cache.misses == 0
        assert stats.engines == {"extensional": stats.requests}


class TestLifecycle:
    def test_close_is_idempotent_and_context_manager_closes(self):
        service = ShardedService(shards=1)
        tid = complete_tid(3, 2, 2)
        service.submit(q9(), tid).result()
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(q9(), tid)
        # The rejected request must not linger as a phantom queue entry.
        assert service.stats().queue_depth == 0

    def test_stats_on_idle_service(self):
        with ShardedService(shards=3) as service:
            stats = service.stats()
        assert stats.requests == 0
        assert stats.p50_ms == 0.0
        assert stats.cache_hit_rate == 0.0
        assert len(stats.shards) == 3


class TestServingAgainstExactEngine:
    def test_served_floats_track_exact_probabilities(self):
        # The serving layer runs the float backend; its answers must
        # stay within float error of the exact engine's Fractions.
        with ShardedService(shards=4) as service:
            for tid in distinct_tids(4, prob=Fraction(1, 3)):
                served = service.submit(q9(), tid).result()
                exact = evaluate(q9(), tid, method="intensional")
                assert served.probability == pytest.approx(
                    float(exact.probability), abs=1e-9
                )

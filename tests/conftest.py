"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import random_tid
from repro.queries.hqueries import phi_9


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def phi9() -> BooleanFunction:
    """The paper's running example phi_9."""
    return phi_9()


def random_zero_euler(nvars: int, rng: random.Random) -> BooleanFunction:
    """A random non-constant function with zero Euler characteristic,
    built by pairing up equal numbers of even- and odd-size models."""
    while True:
        phi = BooleanFunction.random(nvars, rng)
        if phi.euler_characteristic() == 0 and 0 < phi.sat_count():
            return phi


def small_random_tid(k: int, rng: random.Random, max_tuples: int = 13):
    """A random TID small enough for brute-force validation."""
    for _ in range(50):
        tid = random_tid(k, 2, 2, rng, tuple_density=0.45)
        if 0 < len(tid) <= max_tuples:
            return tid
    raise RuntimeError("could not draw a small TID")

"""Integration test: the full probabilistic-database workflow.

Simulates how a downstream system (a ProvSQL-style engine) would use the
library end to end: ingest a dataset, classify incoming queries, compile
the safe ones once, persist the compiled lineage, then serve a stream of
probability requests under continuous tuple-probability updates and
evidence conditioning — asserting exact consistency with the brute-force
oracle at every step.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.circuits import conditioned_probability, probability
from repro.circuits.serialization import dumps, loads
from repro.core.boolean_function import BooleanFunction
from repro.db.tid import TupleIndependentDatabase
from repro.pqe import (
    Region,
    classify,
    evaluate,
    probability_by_world_enumeration,
)
from repro.queries.hqueries import HQuery, phi_9


def ingest_dataset() -> TupleIndependentDatabase:
    """A small curated dataset over the k = 3 schema."""
    tid = TupleIndependentDatabase()
    rows = [
        ("R", ("u1",), Fraction(4, 5)),
        ("R", ("u2",), Fraction(1, 2)),
        ("T", ("v1",), Fraction(2, 3)),
        ("S1", ("u1", "v1"), Fraction(1, 2)),
        ("S2", ("u1", "v1"), Fraction(3, 4)),
        ("S3", ("u1", "v1"), Fraction(1, 4)),
        ("S1", ("u2", "v1"), Fraction(1, 3)),
        ("S2", ("u2", "v1"), Fraction(1, 5)),
    ]
    for relation, values, p in rows:
        tid.add(relation, values, p)
    for name, arity in (
        ("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)
    ):
        tid.instance.declare(name, arity)
    return tid


class TestWorkflow:
    def test_full_lifecycle(self):
        tid = ingest_dataset()

        # 1. A workload of queries arrives; classify before running.
        workload = {
            "q9": HQuery(3, phi_9()),
            "h1_alone": HQuery(3, BooleanFunction.variable(1, 4)),
            "hard": HQuery(
                3,
                BooleanFunction.variable(0, 4)
                | BooleanFunction.variable(1, 4)
                | BooleanFunction.variable(2, 4)
                | BooleanFunction.variable(3, 4),
            ),
        }
        verdicts = {name: classify(q) for name, q in workload.items()}
        assert verdicts["q9"].region is Region.ZERO_EULER
        assert verdicts["h1_alone"].region is Region.DEGENERATE
        assert verdicts["hard"].region is Region.HARD

        # 2. Evaluate everything through the facade; the safe monotone
        #    queries route extensionally (no lineage), the hard query
        #    falls back to brute force on this small instance.
        results = {
            name: evaluate(query, tid) for name, query in workload.items()
        }
        for name, query in workload.items():
            oracle = probability_by_world_enumeration(query, tid)
            assert results[name].probability == oracle, name
        assert results["hard"].engine == "brute_force"
        assert results["q9"].engine == "extensional"
        assert results["h1_alone"].engine == "extensional"

        # 3. Persist a compiled q9 lineage (the intensional engine,
        #    requested explicitly) and reload it (cold start).
        intensional_q9 = evaluate(workload["q9"], tid, method="intensional")
        assert intensional_q9.probability == results["q9"].probability
        stored = dumps(intensional_q9.compiled.circuit)
        reloaded = loads(stored)

        # 4. Serve a stream of updates + queries against the reloaded
        #    circuit; cross-check each answer exactly.
        rng = random.Random(7)
        tuple_ids = tid.instance.tuple_ids()
        for round_number in range(6):
            victim = tuple_ids[rng.randrange(len(tuple_ids))]
            tid.set_probability(victim, Fraction(rng.randint(0, 6), 6))
            served = probability(reloaded, tid.probability_map())
            oracle = probability_by_world_enumeration(workload["q9"], tid)
            assert served == oracle, f"round {round_number}"

        # 5. Conditioning on evidence: a tuple reported present for sure.
        evidence_tuple = tuple_ids[0]
        conditioned = conditioned_probability(
            reloaded, tid.probability_map(), {evidence_tuple: True}
        )
        tid.set_probability(evidence_tuple, Fraction(1))
        oracle = probability_by_world_enumeration(workload["q9"], tid)
        assert conditioned == oracle

    def test_lifecycle_with_non_monotone_query(self):
        # "The query holds through the h3 shortcut but NOT through the
        # chain core" — a genuinely non-monotone policy, still zero-Euler.
        tid = ingest_dataset()
        v0, v1, v2, v3 = (BooleanFunction.variable(i, 4) for i in range(4))
        phi = (v3 & ~(v0 & v1 & v2)) | (~v3 & v0 & v1 & v2)
        if phi.euler_characteristic() != 0:
            phi = phi ^ BooleanFunction.exactly(4, [])  # adjust parity
        query = HQuery(3, phi)
        if phi.euler_characteristic() == 0:
            result = evaluate(query, tid)
            oracle = probability_by_world_enumeration(query, tid)
            assert result.probability == oracle
            assert result.engine == "intensional"

"""Documentation correctness: the README quickstart must run, and the
doctest examples embedded in module docstrings must hold."""

from __future__ import annotations

import doctest

import pytest


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        # The exact snippet from README.md / repro.__doc__.
        from fractions import Fraction

        from repro import HQuery, phi_9, complete_tid
        from repro.pqe import (
            extensional_probability,
            intensional_probability,
            probability_by_world_enumeration,
        )

        query = HQuery(3, phi_9())
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        assert (
            extensional_probability(query, tid)
            == intensional_probability(query, tid)
            == probability_by_world_enumeration(query, tid)
        )


DOCTEST_MODULES = [
    "repro.core.valuations",
    "repro.core.boolean_function",
    "repro.core.formula",
    "repro.pqe.safe_plans",
    "repro.db.relation",
    "repro.serving.service",
]


class TestModuleDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module_name}: {results}"

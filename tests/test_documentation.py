"""Documentation correctness: the README quickstart must run, the
doctest examples embedded in module docstrings must hold, and the
repo's own markdown must not point at files outside this checkout."""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        # The exact snippet from README.md / repro.__doc__.
        from fractions import Fraction

        from repro import HQuery, phi_9, complete_tid
        from repro.pqe import (
            extensional_probability,
            intensional_probability,
            probability_by_world_enumeration,
        )

        query = HQuery(3, phi_9())
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        assert (
            extensional_probability(query, tid)
            == intensional_probability(query, tid)
            == probability_by_world_enumeration(query, tid)
        )


DOCTEST_MODULES = [
    "repro.core.valuations",
    "repro.core.boolean_function",
    "repro.core.formula",
    "repro.pqe.safe_plans",
    "repro.db.relation",
    "repro.serving.service",
]


class TestModuleDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module_name}: {results}"


#: Markdown maintained by hand in this repo.  Generated context files
#: (PAPER.md, PAPERS.md, SNIPPETS.md, ISSUE.md, CHANGES.md) are inputs,
#: not documentation, and are excluded.
CHECKED_MARKDOWN = sorted(
    [REPO_ROOT / "ROADMAP.md", *(REPO_ROOT / "docs").glob("*.md")]
)


class TestMarkdownLinks:
    """Docs must be self-contained: no references to absolute paths
    outside the checkout, and every repo-relative path or backtick
    reference to a tracked artifact must exist."""

    @pytest.mark.parametrize(
        "path", CHECKED_MARKDOWN, ids=lambda p: p.name
    )
    def test_no_out_of_tree_paths(self, path):
        text = path.read_text()
        stray = [
            line
            for line in text.splitlines()
            if re.search(r"/root/(?!repo\b)", line)
        ]
        assert not stray, (
            f"{path.name} references paths outside the checkout: {stray}"
        )

    @pytest.mark.parametrize(
        "path", CHECKED_MARKDOWN, ids=lambda p: p.name
    )
    def test_referenced_repo_files_exist(self, path):
        text = path.read_text()
        missing = []
        # `docs/foo.md`-style backtick references and [text](target)
        # markdown links to repo-relative files.
        referenced = set(
            re.findall(r"`((?:docs|examples|benchmarks|src|tests)/[^`\s]+)`", text)
        )
        for link in re.findall(r"\]\(([^)#]+)\)", text):
            if not link.startswith(("http://", "https://", "mailto:")):
                referenced.add(link)
        for reference in sorted(referenced):
            reference = reference.split("::")[0]  # pytest node ids
            target = (
                REPO_ROOT / reference
                if not reference.startswith(".")
                else path.parent / reference
            )
            if not target.exists():
                missing.append(reference)
        assert not missing, f"{path.name} references missing files: {missing}"

"""Tests for the intensional pipeline (Theorem 5.2 end to end)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import assert_d_d
from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.intensional import (
    NotCompilableError,
    compile_lineage,
    compile_lineage_ddnnf,
    probability as intensional_probability,
    transfer_lineage,
)
from repro.queries.hqueries import HQuery, phi_9, q9
from tests.conftest import random_zero_euler, small_random_tid


class TestCompileQ9:
    """Corollary 5.3 on the running example."""

    def test_compiled_circuit_is_d_d(self):
        tid = complete_tid(3, 2, 2)
        compiled = compile_lineage(q9(), tid.instance)
        assert_d_d(compiled.circuit)

    def test_probability_matches_both_engines(self):
        rng = random.Random(401)
        for _ in range(4):
            tid = small_random_tid(3, rng)
            value = intensional_probability(q9(), tid)
            assert value == extensional_probability(q9(), tid)
            assert value == probability_by_world_enumeration(q9(), tid)

    def test_lineage_semantics_exact(self):
        # The compiled circuit agrees with the ground-truth lineage on
        # every sub-instance.
        rng = random.Random(403)
        tid = small_random_tid(3, rng, max_tuples=11)
        compiled = compile_lineage(q9(), tid.instance)
        tuple_ids, truth = q9().lineage_truth_table(tid.instance)
        for mask in range(1 << len(tuple_ids)):
            assignment = {
                tuple_ids[j]: bool(mask >> j & 1)
                for j in range(len(tuple_ids))
            }
            assert compiled.circuit.evaluate(assignment) == truth(mask)


class TestCompileGeneral:
    def test_random_zero_euler_functions(self):
        rng = random.Random(405)
        for _ in range(5):
            phi = random_zero_euler(4, rng)
            query = HQuery(3, phi)
            tid = small_random_tid(3, rng)
            compiled = compile_lineage(query, tid.instance)
            assert_d_d(compiled.circuit)
            assert compiled.probability(tid) == (
                probability_by_world_enumeration(query, tid)
            )

    def test_degenerate_shortcut(self):
        phi = BooleanFunction.variable(2, 4)
        tid = complete_tid(3, 1, 1)
        compiled = compile_lineage(HQuery(3, phi), tid.instance)
        assert compiled.fragmentation.template.num_holes == 1
        assert_d_d(compiled.circuit)

    def test_nonzero_euler_rejected(self):
        phi = BooleanFunction.exactly(4, [])  # e = 1
        tid = complete_tid(3, 1, 1)
        with pytest.raises(NotCompilableError):
            compile_lineage(HQuery(3, phi), tid.instance)

    def test_bottom_and_top(self):
        tid = complete_tid(3, 1, 1)
        bottom = compile_lineage(
            HQuery(3, BooleanFunction.bottom(4)), tid.instance
        )
        assert bottom.probability(tid) == 0
        top = compile_lineage(HQuery(3, BooleanFunction.top(4)), tid.instance)
        assert top.probability(tid) == 1

    def test_k2_exhaustive_zero_euler(self):
        # All 3-variable functions with e = 0 compile and agree with brute
        # force on one fixed instance.
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 2))
        checked = 0
        for table in range(256):
            phi = BooleanFunction(3, table)
            if phi.euler_characteristic() != 0:
                continue
            query = HQuery(2, phi)
            compiled = compile_lineage(query, tid.instance)
            assert compiled.probability(
                tid
            ) == probability_by_world_enumeration(query, tid), table
            checked += 1
        assert checked == 70  # C(8, 4) zero-Euler functions on 3 variables.


class TestDdnnfPath:
    def test_q9_compiles_to_ddnnf(self):
        tid = complete_tid(3, 1, 2)
        compiled = compile_lineage_ddnnf(q9(), tid.instance)
        assert compiled.is_nnf
        assert compiled.circuit.is_nnf()
        assert_d_d(compiled.circuit)

    def test_ddnnf_requires_matching(self):
        # A function whose colored subgraph has no perfect matching: a
        # single isolated colored pair cannot exist with e=0... use the
        # searched Figure-5 witness restricted check instead: simplest is
        # two non-adjacent models of opposite parity.
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b111])
        assert phi.euler_characteristic() == 0
        tid = complete_tid(2, 1, 1)
        with pytest.raises(NotCompilableError):
            compile_lineage_ddnnf(HQuery(2, phi), tid.instance)

    def test_non_matching_function_still_compiles_to_dd(self):
        phi = BooleanFunction.from_satisfying(3, [0b000, 0b111])
        rng = random.Random(411)
        tid = small_random_tid(2, rng)
        query = HQuery(2, phi)
        compiled = compile_lineage(query, tid.instance)
        assert not compiled.is_nnf  # negations were necessary
        assert_d_d(compiled.circuit)
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )


class TestTransfer:
    """Theorem 6.2(b) constructively."""

    def test_transfer_between_equal_euler(self):
        rng = random.Random(419)
        phi_a = random_zero_euler(4, rng)
        phi_b = random_zero_euler(4, rng)
        tid = small_random_tid(3, rng)
        query_a, query_b = HQuery(3, phi_a), HQuery(3, phi_b)
        compiled_a = compile_lineage(query_a, tid.instance)
        transferred = transfer_lineage(compiled_a, query_b, tid.instance)
        assert_d_d(transferred.circuit)
        assert transferred.probability(tid) == (
            probability_by_world_enumeration(query_b, tid)
        )

    def test_transfer_rejects_different_euler(self):
        tid = complete_tid(3, 1, 1)
        compiled = compile_lineage(q9(), tid.instance)
        target = HQuery(3, BooleanFunction.exactly(4, []))
        with pytest.raises(ValueError):
            transfer_lineage(compiled, target, tid.instance)


class TestUpdateReuse:
    """The introduction's motivating reuse: update probabilities and
    re-evaluate the compiled lineage without recompiling."""

    def test_update_and_reevaluate(self):
        rng = random.Random(421)
        tid = small_random_tid(3, rng)
        compiled = compile_lineage(q9(), tid.instance)
        before = compiled.probability(tid)
        some_tuple = tid.instance.tuple_ids()[0]
        tid.set_probability(some_tuple, Fraction(1, 7))
        after = compiled.probability(tid)
        assert after == probability_by_world_enumeration(q9(), tid)
        del before

"""The compiled evaluation layer: tapes, float/batch backends, caches.

Property tests pin the new fast path to the semantics of the seed
implementation: the tape backends must agree with the historical per-gate
``Gate``-object loop (reproduced verbatim below as the reference oracle)
on randomly generated validated d-Ds, exactly for ``Fraction`` maps and to
float precision for the float/batch backends.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits.circuit import Circuit, GateKind
from repro.circuits.evaluator import EvaluationTape, tape_for
from repro.circuits.probability import (
    gate_probabilities,
    probability,
    sample_model,
)
from repro.circuits.validation import (
    check_determinism_by_enumeration,
    is_decomposable,
)
from repro.db.generator import complete_tid
from repro.pqe.engine import (
    clear_compilation_cache,
    compilation_cache_stats,
    evaluate,
    evaluate_batch,
)
from repro.pqe.extensional import probability as extensional_probability
from repro.pqe.intensional import compile_lineage
from repro.queries.hqueries import q9


def reference_gate_probabilities(circuit, prob):
    """The seed per-gate loop, kept verbatim as the semantic oracle."""
    one = _reference_one_like(prob)
    values = [0] * len(circuit)
    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR:
            values[gate_id] = prob.get(gate.payload, 0)
        elif gate.kind is GateKind.CONST:
            values[gate_id] = one if gate.payload else one - one
        elif gate.kind is GateKind.NOT:
            values[gate_id] = one - values[gate.inputs[0]]
        elif gate.kind is GateKind.AND:
            product = one
            for input_id in gate.inputs:
                product = product * values[input_id]
            values[gate_id] = product
        else:
            total = one - one
            for input_id in gate.inputs:
                total = total + values[input_id]
            values[gate_id] = total
    return values


def _reference_one_like(prob):
    for value in prob.values():
        if isinstance(value, Fraction):
            return Fraction(1)
        return 1.0
    return Fraction(1)


def random_dd(rng: random.Random, labels: list[str]) -> Circuit:
    """A random validated d-D over (a subset of) ``labels``.

    Decomposable ∧-gates split the variable set; deterministic ∨-gates are
    Shannon expansions on one variable, so their branches are disjoint by
    construction.
    """
    circuit = Circuit()

    def build(variables: list[str]) -> int:
        if not variables:
            return circuit.add_const(rng.random() < 0.7)
        if len(variables) == 1 or rng.random() < 0.15:
            gate = circuit.add_var(variables[0])
            if rng.random() < 0.3:
                gate = circuit.add_not(gate)
            return gate
        if rng.random() < 0.45:
            cut = rng.randrange(1, len(variables))
            return circuit.add_and(
                [build(variables[:cut]), build(variables[cut:])]
            )
        pivot, rest = variables[0], variables[1:]
        positive = circuit.add_and(
            [circuit.add_var(pivot), build(rest)]
        )
        negative = circuit.add_and(
            [circuit.add_not(circuit.add_var(pivot)), build(rest)]
        )
        gate = circuit.add_or([positive, negative])
        if rng.random() < 0.1:
            gate = circuit.add_not(gate)
        return gate

    circuit.set_output(build(labels))
    return circuit


def random_prob_map(rng: random.Random, circuit: Circuit, exact: bool):
    prob = {}
    for label in circuit.variables():
        if rng.random() < 0.15:
            continue  # Exercise the missing-label-defaults-to-0 path.
        if exact:
            prob[label] = Fraction(rng.randrange(0, 11), 10)
        else:
            prob[label] = rng.random()
    return prob


class TestTapeAgainstReference:
    def test_random_dds_are_valid(self):
        rng = random.Random(7)
        for _ in range(10):
            circuit = random_dd(rng, ["a", "b", "c", "d", "e"])
            assert is_decomposable(circuit)
            assert check_determinism_by_enumeration(circuit)

    def test_exact_gate_values_bit_identical(self):
        rng = random.Random(11)
        for _ in range(40):
            circuit = random_dd(rng, ["a", "b", "c", "d", "e", "f"])
            prob = random_prob_map(rng, circuit, exact=True)
            tape = tape_for(circuit)
            assert tape.gate_values(prob) == reference_gate_probabilities(
                circuit, prob
            )
            assert tape.evaluate(prob) == reference_gate_probabilities(
                circuit, prob
            )[circuit.output]

    def test_gate_probabilities_entry_point_matches_reference(self):
        rng = random.Random(13)
        for _ in range(20):
            circuit = random_dd(rng, ["a", "b", "c", "d"])
            prob = random_prob_map(rng, circuit, exact=True)
            assert gate_probabilities(
                circuit, prob
            ) == reference_gate_probabilities(circuit, prob)

    def test_float_backend_close_to_reference(self):
        rng = random.Random(17)
        for _ in range(40):
            circuit = random_dd(rng, ["a", "b", "c", "d", "e"])
            prob = random_prob_map(rng, circuit, exact=False)
            expected = reference_gate_probabilities(circuit, prob)[
                circuit.output
            ]
            got = tape_for(circuit).evaluate_floats(prob)
            assert got == pytest.approx(expected, abs=1e-12)

    def test_batched_matches_single(self):
        rng = random.Random(19)
        for _ in range(10):
            circuit = random_dd(rng, ["a", "b", "c", "d", "e"])
            tape = tape_for(circuit)
            maps = [
                random_prob_map(rng, circuit, exact=False)
                for _ in range(9)
            ]
            batch = tape.evaluate_batch(maps)
            singles = [tape.evaluate_floats(m) for m in maps]
            assert batch == pytest.approx(singles, abs=1e-12)

    def test_batch_fallback_matches_vectorized(self):
        rng = random.Random(23)
        circuit = random_dd(rng, ["a", "b", "c", "d"])
        tape = tape_for(circuit)
        maps = [random_prob_map(rng, circuit, exact=False) for _ in range(6)]
        rows = [
            [float(m.get(label, 0)) for m in maps]
            for label in tape.var_labels
        ]
        fallback = tape._batch_fallback(tape._compiled(), rows, len(maps))
        assert tape.evaluate_batch(maps) == pytest.approx(
            fallback, abs=1e-12
        )

    def test_batch_rejects_conflicting_arguments(self):
        circuit = random_dd(random.Random(1), ["a", "b"])
        tape = tape_for(circuit)
        with pytest.raises(ValueError):
            tape.evaluate_batch([{}], matrix=[[0.5]])
        with pytest.raises(ValueError):
            tape.evaluate_batch()

    def test_empty_batch(self):
        circuit = random_dd(random.Random(2), ["a", "b"])
        assert tape_for(circuit).evaluate_batch([]) == []

    def test_constant_tape_batch(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_const(True))
        tape = tape_for(circuit)
        assert tape.evaluate_batch([{}, {}, {}]) == [1.0, 1.0, 1.0]
        # The matrix layout has no way to carry a batch size here.
        with pytest.raises(ValueError, match="no variable slots"):
            tape.evaluate_batch(matrix=[])


class TestTapeCache:
    def test_tape_is_memoized_per_circuit(self):
        circuit = random_dd(random.Random(3), ["a", "b", "c"])
        assert tape_for(circuit) is tape_for(circuit)

    def test_growing_the_circuit_invalidates_the_tape(self):
        circuit = random_dd(random.Random(5), ["a", "b", "c"])
        before = tape_for(circuit)
        circuit.set_output(circuit.add_not(circuit.output))
        after = tape_for(circuit)
        assert after is not before
        prob = {label: Fraction(1, 3) for label in circuit.variables()}
        assert probability(circuit, prob) == 1 - before.evaluate(prob)

    def test_tape_without_output_supports_gate_values_only(self):
        circuit = Circuit()
        gate = circuit.add_var("x")
        circuit.add_not(gate)
        tape = EvaluationTape.from_circuit(circuit)
        values = tape.gate_values({"x": Fraction(1, 4)})
        assert values == [Fraction(1, 4), Fraction(3, 4)]
        with pytest.raises(ValueError):
            tape.evaluate({"x": Fraction(1, 4)})


class TestCompiledLineageBatch:
    def test_probability_batch_matches_exact(self):
        rng = random.Random(31)
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        compiled = compile_lineage(q9(), tid.instance)
        maps = []
        for _ in range(8):
            maps.append(
                {
                    t: Fraction(rng.randrange(0, 11), 10)
                    for t in tid.instance.tuple_ids()
                }
            )
        batch = compiled.probability_batch(maps)
        exact = [float(probability(compiled.circuit, m)) for m in maps]
        assert batch == pytest.approx(exact, abs=1e-10)

    def test_probability_batch_accepts_tids(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 3))
        compiled = compile_lineage(q9(), tid.instance)
        batch = compiled.probability_batch([tid, tid])
        expected = float(compiled.probability(tid))
        assert batch == pytest.approx([expected, expected], abs=1e-12)

    def test_tape_cached_on_compiled_object(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        compiled = compile_lineage(q9(), tid.instance)
        assert compiled.tape is compiled.tape

    def test_exact_probability_agrees_with_extensional(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(2, 5))
        compiled = compile_lineage(q9(), tid.instance)
        assert compiled.probability(tid) == extensional_probability(
            q9(), tid
        )


class TestEngineCompilationCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_compilation_cache()
        yield
        clear_compilation_cache()

    def test_second_evaluate_reuses_compiled_circuit(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        first = evaluate(q9(), tid, method="intensional")
        second = evaluate(q9(), tid, method="intensional")
        assert not first.cache_hit
        assert second.cache_hit
        assert second.compiled is first.compiled
        assert second.probability == first.probability
        stats = compilation_cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_cached_circuit_is_frozen_against_mutation(self):
        # The cached CompiledLineage is shared among all holders; a caller
        # trying to grow it (previously safe, when every evaluate()
        # compiled privately) must fail loudly instead of corrupting
        # other holders' results.
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        first = evaluate(q9(), tid, method="intensional")
        circuit = first.compiled.circuit
        with pytest.raises(ValueError, match="frozen"):
            circuit.add_not(circuit.output)
        with pytest.raises(ValueError, match="frozen"):
            circuit.set_output(0)
        second = evaluate(q9(), tid, method="intensional")
        assert second.cache_hit
        assert second.probability == first.probability

    def test_instance_mutation_misses_the_cache(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        evaluate(q9(), tid, method="intensional")
        tid.add("R", ("extra",), Fraction(1, 2))
        result = evaluate(q9(), tid, method="intensional")
        assert not result.cache_hit
        assert compilation_cache_stats().misses == 2

    def test_evaluate_batch_shares_one_compilation(self):
        rng = random.Random(37)
        tids = []
        for _ in range(5):
            tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
            for t in tid.instance.tuple_ids():
                tid.set_probability(t, Fraction(rng.randrange(0, 11), 10))
            tids.append(tid)
        result = evaluate_batch(q9(), tids, method="intensional")
        assert result.engine == "intensional"
        per_tid = [
            float(evaluate(q9(), t, method="intensional").probability)
            for t in tids
        ]
        assert result.probabilities == pytest.approx(per_tid, abs=1e-10)
        # All five TIDs share one instance fingerprint: one compilation.
        assert compilation_cache_stats().misses == 1

    def test_evaluate_batch_rejects_unknown_method(self):
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 2))
        with pytest.raises(ValueError):
            evaluate_batch(q9(), [tid], method="brute_force")


class TestSampleModelExactDraw:
    def test_samples_satisfy_circuit(self):
        rng = random.Random(41)
        tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
        compiled = compile_lineage(q9(), tid.instance)
        prob = tid.probability_map()
        for _ in range(25):
            world = sample_model(compiled.circuit, prob, rng)
            assert compiled.circuit.evaluate(world)

    def test_underflowing_branch_mass_still_selected_exactly(self):
        # The whole ∨-gate mass underflows float (2^-1100): a float
        # cumulative-sum draw sees total = 0.0, never enters any branch and
        # falls through to the *last* input — here the branch of exact
        # probability zero.  The exact draw must pick the live branch.
        tiny = Fraction(1, 2**1100)
        assert float(tiny) == 0.0
        circuit = Circuit()
        x, y, z = (circuit.add_var(v) for v in "xyz")
        live = circuit.add_and([x, y])
        dead = circuit.add_and([circuit.add_not(x), z])
        circuit.set_output(circuit.add_or([live, dead]))
        prob = {"x": tiny, "y": Fraction(1), "z": Fraction(0)}
        rng = random.Random(43)
        for _ in range(25):
            world = sample_model(circuit, prob, rng)
            assert world == {"x": True, "y": True, "z": False}

"""Tests for the circuit substrate: structure, validation, probability,
and the knowledge-compilation reuse tasks."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import (
    Circuit,
    GateKind,
    assert_d_d,
    check_determinism_by_enumeration,
    circuit_to_boolean_function,
    conditioned_probability,
    copy_into,
    find_nondecomposable_gate,
    is_decomposable,
    model_count,
    most_probable_model,
    negate,
    probability,
    sample_model,
    to_nnf,
)
from repro.circuits.validation import CircuitPropertyError


def xor_dd() -> Circuit:
    """A tiny d-D computing x XOR y: (x ∧ ¬y) ∨ (¬x ∧ y)."""
    circuit = Circuit()
    x, y = circuit.add_var("x"), circuit.add_var("y")
    left = circuit.add_and([x, circuit.add_not(y)])
    right = circuit.add_and([circuit.add_not(x), y])
    circuit.set_output(circuit.add_or([left, right]))
    return circuit


class TestConstruction:
    def test_var_hash_consing(self):
        circuit = Circuit()
        assert circuit.add_var("x") == circuit.add_var("x")

    def test_const_hash_consing(self):
        circuit = Circuit()
        assert circuit.add_const(True) == circuit.add_const(True)
        assert circuit.add_const(True) != circuit.add_const(False)

    def test_empty_and_is_true(self):
        circuit = Circuit()
        gate = circuit.add_and([])
        circuit.set_output(gate)
        assert circuit.evaluate({})

    def test_empty_or_is_false(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_or([]))
        assert not circuit.evaluate({})

    def test_singleton_gates_collapse(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        assert circuit.add_and([x]) == x
        assert circuit.add_or([x]) == x

    def test_unknown_gate_id(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.add_not(5)

    def test_output_required(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            _ = circuit.output

    def test_stats(self):
        circuit = xor_dd()
        stats = circuit.stats()
        assert stats["VAR"] == 2
        assert stats["AND"] == 2
        assert stats["OR"] == 1
        assert stats["NOT"] == 2


class TestEvaluation:
    def test_xor_semantics(self):
        circuit = xor_dd()
        assert not circuit.evaluate({"x": False, "y": False})
        assert circuit.evaluate({"x": True, "y": False})
        assert circuit.evaluate({"x": False, "y": True})
        assert not circuit.evaluate({"x": True, "y": True})

    def test_missing_variables_default_false(self):
        circuit = xor_dd()
        assert not circuit.evaluate({})
        assert circuit.evaluate({"x": True})

    def test_models_by_enumeration(self):
        models = set(xor_dd().models_by_enumeration())
        assert models == {frozenset({"x"}), frozenset({"y"})}

    def test_gate_variable_sets(self):
        circuit = xor_dd()
        sets = circuit.gate_variable_sets()
        assert sets[circuit.output] == frozenset({"x", "y"})

    def test_circuit_to_boolean_function(self):
        phi = circuit_to_boolean_function(xor_dd(), ["x", "y"])
        assert phi.sat_count() == 2
        assert phi({0}) and phi({1}) and not phi({0, 1})


class TestValidation:
    def test_xor_is_d_d(self):
        assert_d_d(xor_dd())

    def test_nondecomposable_detected(self):
        circuit = Circuit()
        x = circuit.add_var("x")
        bad = circuit.add_and([x, x and circuit.add_not(x)])
        circuit.set_output(bad)
        assert not is_decomposable(circuit)
        assert find_nondecomposable_gate(circuit) is not None
        with pytest.raises(CircuitPropertyError):
            assert_d_d(circuit)

    def test_nondeterministic_detected(self):
        circuit = Circuit()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        circuit.set_output(circuit.add_or([x, y]))  # overlap at x=y=1
        assert is_decomposable(circuit)
        assert not check_determinism_by_enumeration(circuit)
        with pytest.raises(CircuitPropertyError):
            assert_d_d(circuit)


class TestProbability:
    def test_xor_probability(self):
        p = {"x": Fraction(1, 2), "y": Fraction(1, 3)}
        # P(x xor y) = 1/2*2/3 + 1/2*1/3 = 1/2.
        assert probability(xor_dd(), p) == Fraction(1, 2)

    def test_probability_matches_enumeration(self):
        rng = random.Random(13)
        circuit = xor_dd()
        for _ in range(5):
            p = {
                "x": Fraction(rng.randint(0, 4), 4),
                "y": Fraction(rng.randint(0, 4), 4),
            }
            expected = Fraction(0)
            for mx in (False, True):
                for my in (False, True):
                    if circuit.evaluate({"x": mx, "y": my}):
                        w = (p["x"] if mx else 1 - p["x"]) * (
                            p["y"] if my else 1 - p["y"]
                        )
                        expected += w
            assert probability(circuit, p) == expected

    def test_model_count(self):
        assert model_count(xor_dd()) == 2

    def test_conditioning(self):
        p = {"x": Fraction(1, 2), "y": Fraction(1, 2)}
        assert conditioned_probability(xor_dd(), p, {"x": True}) == Fraction(
            1, 2
        )
        assert conditioned_probability(
            xor_dd(), p, {"x": True, "y": True}
        ) == Fraction(0)


class TestMpe:
    def test_mpe_simple(self):
        p = {"x": Fraction(9, 10), "y": Fraction(1, 10)}
        value, world = most_probable_model(xor_dd(), p)
        assert world == {"x": True, "y": False}
        assert value == Fraction(9, 10) * Fraction(9, 10)

    def test_mpe_unsat(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_const(False))
        with pytest.raises(ValueError):
            most_probable_model(circuit, {})

    def test_mpe_matches_enumeration(self):
        rng = random.Random(17)
        circuit = xor_dd()
        for _ in range(10):
            p = {
                "x": Fraction(rng.randint(1, 7), 8),
                "y": Fraction(rng.randint(1, 7), 8),
            }
            value, world = most_probable_model(circuit, p)
            assert circuit.evaluate(world)
            # Compare against all satisfying worlds.
            best = Fraction(0)
            for mx in (False, True):
                for my in (False, True):
                    if not circuit.evaluate({"x": mx, "y": my}):
                        continue
                    w = (p["x"] if mx else 1 - p["x"]) * (
                        p["y"] if my else 1 - p["y"]
                    )
                    best = max(best, w)
            assert value == best


class TestSampling:
    def test_samples_satisfy(self):
        rng = random.Random(23)
        p = {"x": Fraction(1, 2), "y": Fraction(1, 2)}
        circuit = xor_dd()
        for _ in range(50):
            world = sample_model(circuit, p, rng)
            assert circuit.evaluate(world)

    def test_sampling_zero_probability(self):
        circuit = Circuit()
        circuit.set_output(circuit.add_const(False))
        with pytest.raises(ValueError):
            sample_model(circuit, {}, random.Random(0))

    def test_sampling_distribution(self):
        # x xor y with p = 1/2: conditioned on sat, each model has mass 1/2.
        rng = random.Random(29)
        p = {"x": Fraction(1, 2), "y": Fraction(1, 2)}
        circuit = xor_dd()
        hits = 0
        n = 400
        for _ in range(n):
            world = sample_model(circuit, p, rng)
            if world["x"]:
                hits += 1
        assert 0.35 < hits / n < 0.65


class TestOperations:
    def test_copy_into_with_rename(self):
        source = xor_dd()
        target = Circuit()
        out = copy_into(source, target, rename={"x": "a", "y": "b"})
        target.set_output(out)
        assert target.evaluate({"a": True, "b": False})
        assert target.variables() == frozenset({"a", "b"})

    def test_negate(self):
        circuit = negate(xor_dd())
        assert circuit.evaluate({"x": True, "y": True})
        assert not circuit.evaluate({"x": True, "y": False})

    def test_to_nnf_preserves_semantics(self):
        circuit = negate(xor_dd())  # has a top-level ¬ over an ∨
        nnf = to_nnf(circuit)
        assert nnf.is_nnf()
        for mx in (False, True):
            for my in (False, True):
                assignment = {"x": mx, "y": my}
                assert nnf.evaluate(assignment) == circuit.evaluate(assignment)

    def test_to_nnf_on_negated_and(self):
        circuit = Circuit()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        circuit.set_output(circuit.add_not(circuit.add_and([x, y])))
        nnf = to_nnf(circuit)
        assert nnf.is_nnf()
        assert_d_d(nnf)
        for mx in (False, True):
            for my in (False, True):
                assignment = {"x": mx, "y": my}
                assert nnf.evaluate(assignment) == circuit.evaluate(assignment)

"""Tests for the Appendix B.2 characteristic polynomials (Lemma B.5)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_function import BooleanFunction
from repro.enumeration.monotone import enumerate_nondegenerate_monotone
from repro.lattice.polynomials import (
    Polynomial,
    cnf_polynomial,
    dnf_polynomial,
    interpolated_polynomial,
    lagrange_interpolation,
    leading_coefficients,
    probability_polynomial,
    verify_lemma_b5,
)
from repro.queries.hqueries import phi_9


def tables(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1)


class TestPolynomialArithmetic:
    def test_trimming(self):
        assert Polynomial([1, 0, 0]).degree == 0
        assert Polynomial.zero().degree == -1

    def test_addition(self):
        p = Polynomial([1, 2]) + Polynomial([3, 4, 5])
        assert p.coefficients == [Fraction(4), Fraction(6), Fraction(5)]

    def test_subtraction_cancels(self):
        p = Polynomial([1, 2]) - Polynomial([1, 2])
        assert p == Polynomial.zero()

    def test_multiplication(self):
        # (1 - t)(1 + t) = 1 - t^2
        p = Polynomial([1, -1]) * Polynomial([1, 1])
        assert p == Polynomial([1, 0, -1])

    def test_evaluation_horner(self):
        p = Polynomial([1, -3, 2])  # 1 - 3t + 2t^2
        assert p(Fraction(1, 2)) == Fraction(0)
        assert p(0) == 1

    def test_monomial(self):
        assert Polynomial.monomial(3, 5).coefficients == [0, 0, 0, 5]

    def test_lagrange_roundtrip(self):
        p = Polynomial([Fraction(1, 3), Fraction(-2), Fraction(7, 2)])
        points = [Fraction(i) for i in range(3)]
        samples = [(x, p(x)) for x in points]
        assert lagrange_interpolation(samples) == p


class TestProbabilityPolynomial:
    def test_bottom_and_top(self):
        assert probability_polynomial(
            BooleanFunction.bottom(3)
        ) == Polynomial.zero()
        assert probability_polynomial(
            BooleanFunction.top(3)
        ) == Polynomial.constant(1)

    def test_single_variable(self):
        phi = BooleanFunction.variable(0, 2)
        # Pr = t regardless of the other variable.
        assert probability_polynomial(phi) == Polynomial([0, 1])

    @given(tables(3), st.integers(0, 4))
    @settings(max_examples=40)
    def test_matches_direct_evaluation(self, table, numerator):
        phi = BooleanFunction(3, table)
        t = Fraction(numerator, 4)
        polynomial = probability_polynomial(phi)
        expected = Fraction(0)
        for model in phi.satisfying_masks():
            size = model.bit_count()
            expected += t**size * (1 - t) ** (phi.nvars - size)
        assert polynomial(t) == expected

    def test_probability_at_half_is_count(self):
        phi = phi_9()
        value = probability_polynomial(phi)(Fraction(1, 2))
        assert value == Fraction(phi.sat_count(), 1 << phi.nvars)


class TestLemmaB5:
    def test_phi9(self):
        assert verify_lemma_b5(phi_9())

    @pytest.mark.parametrize("k", [1, 2])
    def test_exhaustive_small_k(self, k):
        checked = 0
        for phi in enumerate_nondegenerate_monotone(k + 1):
            if phi.is_bottom() or phi.is_top():
                continue
            assert verify_lemma_b5(phi), phi
            checked += 1
        assert checked > 0

    def test_k3_sample(self):
        rng = random.Random(85)
        from repro.enumeration.monotone import monotone_tables

        for table in rng.sample(monotone_tables(4), 40):
            phi = BooleanFunction(4, table)
            if phi.is_degenerate() or phi.is_bottom() or phi.is_top():
                continue
            assert verify_lemma_b5(phi)

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError):
            verify_lemma_b5(~phi_9())

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            verify_lemma_b5(BooleanFunction.variable(0, 3))


class TestLemma38ViaLeadingCoefficients:
    """The proof of Lemma 3.8: compare t^{k+1} coefficients."""

    def test_phi9_leading_coefficients(self):
        base, cnf, dnf = leading_coefficients(phi_9())
        assert base == cnf == dnf  # Lemma B.5 makes them equal
        k = 3
        phi = phi_9()
        # Coefficient identities from the proof.
        assert base == (-1) ** (k + 1) * phi.euler_characteristic()

    def test_random_monotone_coefficients(self):
        rng = random.Random(86)
        from repro.enumeration.monotone import monotone_tables

        for table in rng.sample(monotone_tables(4), 25):
            phi = BooleanFunction(4, table)
            if phi.is_degenerate() or phi.is_bottom() or phi.is_top():
                continue
            base, cnf, dnf = leading_coefficients(phi)
            assert base == cnf == dnf


class TestInterpolation:
    @given(tables(3))
    @settings(max_examples=30)
    def test_interpolation_recovers_polynomial(self, table):
        phi = BooleanFunction(3, table)
        assert interpolated_polynomial(phi) == probability_polynomial(phi)

    def test_interpolation_phi9(self):
        assert interpolated_polynomial(phi_9()) == probability_polynomial(
            phi_9()
        )

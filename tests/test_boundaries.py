"""Boundary cases across the stack: k = 1, flip variable at the ends,
empty relations, extreme probabilities, rectangular domains."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import assert_d_d
from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid, random_tid
from repro.db.tid import TupleIndependentDatabase
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.pqe.degenerate import degenerate_lineage_circuit
from repro.pqe.extensional import is_safe, probability as ext_probability
from repro.pqe.intensional import compile_lineage
from repro.pqe.safe_plans import disjunction_probability
from repro.queries.hqueries import HQuery, h_query


class TestSmallestArity:
    """k = 1: just h_{1,0} = R,S1 and h_{1,1} = S1,T."""

    def test_queries_exist(self):
        assert h_query(1, 0).relations() == {"R", "S1"}
        assert h_query(1, 1).relations() == {"S1", "T"}

    def test_single_queries_safe_and_exact(self):
        rng = random.Random(11)
        for i in (0, 1):
            phi = BooleanFunction.variable(i, 2)
            query = HQuery(1, phi)
            assert is_safe(query)
            for _ in range(3):
                tid = random_tid(1, 2, 2, rng, tuple_density=0.6)
                if len(tid) > 12:
                    continue
                assert ext_probability(
                    query, tid
                ) == probability_by_world_enumeration(query, tid)

    def test_conjunction_safe(self):
        # h_0 ∧ h_1 is monotone nondegenerate with e(0&1) = ... on 2 vars:
        # models {01, 11}? SAT(0&1) = {{0,1}} so e = +1 != 0: unsafe!
        phi = BooleanFunction.variable(0, 2) & BooleanFunction.variable(1, 2)
        assert phi.euler_characteristic() == 1
        assert not is_safe(HQuery(1, phi))

    def test_disjunction_unsafe(self):
        # h_0 ∨ h_1 is the k = 1 full disjunction: the hard query.
        phi = BooleanFunction.variable(0, 2) | BooleanFunction.variable(1, 2)
        assert not is_safe(HQuery(1, phi))

    def test_xor_compiles(self):
        # h_0 XOR h_1 has e = -2... check: SAT = {{0},{1}}, e = -2: not
        # compilable.  The *negation* of XOR has e = +2: also not.  The
        # equivalence-with-⊥ functions at k = 1 are limited; verify the
        # dichotomy boundary is honored.
        phi = BooleanFunction.variable(0, 2) ^ BooleanFunction.variable(1, 2)
        assert phi.euler_characteristic() == -2
        from repro.pqe.intensional import NotCompilableError

        tid = complete_tid(1, 1, 1)
        with pytest.raises(NotCompilableError):
            compile_lineage(HQuery(1, phi), tid.instance)

    def test_zero_euler_k1_compiles(self):
        # {∅, {0}} has e = 0: compilable even though non-monotone.
        phi = BooleanFunction.from_satisfying(2, [0b00, 0b01])
        query = HQuery(1, phi)
        rng = random.Random(13)
        tid = random_tid(1, 2, 2, rng, tuple_density=0.5)
        if len(tid) > 12:
            tid = complete_tid(1, 1, 1, prob=Fraction(1, 3))
        compiled = compile_lineage(query, tid.instance)
        assert_d_d(compiled.circuit)
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )


class TestFlipVariableBoundaries:
    """The degenerate construction with the missing variable at 0 or k
    (one side of the split is empty)."""

    def test_missing_first_variable(self):
        phi = BooleanFunction.variable(1, 3) & BooleanFunction.variable(2, 3)
        assert not phi.depends_on(0)
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 2))
        circuit = degenerate_lineage_circuit(
            phi, tid.instance, missing_variable=0
        )
        assert_d_d(circuit)
        from repro.circuits import probability

        assert probability(
            circuit, tid.probability_map()
        ) == probability_by_world_enumeration(HQuery(2, phi), tid)

    def test_missing_last_variable(self):
        phi = BooleanFunction.variable(0, 3) & ~BooleanFunction.variable(1, 3)
        assert not phi.depends_on(2)
        tid = complete_tid(2, 2, 1, prob=Fraction(1, 2))
        circuit = degenerate_lineage_circuit(
            phi, tid.instance, missing_variable=2
        )
        assert_d_d(circuit)
        from repro.circuits import probability

        assert probability(
            circuit, tid.probability_map()
        ) == probability_by_world_enumeration(HQuery(2, phi), tid)


class TestDegenerateData:
    def test_empty_database(self):
        tid = TupleIndependentDatabase()
        for name, arity in (("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)):
            tid.instance.declare(name, arity)
        from repro.queries.hqueries import q9

        assert ext_probability(q9(), tid) == 0
        compiled = compile_lineage(q9(), tid.instance)
        assert compiled.probability(tid) == 0

    def test_all_probabilities_one(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(1))
        from repro.queries.hqueries import q9

        # The complete certain instance satisfies every h_i.
        assert ext_probability(q9(), tid) == 1

    def test_all_probabilities_zero(self):
        tid = complete_tid(3, 2, 2, prob=Fraction(0))
        from repro.queries.hqueries import q9

        assert ext_probability(q9(), tid) == 0
        compiled = compile_lineage(q9(), tid.instance)
        assert compiled.probability(tid) == 0

    def test_rectangular_domains(self):
        rng = random.Random(17)
        for n_left, n_right in ((1, 3), (3, 1)):
            tid = random_tid(2, n_left, n_right, rng, tuple_density=0.5)
            if len(tid) > 12 or len(tid) == 0:
                continue
            phi = BooleanFunction.from_satisfying(3, [0b000, 0b001])
            query = HQuery(2, phi)
            compiled = compile_lineage(query, tid.instance)
            assert compiled.probability(tid) == (
                probability_by_world_enumeration(query, tid)
            )

    def test_disjunction_on_empty_relations(self):
        tid = TupleIndependentDatabase()
        for name, arity in (("R", 1), ("S1", 2), ("S2", 2), ("T", 1)):
            tid.instance.declare(name, arity)
        assert disjunction_probability([0, 1], 2, tid) == 0


class TestLargerArity:
    """k = 5: the pipeline scales in k as well as in data."""

    def test_k5_single_query(self):
        phi = BooleanFunction.variable(2, 6)
        query = HQuery(5, phi)
        tid = complete_tid(5, 1, 1, prob=Fraction(1, 2))
        compiled = compile_lineage(query, tid.instance)
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )

    def test_k4_zero_euler_pair(self):
        phi = BooleanFunction.from_satisfying(5, [0b00000, 0b00100])
        query = HQuery(4, phi)
        tid = complete_tid(4, 1, 1, prob=Fraction(1, 3))
        compiled = compile_lineage(query, tid.instance)
        assert_d_d(compiled.circuit)
        assert compiled.probability(tid) == (
            probability_by_world_enumeration(query, tid)
        )

"""Tests for the Boolean-formula front end."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_function import BooleanFunction
from repro.core.formula import FormulaSyntaxError, parse, to_formula
from repro.queries.hqueries import phi_9


class TestParsing:
    def test_phi9_ascii(self):
        phi = parse("(2|3) & (0|3) & (1|3) & (0|1|2)", 4)
        assert phi == phi_9()

    def test_phi9_unicode(self):
        phi = parse("(2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2)", 4)
        assert phi == phi_9()

    def test_constants(self):
        assert parse("T", 2).is_top()
        assert parse("F", 2).is_bottom()

    def test_negation(self):
        phi = parse("!0", 2)
        assert phi({1}) and not phi({0})

    def test_double_negation(self):
        assert parse("!!1", 2) == parse("1", 2)

    def test_xor(self):
        phi = parse("0 ^ 1", 2)
        assert phi({0}) and phi({1}) and not phi({0, 1}) and not phi([])

    def test_precedence(self):
        # & binds tighter than |.
        assert parse("0 | 1 & 2", 3) == parse("0 | (1 & 2)", 3)
        # ! binds tighter than &.
        assert parse("!0 & 1", 2) == parse("(!0) & 1", 2)

    def test_multidigit_variables(self):
        phi = parse("10 & 3", 12)
        assert phi({10, 3}) and not phi({1, 0, 3})

    def test_out_of_range_variable(self):
        with pytest.raises(FormulaSyntaxError):
            parse("5", 3)

    def test_syntax_errors(self):
        for bad in ("0 &", "(0", "0 1", ")", "0 @ 1", ""):
            with pytest.raises(FormulaSyntaxError):
                parse(bad, 3)


class TestRoundTrip:
    def test_monotone_round_trip(self):
        phi = phi_9()
        assert parse(to_formula(phi), 4) == phi

    def test_constant_round_trip(self):
        for phi in (BooleanFunction.top(3), BooleanFunction.bottom(3)):
            assert parse(to_formula(phi), 3) == phi

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=60)
    def test_random_round_trip(self, table):
        phi = BooleanFunction(4, table)
        assert parse(to_formula(phi), 4) == phi

    def test_random_monotone_round_trip(self):
        rng = random.Random(4)
        for _ in range(20):
            phi = BooleanFunction.random_monotone(4, rng)
            assert parse(to_formula(phi), 4) == phi

"""Tests for the approximation engine (Monte Carlo and Karp–Luby)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.db.tid import exact_bernoulli
from repro.pqe.approximate import (
    Estimate,
    _bisect,
    karp_luby_probability,
    monte_carlo_probability,
)
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.queries.hqueries import HQuery, q9


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


class TestEstimate:
    def test_covers(self):
        estimate = Estimate(0.5, 0.1, 100)
        assert estimate.covers(0.45)
        assert not estimate.covers(0.7)


class TestMonteCarlo:
    def test_invalid_samples(self):
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            monte_carlo_probability(q9(), tid, 0, random.Random(0))

    def test_safe_query_estimate_near_truth(self):
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(q9(), tid))
        estimate = monte_carlo_probability(
            q9(), tid, 800, random.Random(42)
        )
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.08)

    def test_hard_query_estimate_near_truth(self):
        # The point: approximation is indifferent to #P-hardness.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = monte_carlo_probability(
            query, tid, 800, random.Random(43)
        )
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.08)

    def test_non_monotone_supported(self):
        phi = ~BooleanFunction.variable(1, 4)
        query = HQuery(3, phi)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = monte_carlo_probability(
            query, tid, 600, random.Random(44)
        )
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.1)

    def test_deterministic_extremes(self):
        tid = complete_tid(3, 1, 1, prob=Fraction(1))
        estimate = monte_carlo_probability(q9(), tid, 50, random.Random(1))
        assert estimate.value == 1.0


class TestKarpLuby:
    def test_rejects_non_monotone(self):
        phi = ~BooleanFunction.variable(0, 4)
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            karp_luby_probability(HQuery(3, phi), tid, 10, random.Random(0))

    def test_empty_lineage_gives_zero(self):
        from repro.db.tid import TupleIndependentDatabase

        tid = TupleIndependentDatabase()
        for name, arity in (
            ("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)
        ):
            tid.instance.declare(name, arity)
        estimate = karp_luby_probability(q9(), tid, 50, random.Random(0))
        assert estimate.value == 0.0

    def test_safe_query_estimate_near_truth(self):
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(q9(), tid))
        estimate = karp_luby_probability(q9(), tid, 800, random.Random(7))
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.08)

    def test_hard_query_estimate_near_truth(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 4))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = karp_luby_probability(query, tid, 1000, random.Random(8))
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.06)

    def test_small_probability_relative_accuracy(self):
        # Where naive MC collapses: tiny probabilities.  Karp-Luby's
        # estimate stays within ~25% relative error with modest samples.
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 40))
        truth = float(probability_by_world_enumeration(query, tid))
        assert truth < 0.01
        estimate = karp_luby_probability(query, tid, 1500, random.Random(9))
        assert abs(estimate.value - truth) <= 0.3 * truth

    def test_unbiasedness_across_seeds(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 3))
        truth = float(probability_by_world_enumeration(query, tid))
        values = [
            karp_luby_probability(
                query, tid, 300, random.Random(seed)
            ).value
            for seed in range(8)
        ]
        mean = sum(values) / len(values)
        assert abs(mean - truth) <= 0.05


class TestScalarIncidenceFix:
    """The first-satisfied-clause detection was rewritten from an O(m)
    per-sample subset scan to per-tuple clause-incidence counting; the
    draw stream and the estimates must be unchanged."""

    @staticmethod
    def _reference_karp_luby(query, tid, samples, rng):
        """The pre-incidence sampler, reimplemented verbatim: linear
        first-satisfied scan over all clauses via subset tests."""
        import math as _math

        from repro.db.tid import exact_bernoulli
        from repro.queries.ucq import hquery_to_ucq

        ucq = hquery_to_ucq(query)
        clauses = sorted(
            ucq.grounding_sets(tid.instance),
            key=lambda clause: sorted(clause),
        )
        if not clauses:
            return (0.0, samples)
        prob = tid.probability_map()
        weights = []
        for clause in clauses:
            w = Fraction(1)
            for tuple_id in clause:
                w *= prob[tuple_id]
            weights.append(w)
        total_weight = sum(weights, Fraction(0))
        if total_weight == 0:
            return (0.0, samples)
        denominator = _math.lcm(*(w.denominator for w in weights))
        cumulative, running = [], 0
        for w in weights:
            running += w.numerator * (denominator // w.denominator)
            cumulative.append(running)
        all_tuples = tid.instance.tuple_ids()
        hits = 0
        for _ in range(samples):
            draw = rng.randrange(cumulative[-1])
            index = _bisect(cumulative, draw)
            forced = clauses[index]
            world = set(forced)
            for tuple_id in all_tuples:
                if tuple_id in forced:
                    continue
                if exact_bernoulli(rng, prob[tuple_id]):
                    world.add(tuple_id)
            first = next(
                j for j, clause in enumerate(clauses) if clause <= world
            )
            if first == index:
                hits += 1
        return (float(total_weight) * (hits / samples), samples)

    def test_incidence_scan_matches_subset_scan(self):
        query = hard_full_disjunction(2)
        for prob, seed in (
            (Fraction(1, 3), 11),
            (Fraction(1, 2), 12),
            (Fraction(2, 7), 13),
        ):
            tid = complete_tid(2, 2, 2, prob=prob)
            reference = self._reference_karp_luby(
                query, tid, 400, random.Random(seed)
            )
            estimate = karp_luby_probability(
                query, tid, 400, random.Random(seed)
            )
            assert (estimate.value, estimate.samples) == reference


class TestHalfWidthFloorFix:
    def test_zero_hits_report_zero_normal_half_width(self):
        # A query that never holds: the old 1e-12 variance floor turned
        # a deterministic 0-hit outcome into a phantom error bar.
        from repro.db.tid import TupleIndependentDatabase

        tid = TupleIndependentDatabase()
        for name, arity in (
            ("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)
        ):
            tid.instance.declare(name, arity)
        tid.add("R", ("a",), Fraction(1, 2))
        estimate = monte_carlo_probability(
            q9(), tid, 200, random.Random(0)
        )
        assert estimate.value == 0.0
        assert estimate.half_width == 0.0

    def test_all_hits_report_zero_normal_half_width(self):
        tid = complete_tid(3, 1, 1, prob=Fraction(1))
        estimate = monte_carlo_probability(
            q9(), tid, 50, random.Random(1)
        )
        assert estimate.value == 1.0
        assert estimate.half_width == 0.0


class _ScriptedRng:
    """A fake ``random.Random`` replaying scripted ``randrange`` draws —
    the draws are what the exactness contract is about, so the tests pin
    them directly."""

    def __init__(self, draws):
        self._draws = list(draws)
        self.requests: list[int] = []

    def randrange(self, stop):
        self.requests.append(stop)
        return self._draws.pop(0)


class TestExactDraws:
    """The exactness regression suite: clause selection and world
    completion must be bias-free for probabilities (1/3, 1/7, ...) that
    no binary float represents."""

    def test_bisect_boundary_selects_next_clause(self):
        # Clause i owns the half-open interval
        # [cumulative[i-1], cumulative[i]): a draw exactly equal to a
        # prefix boundary belongs to the *next* clause.
        cumulative = [1, 3, 6]
        assert _bisect(cumulative, 0) == 0
        assert _bisect(cumulative, 1) == 1  # boundary draw -> next clause
        assert _bisect(cumulative, 2) == 1
        assert _bisect(cumulative, 3) == 2  # boundary draw -> next clause
        assert _bisect(cumulative, 4) == 2
        assert _bisect(cumulative, 5) == 2

    def test_bisect_never_selects_zero_weight_clause(self):
        # A zero-weight clause has an empty interval; under the strict
        # boundary convention no draw can land in it (the old ``<`` test
        # handed boundary draws to it).
        cumulative = [2, 2, 5]
        for needle in range(5):
            assert _bisect(cumulative, needle) != 1

    def test_bisect_intervals_are_exactly_proportional(self):
        # Exhaustive: over all draws in [0, total), clause i is selected
        # exactly w_i * D times.
        cumulative = [2, 5, 6, 10]
        counts = [0] * len(cumulative)
        for needle in range(cumulative[-1]):
            counts[_bisect(cumulative, needle)] += 1
        assert counts == [2, 3, 1, 4]

    def test_exact_bernoulli_draw_semantics(self):
        p = Fraction(1, 3)
        assert exact_bernoulli(_ScriptedRng([0]), p) is True
        assert exact_bernoulli(_ScriptedRng([1]), p) is False
        assert exact_bernoulli(_ScriptedRng([2]), p) is False
        rng = _ScriptedRng([0])
        exact_bernoulli(rng, Fraction(2, 7))
        assert rng.requests == [7]  # uniform over the exact denominator

    def test_exact_bernoulli_is_unbiased_over_full_period(self):
        # Over every residue of the denominator the success frequency is
        # exactly p -- no float grid involved anywhere.
        for p in (Fraction(1, 3), Fraction(2, 7), Fraction(5, 12)):
            hits = sum(
                exact_bernoulli(_ScriptedRng([draw]), p)
                for draw in range(p.denominator)
            )
            assert Fraction(hits, p.denominator) == p

    def test_karp_luby_reproducible_for_fixed_seed(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 3))
        first = karp_luby_probability(query, tid, 500, random.Random(77))
        second = karp_luby_probability(query, tid, 500, random.Random(77))
        assert first == second

    def test_karp_luby_reproducible_across_hash_seeds(self):
        # The clause order must be canonical, not repr-of-frozenset
        # order: the latter follows the per-process hash salt, which
        # made fixed-seed estimates differ between processes (and made
        # the convergence test below flaky on unpinned tier-1 runs).
        import os
        import pathlib
        import subprocess
        import sys

        script = (
            "import random\n"
            "from fractions import Fraction\n"
            "from repro.core.boolean_function import BooleanFunction\n"
            "from repro.db.generator import complete_tid\n"
            "from repro.pqe.approximate import karp_luby_probability\n"
            "from repro.queries.hqueries import HQuery\n"
            "phi = BooleanFunction.bottom(3)\n"
            "for i in range(3):\n"
            "    phi = phi | BooleanFunction.variable(i, 3)\n"
            "tid = complete_tid(2, 2, 2, prob=Fraction(1, 3))\n"
            "print(karp_luby_probability(\n"
            "    HQuery(2, phi), tid, 200, random.Random(5)).value)\n"
        )
        repo_root = pathlib.Path(__file__).resolve().parents[1]
        outputs = set()
        for hash_seed in ("0", "7"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(repo_root / "src")
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(repo_root),
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, outputs

    def test_karp_luby_converges_on_thirds_and_sevenths(self):
        # The headline regression: probabilities 1/3 and 1/7 have no
        # finite binary representation, so the old
        # ``Fraction(rng.random()).limit_denominator(1 << 30)`` clause
        # draw and the ``rng.random() < float(p)`` world draw were both
        # biased.  The integer draws must converge on the brute-force
        # truth within the reported error bar, deterministically.
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 3))
        for position, tuple_id in enumerate(tid.instance.tuple_ids()):
            tid.set_probability(
                tuple_id, Fraction(1, 3) if position % 2 else Fraction(1, 7)
            )
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = karp_luby_probability(
            query, tid, 4000, random.Random(0xC0FFEE)
        )
        assert estimate.covers(truth)
        assert abs(estimate.value - truth) <= 0.05

    def test_karp_luby_mean_tracks_truth_on_thirds(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 7))
        truth = float(probability_by_world_enumeration(query, tid))
        values = [
            karp_luby_probability(
                query, tid, 400, random.Random(seed)
            ).value
            for seed in range(10)
        ]
        mean = sum(values) / len(values)
        assert abs(mean - truth) <= 0.04

    def test_sample_world_uses_exact_draws(self):
        from repro.db.tid import TupleIndependentDatabase

        tid = TupleIndependentDatabase()
        tid.add("R", ("a",), Fraction(1, 3))
        tid.add("R", ("b",), Fraction(2, 3))
        # One scripted draw per tuple, in sorted tuple order: draw 0 of 3
        # includes R(a) (p = 1/3); draw 2 of 3 excludes R(b) (p = 2/3).
        world = tid.sample_world(_ScriptedRng([0, 2]))
        names = {t.values[0] for t in world}
        assert names == {"a"}
        world = tid.sample_world(_ScriptedRng([2, 1]))
        names = {t.values[0] for t in world}
        assert names == {"b"}

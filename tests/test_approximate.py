"""Tests for the approximation engine (Monte Carlo and Karp–Luby)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe.approximate import (
    Estimate,
    karp_luby_probability,
    monte_carlo_probability,
)
from repro.pqe.brute_force import probability_by_world_enumeration
from repro.queries.hqueries import HQuery, q9


def hard_full_disjunction(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


class TestEstimate:
    def test_covers(self):
        estimate = Estimate(0.5, 0.1, 100)
        assert estimate.covers(0.45)
        assert not estimate.covers(0.7)


class TestMonteCarlo:
    def test_invalid_samples(self):
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            monte_carlo_probability(q9(), tid, 0, random.Random(0))

    def test_safe_query_estimate_near_truth(self):
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(q9(), tid))
        estimate = monte_carlo_probability(
            q9(), tid, 800, random.Random(42)
        )
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.08)

    def test_hard_query_estimate_near_truth(self):
        # The point: approximation is indifferent to #P-hardness.
        query = hard_full_disjunction(3)
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = monte_carlo_probability(
            query, tid, 800, random.Random(43)
        )
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.08)

    def test_non_monotone_supported(self):
        phi = ~BooleanFunction.variable(1, 4)
        query = HQuery(3, phi)
        tid = complete_tid(3, 1, 1, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = monte_carlo_probability(
            query, tid, 600, random.Random(44)
        )
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.1)

    def test_deterministic_extremes(self):
        tid = complete_tid(3, 1, 1, prob=Fraction(1))
        estimate = monte_carlo_probability(q9(), tid, 50, random.Random(1))
        assert estimate.value == 1.0


class TestKarpLuby:
    def test_rejects_non_monotone(self):
        phi = ~BooleanFunction.variable(0, 4)
        tid = complete_tid(3, 1, 1)
        with pytest.raises(ValueError):
            karp_luby_probability(HQuery(3, phi), tid, 10, random.Random(0))

    def test_empty_lineage_gives_zero(self):
        from repro.db.tid import TupleIndependentDatabase

        tid = TupleIndependentDatabase()
        for name, arity in (
            ("R", 1), ("S1", 2), ("S2", 2), ("S3", 2), ("T", 1)
        ):
            tid.instance.declare(name, arity)
        estimate = karp_luby_probability(q9(), tid, 50, random.Random(0))
        assert estimate.value == 0.0

    def test_safe_query_estimate_near_truth(self):
        tid = complete_tid(3, 1, 2, prob=Fraction(1, 2))
        truth = float(probability_by_world_enumeration(q9(), tid))
        estimate = karp_luby_probability(q9(), tid, 800, random.Random(7))
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.08)

    def test_hard_query_estimate_near_truth(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 2, 2, prob=Fraction(1, 4))
        truth = float(probability_by_world_enumeration(query, tid))
        estimate = karp_luby_probability(query, tid, 1000, random.Random(8))
        assert abs(estimate.value - truth) <= max(estimate.half_width, 0.06)

    def test_small_probability_relative_accuracy(self):
        # Where naive MC collapses: tiny probabilities.  Karp-Luby's
        # estimate stays within ~25% relative error with modest samples.
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 1, prob=Fraction(1, 40))
        truth = float(probability_by_world_enumeration(query, tid))
        assert truth < 0.01
        estimate = karp_luby_probability(query, tid, 1500, random.Random(9))
        assert abs(estimate.value - truth) <= 0.3 * truth

    def test_unbiasedness_across_seeds(self):
        query = hard_full_disjunction(2)
        tid = complete_tid(2, 1, 2, prob=Fraction(1, 3))
        truth = float(probability_by_world_enumeration(query, tid))
        values = [
            karp_luby_probability(
                query, tid, 300, random.Random(seed)
            ).value
            for seed in range(8)
        ]
        mean = sum(values) / len(values)
        assert abs(mean - truth) <= 0.05

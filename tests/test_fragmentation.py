"""Tests for fragmentable functions and ¬-∨-templates (Section 4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boolean_function import BooleanFunction
from repro.core.fragmentation import (
    Fragmentation,
    Hole,
    NegOrTemplate,
    NotNode,
    OrNode,
    fragment,
    fragment_via_matching,
    is_fragmentable,
    pair_function,
)
from repro.core.transformation import Step
from repro.matching.perfect_matching import colored_matching
from repro.queries.hqueries import phi_9


def tables(nvars: int):
    return st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1)


class TestTemplate:
    def test_single_hole(self):
        template = NegOrTemplate.single_hole()
        phi = BooleanFunction.variable(0, 2)
        assert template.substitute([phi]) == phi

    def test_hole_indices_validated(self):
        with pytest.raises(ValueError):
            NegOrTemplate(Hole(1), 1)  # hole 0 missing

    def test_or_substitution(self):
        template = NegOrTemplate(OrNode((Hole(0), Hole(1))), 2)
        a = BooleanFunction.from_satisfying(2, [{0}])
        b = BooleanFunction.from_satisfying(2, [{1}])
        assert template.substitute([a, b]) == (a | b)

    def test_not_substitution(self):
        template = NegOrTemplate(NotNode(Hole(0)), 1)
        a = BooleanFunction.from_satisfying(2, [{0}])
        assert template.substitute([a]) == ~a

    def test_determinism_check(self):
        template = NegOrTemplate(OrNode((Hole(0), Hole(1))), 2)
        a = BooleanFunction.from_satisfying(2, [{0}])
        b = BooleanFunction.from_satisfying(2, [{1}])
        assert template.is_deterministic_with([a, b])
        assert not template.is_deterministic_with([a, a | b])

    def test_determinism_under_negation(self):
        # The paper's example after Definition 4.1: T = l0 ∨ l1 with
        # phi_0 = x and phi_1 = ¬x is deterministic though T alone is not.
        template = NegOrTemplate(OrNode((Hole(0), Hole(1))), 2)
        x = BooleanFunction.variable(0, 1)
        assert template.is_deterministic_with([x, ~x])

    def test_wrong_leaf_count(self):
        template = NegOrTemplate.single_hole()
        with pytest.raises(ValueError):
            template.substitute([])

    def test_gate_counts(self):
        template = NegOrTemplate(
            NotNode(OrNode((NotNode(Hole(0)), Hole(1)))), 2
        )
        assert template.count_gates() == {"or": 1, "not": 2, "hole": 2}


class TestPairFunction:
    @given(st.integers(0, 15), st.integers(0, 3))
    def test_pair_function_is_degenerate(self, valuation, variable):
        psi = pair_function(4, Step(1, valuation, variable))
        assert psi.sat_count() == 2
        assert not psi.depends_on(variable)
        assert psi.is_degenerate()
        assert psi.euler_characteristic() == 0


class TestExample43:
    """Example 4.3: phi_9 is fragmentable with a pure-∨ template."""

    def test_phi9_example_leaves(self):
        phi0 = BooleanFunction.from_callable(
            4, lambda s: s >= {0, 3} and 2 not in s and s <= {0, 1, 3}
        )
        # The example's leaves, written directly: 0∧¬2∧3, ¬1∧2∧3, ¬0∧1∧3,
        # 0∧1∧2 (free variables unconstrained).
        v0 = BooleanFunction.variable(0, 4)
        v1 = BooleanFunction.variable(1, 4)
        v2 = BooleanFunction.variable(2, 4)
        v3 = BooleanFunction.variable(3, 4)
        leaves = [
            v0 & ~v2 & v3,
            ~v1 & v2 & v3,
            ~v0 & v1 & v3,
            v0 & v1 & v2,
        ]
        for leaf in leaves:
            assert leaf.is_degenerate()
        root = OrNode((Hole(0), Hole(1), Hole(2), Hole(3)))
        template = NegOrTemplate(root, 4)
        assert template.is_deterministic_with(leaves)
        assert template.substitute(leaves) == phi_9()
        del phi0

    def test_phi9_fragment(self):
        fragmentation = fragment(phi_9())
        assert fragmentation.verify()


class TestFragment:
    """Corollaries 5.4 and 5.12."""

    @given(tables(4))
    @settings(max_examples=50)
    def test_fragment_zero_euler(self, table):
        phi = BooleanFunction(4, table)
        if phi.euler_characteristic() != 0:
            assert not is_fragmentable(phi)
            with pytest.raises(ValueError):
                fragment(phi)
            return
        assert is_fragmentable(phi)
        fragmentation = fragment(phi)
        assert fragmentation.verify()
        assert fragmentation.template.substitute(fragmentation.leaves) == phi

    def test_degenerate_single_hole(self):
        phi = BooleanFunction.variable(0, 3)  # ignores 1, 2
        fragmentation = fragment(phi)
        assert fragmentation.template.num_holes == 1
        assert fragmentation.verify()

    def test_fragment_verify_detects_corruption(self):
        fragmentation = fragment(phi_9())
        broken = Fragmentation(
            fragmentation.template,
            fragmentation.leaves,
            ~phi_9(),
        )
        assert not broken.verify()

    def test_exhaustive_2vars(self):
        for table in range(16):
            phi = BooleanFunction(2, table)
            if phi.euler_characteristic() == 0:
                assert fragment(phi).verify()
            else:
                assert not is_fragmentable(phi)


class TestMatchingFragmentation:
    """Section 7's negation-free (d-DNNF) special case."""

    def test_phi9_has_colored_matching(self):
        # Example 4.3's pure-∨ decomposition exists, so the colored
        # subgraph must have a perfect matching.
        matching = colored_matching(phi_9())
        assert matching is not None
        fragmentation = fragment_via_matching(phi_9(), matching)
        assert fragmentation.verify()
        assert fragmentation.template.count_gates()["not"] == 0

    def test_rejects_non_adjacent_pairs(self):
        phi = BooleanFunction.from_satisfying(2, [0b00, 0b11])
        with pytest.raises(ValueError):
            fragment_via_matching(phi, [(0b00, 0b11)])

    def test_rejects_partial_cover(self):
        phi = BooleanFunction.from_satisfying(2, [0b00, 0b01, 0b10, 0b11])
        with pytest.raises(ValueError):
            fragment_via_matching(phi, [(0b00, 0b01)])

    def test_rejects_overlap(self):
        phi = BooleanFunction.from_satisfying(2, [0b00, 0b01, 0b11])
        with pytest.raises(ValueError):
            fragment_via_matching(
                phi, [(0b00, 0b01), (0b01, 0b11)]
            )

    def test_bottom_matching(self):
        phi = BooleanFunction.bottom(2)
        fragmentation = fragment_via_matching(phi, [])
        assert fragmentation.verify()

    def test_random_matchable_functions(self):
        rng = random.Random(47)
        found = 0
        while found < 10:
            phi = BooleanFunction.random(4, rng)
            if phi.euler_characteristic() != 0:
                continue
            matching = colored_matching(phi)
            if matching is None:
                continue
            found += 1
            fragmentation = fragment_via_matching(phi, matching)
            assert fragmentation.verify()
            assert fragmentation.template.count_gates()["not"] == 0

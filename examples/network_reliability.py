"""A layered-network reliability scenario on the H-query schema.

A realistic reading of the paper's vocabulary: a service chain where
``R(x)`` means "ingress x is up", ``S_i(x, y)`` means "layer-i channel
from ingress x to egress y is up", and ``T(y)`` means "egress y is up",
every component failing independently.  Several service-level events are
exactly H-queries:

* "some ingress reaches layer 1" is ``h_{k,0}``;
* "layers i and i+1 overlap on some channel" is ``h_{k,i}``;
* richer Boolean combinations express maintenance policies.

The script builds a fleet-telemetry TID, evaluates a safe policy query
with both polynomial engines, then does what an operator would: finds the
most fragile components by sensitivity analysis (d-D re-evaluation under
per-tuple perturbations — cheap because the circuit is compiled once).

Run:  python examples/network_reliability.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import BooleanFunction, HQuery, TupleIndependentDatabase
from repro.pqe import (
    compile_lineage,
    extensional_probability,
    is_safe,
)

K = 3
INGRESSES = ["fra1", "fra2", "ams1"]
EGRESSES = ["sfo1", "sfo2"]


def build_fleet(rng: random.Random) -> TupleIndependentDatabase:
    """Uptime telemetry: every component up with an empirical rate."""
    tid = TupleIndependentDatabase()
    for x in INGRESSES:
        tid.add("R", (x,), Fraction(rng.randint(85, 99), 100))
    for y in EGRESSES:
        tid.add("T", (y,), Fraction(rng.randint(85, 99), 100))
    for layer in range(1, K + 1):
        for x in INGRESSES:
            for y in EGRESSES:
                tid.add(
                    f"S{layer}", (x, y),
                    Fraction(rng.randint(60, 95), 100),
                )
    return tid


def policy_query() -> HQuery:
    """The maintenance policy "the chain has no weak seam":

    (h0 ∨ h3) ∧ (h1 ∨ h3) ∧ (h2 ∨ h3) ∧ (h0 ∨ h1 ∨ h2)

    — a zero-Euler (hence safe) monotone combination, structurally a
    sibling of the paper's q_9.
    """
    phi = BooleanFunction.from_cnf(
        K + 1, [{0, 3}, {1, 3}, {2, 3}, {0, 1, 2}]
    )
    return HQuery(K, phi)


def main() -> None:
    rng = random.Random(2026)
    tid = build_fleet(rng)
    query = policy_query()
    print(f"fleet: {tid.instance} ({len(tid)} components)")
    print(f"policy query: {query}")
    print(f"safe: {is_safe(query)} (e = {query.phi.euler_characteristic()})")

    reference = extensional_probability(query, tid)
    compiled = compile_lineage(query, tid.instance)
    value = compiled.probability(tid)
    assert value == reference
    print(f"\nPr(policy holds) = {float(value):.6f} "
          f"(extensional and intensional agree exactly)")

    # Sensitivity analysis: for each component, how much does certainty
    # about it move the policy probability?  One compiled circuit, many
    # cheap re-evaluations.
    print("\ntop fragile components (policy probability if the component "
          "were perfectly reliable):")
    prob_map = tid.probability_map()
    gains = []
    for tuple_id in tid.instance.tuple_ids():
        boosted = dict(prob_map)
        boosted[tuple_id] = Fraction(1)
        from repro.circuits import probability as circuit_probability

        gain = circuit_probability(compiled.circuit, boosted) - value
        gains.append((gain, tuple_id))
    gains.sort(key=lambda pair: (-pair[0], str(pair[1])))
    for gain, tuple_id in gains[:5]:
        print(f"  {str(tuple_id):<16} +{float(gain):.6f}")

    # What-if: decommission one egress (probability 0) and re-evaluate.
    worst = gains[0][1]
    tid.set_probability(worst, Fraction(0))
    degraded = compiled.probability(tid)
    print(f"\nafter losing {worst}: Pr = {float(degraded):.6f} "
          f"(drop of {float(value - degraded):.6f})")


if __name__ == "__main__":
    main()

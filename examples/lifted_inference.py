"""General lifted inference: safe plans for queries *outside* the
paper's h-family.

The paper's extensional engine covers the fixed ``h_{k,i}`` schema;
``repro.pqe.lift`` generalizes it into a full Dalvi–Suciu safe-plan
search over arbitrary unions of conjunctive queries.  This script runs,
on a bibliography-style schema ``Author(a)``, ``Wrote(a, p)``,
``Cites(p, q)`` that no h-query can express:

1. a **safe** CQ — "some author wrote some paper" — printing the plan
   the search finds (separator elimination + independent join), its
   exact probability against brute-force world enumeration, and the
   ``engine="lifted"`` routing decision;
2. a safe **union** mixing two disjuncts, showing the independent-union
   decomposition in the plan;
3. the classic **hard** query ``Author(a), Wrote(a,p), Referenced(p)``
   (the `R(x),S(x,y),T(y)` pattern), which the search rejects with
   :class:`UnsafeQueryError` and ``auto`` answers by brute force while
   the instance is small.

Run:  PYTHONPATH=src python examples/lifted_inference.py
"""

from __future__ import annotations

import random
import time
from fractions import Fraction

from repro.db.relation import Instance
from repro.db.tid import TupleIndependentDatabase
from repro.pqe import (
    UnsafeQueryError,
    classify_query,
    describe_plan,
    evaluate,
    lift_query,
    lifted_probability,
    probability_by_world_enumeration,
)
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.ucq import UnionOfCQs


def bibliography_tid(authors: int = 4, papers: int = 3):
    rng = random.Random(2020)
    inst = Instance()
    inst.declare("Author", 1)
    inst.declare("Wrote", 2)
    inst.declare("Referenced", 1)
    tid = TupleIndependentDatabase(inst)
    for a in range(authors):
        tid.set_probability(
            inst.add("Author", (a,)), Fraction(rng.randrange(1, 8), 8)
        )
    for p in range(papers):
        tid.set_probability(
            inst.add("Referenced", (p,)), Fraction(rng.randrange(1, 8), 8)
        )
        for a in range(authors):
            if rng.random() < 0.7:
                tid.set_probability(
                    inst.add("Wrote", (a, p)),
                    Fraction(rng.randrange(1, 8), 8),
                )
    return tid


def main() -> None:
    tid = bibliography_tid()
    print(f"instance: {tid.instance!r}  ({len(tid)} tuples)")

    # ------------------------------------------------------------------
    # 1. A safe CQ outside the h-family.
    # ------------------------------------------------------------------
    productive = ConjunctiveQuery(
        (Atom("Author", ("a",)), Atom("Wrote", ("a", "p")))
    )
    print(f"\n[safe CQ] {productive}")
    plan = lift_query(productive)
    print(describe_plan(plan))
    start = time.perf_counter()
    exact = lifted_probability(productive, tid, plan=plan)
    lifted_ms = (time.perf_counter() - start) * 1e3
    oracle = probability_by_world_enumeration(productive, tid)
    result = evaluate(productive, tid)
    print(f"  Pr = {exact} ≈ {float(exact):.6f}  ({lifted_ms:.3f} ms)")
    print(f"  equals world enumeration  : {exact == oracle}")
    print(f"  auto routes to            : engine={result.engine}")

    # ------------------------------------------------------------------
    # 2. A safe union: inclusion-exclusion in the plan.
    # ------------------------------------------------------------------
    union = UnionOfCQs((
        productive,
        ConjunctiveQuery((Atom("Referenced", ("p",)),)),
    ))
    print(f"\n[safe union] {union}")
    plan = lift_query(union)
    print(describe_plan(plan))
    exact = lifted_probability(union, tid, plan=plan)
    print(f"  Pr = {exact} ≈ {float(exact):.6f}")
    print(
        f"  equals world enumeration  : "
        f"{exact == probability_by_world_enumeration(union, tid)}"
    )

    # ------------------------------------------------------------------
    # 3. The hard R(x),S(x,y),T(y) pattern: rejected, then brute-forced.
    # ------------------------------------------------------------------
    hard = ConjunctiveQuery((
        Atom("Author", ("a",)),
        Atom("Wrote", ("a", "p")),
        Atom("Referenced", ("p",)),
    ))
    verdict = classify_query(hard)
    print(f"\n[hard] {hard}")
    print(
        f"  classification            : known_hard={verdict.known_hard}"
        f"  extensional_safe={verdict.extensional_safe}"
    )
    try:
        lift_query(hard)
    except UnsafeQueryError as error:
        print(f"  safe-plan search refuses  : {error}")
    fallback = evaluate(hard, tid)
    print(
        f"  auto on {len(tid)} tuples        : engine={fallback.engine},"
        f" Pr = {fallback.probability}"
    )


if __name__ == "__main__":
    main()

"""Quickstart: evaluate Dalvi–Suciu's query q_9 three ways.

The running example of the paper (Examples 3.3/3.6): q_9 is the simplest
safe UCQ whose extensional evaluation needs the Möbius inversion formula,
and the paper's headline result compiles its lineage into a deterministic
decomposable circuit instead.  This script:

1. builds q_9 and checks its safety through both criteria
   (``mu_CNF(0̂,1̂) = 0`` and ``e(phi) = 0``);
2. builds a small tuple-independent database;
3. computes Pr(q_9) with the brute-force oracle, the extensional engine
   and the intensional (d-D) engine — all three agree exactly.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import HQuery, TupleIndependentDatabase, phi_9
from repro.core.euler import euler_characteristic
from repro.lattice.cnf_lattice import mobius_cnf_value
from repro.pqe import (
    compile_lineage,
    extensional_probability,
    intensional_probability,
    is_safe,
    probability_by_world_enumeration,
)


def build_database() -> TupleIndependentDatabase:
    """A small TID over the schema of the h_{3,i} queries: two drugs (x
    side), two proteins (y side), uncertain interaction layers S1..S3 and
    uncertain endpoint annotations R, T."""
    tid = TupleIndependentDatabase()
    tid.add("R", ("aspirin",), Fraction(9, 10))
    tid.add("R", ("ibuprofen",), Fraction(1, 2))
    tid.add("T", ("cox1",), Fraction(3, 4))
    tid.add("T", ("cox2",), Fraction(1, 4))
    for s, p in (("S1", Fraction(1, 2)), ("S2", Fraction(2, 3)),
                 ("S3", Fraction(1, 3))):
        tid.add(s, ("aspirin", "cox1"), p)
        tid.add(s, ("ibuprofen", "cox2"), p)
    return tid


def main() -> None:
    query = HQuery(3, phi_9())
    print(f"query: {query}")
    print(f"is a UCQ (monotone phi): {query.is_ucq()}")

    # Safety, both ways (Proposition 3.5 and Corollary 3.9).
    print(f"mu_CNF(0̂,1̂) = {mobius_cnf_value(query.phi)}")
    print(f"e(phi_9)      = {euler_characteristic(query.phi)}")
    print(f"safe (PTIME): {is_safe(query)}")

    tid = build_database()
    print(f"\ndatabase: {tid.instance} ({len(tid)} uncertain tuples)")

    brute = probability_by_world_enumeration(query, tid)
    extensional = extensional_probability(query, tid)
    intensional = intensional_probability(query, tid)
    print(f"\nPr(q_9)  brute force : {brute} = {float(brute):.6f}")
    print(f"Pr(q_9)  extensional : {extensional} = {float(extensional):.6f}")
    print(f"Pr(q_9)  intensional : {intensional} = {float(intensional):.6f}")
    assert brute == extensional == intensional

    compiled = compile_lineage(query, tid.instance)
    stats = compiled.circuit.stats()
    print(f"\ncompiled d-D lineage: {stats['TOTAL']} gates "
          f"({stats['AND']} ∧, {stats['OR']} ∨, {stats['NOT']} ¬), "
          f"NNF: {compiled.is_nnf}")
    print("the three engines agree exactly — inclusion–exclusion was "
          "simulated by\ndecomposability + determinism (+ negation), "
          "as Theorem 5.2 promises.")


if __name__ == "__main__":
    main()

"""Lineage reuse: the payoff of the intensional approach.

The paper's introduction motivates knowledge compilation by what a
compiled lineage can be *reused* for beyond one probability: updating
tuple probabilities and re-evaluating instantly, conditioning on evidence,
finding the most probable satisfying world, exact model counting, and
sampling satisfying worlds.  This script compiles the lineage of q_9 once
and then performs all five tasks on the same d-D circuit.

Run:  python examples/knowledge_compilation_reuse.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import HQuery, complete_tid, phi_9
from repro.circuits import (
    conditioned_probability,
    model_count,
    most_probable_model,
    sample_model,
)
from repro.pqe import compile_lineage


def main() -> None:
    query = HQuery(3, phi_9())
    tid = complete_tid(3, 2, 2, prob=Fraction(1, 2))
    print(f"query: {query}")
    print(f"database: {tid.instance} ({len(tid)} tuples, all at 1/2)")

    # Compile once.
    compiled = compile_lineage(query, tid.instance)
    print(f"compiled d-D: {len(compiled.circuit)} gates\n")

    # Task 1: probability.
    p0 = compiled.probability(tid)
    print(f"1. Pr(q_9)                       = {p0} = {float(p0):.6f}")

    # Task 2: update a tuple's probability, re-evaluate — no recompilation.
    some_tuple = tid.instance.tuple_ids()[0]
    tid.set_probability(some_tuple, Fraction(99, 100))
    p1 = compiled.probability(tid)
    print(f"2. after raising pi({some_tuple}) to 0.99: {float(p1):.6f}")

    # Task 3: condition on evidence (a tuple known absent).
    evidence_tuple = tid.instance.tuple_ids()[-1]
    p2 = conditioned_probability(
        compiled.circuit, tid.probability_map(), {evidence_tuple: False}
    )
    print(f"3. Pr(q_9 | {evidence_tuple} absent) = {float(p2):.6f}")

    # Task 4: most probable satisfying world (cf. [14, 34]).
    value, world = most_probable_model(compiled.circuit, tid.probability_map())
    present = sorted(str(t) for t, kept in world.items() if kept)
    print(f"4. most probable satisfying world has probability "
          f"{float(value):.6f}\n   and keeps {len(present)} tuples, e.g. "
          f"{present[:4]} ...")

    # Task 5: exact model counting and uniform-ish sampling (cf. [2, 34]).
    count = model_count(compiled.circuit)
    print(f"5. satisfying sub-databases: {count} of 2^{len(tid)}")
    rng = random.Random(0)
    sample = sample_model(compiled.circuit, tid.probability_map(), rng)
    kept = sum(1 for kept_flag in sample.values() if kept_flag)
    print(f"   one sampled satisfying world keeps {kept}/{len(tid)} tuples")

    # Sanity: the sampled world satisfies the query.
    assert compiled.circuit.evaluate(sample)
    print("\nall five tasks ran on the *same* compiled circuit — the reuse "
          "story of the intensional approach.")


if __name__ == "__main__":
    main()

"""Dichotomy explorer: classify every H-query at a given arity.

Sweeps all Boolean functions on V = {0..k} (k = 2 by default), classifies
each query Q_phi into the regions of the paper's Figure 1, and then walks
through one representative per region: the safe ones are evaluated by both
polynomial engines, the hard one is shown being refused with the exact
reason, and the conjectured-hard one is identified by its out-of-range
Euler characteristic.

Run:  python examples/dichotomy_explorer.py [k]
"""

from __future__ import annotations

import sys
from fractions import Fraction

from repro import BooleanFunction, HQuery, complete_tid
from repro.core.euler import monotone_euler_extremes
from repro.pqe import (
    NotCompilableError,
    Region,
    UnsafeQueryError,
    classify_function,
    extensional_probability,
    intensional_probability,
)


def sweep(k: int) -> dict[Region, list[BooleanFunction]]:
    """All functions on k+1 variables, grouped by Figure-1 region."""
    regions: dict[Region, list[BooleanFunction]] = {r: [] for r in Region}
    for table in range(1 << (1 << (k + 1))):
        phi = BooleanFunction(k + 1, table)
        regions[classify_function(phi).region].append(phi)
    return regions


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    if k > 2:
        print("k > 2 sweeps 2^(2^(k+1)) functions; this demo keeps k <= 2")
        k = 2
    regions = sweep(k)
    total = sum(len(v) for v in regions.values())
    print(f"all {total} H-queries at k = {k}, by Figure-1 region:")
    for region, functions in regions.items():
        print(f"  {region.value:<40} {len(functions):>6}")
    low, high = monotone_euler_extremes(k)
    print(f"(monotone-achievable Euler range: [{low}, {high}])\n")

    tid = complete_tid(k, 2, 2, prob=Fraction(1, 2))
    print(f"demo database: {tid.instance}\n")

    # A degenerate representative: compiled through the OBDD route.
    degenerate = next(
        phi for phi in regions[Region.DEGENERATE] if phi.sat_count() > 0
    )
    value = intensional_probability(HQuery(k, degenerate), tid)
    print(f"degenerate {degenerate!r}:\n  OBDD-backed Pr = {float(value):.6f}")

    # A safe nondegenerate representative: both engines agree.  Note a
    # fact the sweep makes visible: at k <= 2 *no* monotone nondegenerate
    # function has e = 0 — the first safe UCQ that genuinely needs Möbius
    # inversion is q_9 at k = 3 (Example 3.3), so the nondegenerate
    # zero-Euler region below is entirely non-monotone here.
    monotone_safe = [
        phi for phi in regions[Region.ZERO_EULER] if phi.is_monotone()
    ]
    print(f"monotone nondegenerate zero-Euler functions at k = {k}: "
          f"{len(monotone_safe)} (q_9 needs k = 3)")
    safe = next(
        phi for phi in regions[Region.ZERO_EULER] if phi.sat_count() > 0
    )
    query = HQuery(k, safe)
    intens = intensional_probability(query, tid)
    print(f"safe H-query {safe!r}:\n  intensional Pr = {float(intens):.6f}")
    if safe.is_monotone():
        ext = extensional_probability(query, tid)
        print(f"  extensional Pr = {float(ext):.6f} (agree: {ext == intens})")

    # A provably hard representative: both engines refuse, with reasons.
    hard = next(
        phi for phi in regions[Region.HARD] if phi.is_monotone()
    )
    query = HQuery(k, hard)
    print(f"#P-hard UCQ {hard!r}:")
    try:
        extensional_probability(query, tid)
    except UnsafeQueryError as error:
        print(f"  extensional engine refused: {error}")
    try:
        intensional_probability(query, tid)
    except NotCompilableError as error:
        print(f"  intensional engine refused: {error}")

    # A conjectured-hard one (no monotone function shares its Euler value).
    conjectured = regions[Region.CONJECTURED_HARD][0]
    euler = conjectured.euler_characteristic()
    print(f"conjectured-hard {conjectured!r}:\n  e = {euler} is outside "
          f"[{low}, {high}] — Proposition 6.4 cannot reach it "
          f"(Open problem 1)")


if __name__ == "__main__":
    main()

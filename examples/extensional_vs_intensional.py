"""Extensional vs. intensional: the two PTIME engines, side by side.

The paper's conjecture line of work asks when the *extensional* (lifted,
Dalvi–Suciu) and *intensional* (knowledge-compilation) approaches
coincide.  In this repository the question is executable: for safe
H+-queries both engines exist, both are fast, and their exact results
must agree Fraction for Fraction.  This script runs

1. a **safe** query — q_9, the paper's running example — through the
   extensional fast path (Möbius-batched lifted plans over columnar
   probability views, no lineage, no circuit) and the intensional
   compiler (d-D circuit + evaluation tape), printing both exact
   results, their agreement, per-call timings, and what ``auto`` picks;
2. an **unsafe** query — the full disjunction ``h_0 ∨ ... ∨ h_3`` —
   showing the extensional engine *refuse* (its hard bottom subquery
   survives with non-zero Möbius coefficient), the intensional compiler
   refuse (non-zero Euler characteristic), and the facade fall back to
   brute force while the instance is small.

Run:  PYTHONPATH=src python examples/extensional_vs_intensional.py
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.core.boolean_function import BooleanFunction
from repro.db.generator import complete_tid
from repro.pqe import (
    HardQueryError,
    UnsafeQueryError,
    classify,
    evaluate,
    extensional_plan_stats,
    extensional_probability,
    is_safe,
)
from repro.pqe.intensional import NotCompilableError, compile_lineage
from repro.queries.hqueries import HQuery, q9


def timed(fn, repeats: int = 5):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best * 1e3


def full_disjunction(k: int = 3) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def main() -> None:
    tid = complete_tid(3, 8, 8, prob=Fraction(1, 2))
    print(f"instance: {tid.instance!r}  ({len(tid)} tuples)")

    # ------------------------------------------------------------------
    # 1. The safe query: both engines, exact agreement, timings.
    # ------------------------------------------------------------------
    safe_query = q9()
    print(f"\n[safe] {safe_query}  is_safe={is_safe(safe_query)}")

    lifted, lifted_ms = timed(
        lambda: extensional_probability(safe_query, tid)
    )
    compiled = compile_lineage(safe_query, tid.instance)
    circuit_ms = compiled.compile_ms
    tape, tape_ms = timed(lambda: compiled.probability(tid))
    print(f"  extensional (lifted plan) : {lifted_ms:8.3f} ms/eval")
    print(
        f"  intensional (d-D tape)    : {tape_ms:8.3f} ms/eval"
        f"  (+ one-time compile {circuit_ms:.1f} ms,"
        f" {len(compiled.circuit)} gates)"
    )
    print(f"  exact Fractions identical : {lifted == tape}")
    print(f"  Pr(q9) = {lifted} ≈ {float(lifted):.6f}")

    auto = evaluate(safe_query, tid)
    stats = extensional_plan_stats()
    print(
        f"  auto routes to            : {auto.engine}"
        f"  (plan cache: {stats.hits} hits / {stats.misses} misses)"
    )

    # ------------------------------------------------------------------
    # 2. The unsafe query: every exact engine refuses or degrades.
    # ------------------------------------------------------------------
    hard_query = full_disjunction(3)
    verdict = classify(hard_query)
    print(
        f"\n[unsafe] full disjunction h_0 ∨ ... ∨ h_3"
        f"  e(phi)={verdict.euler}  region={verdict.region.name}"
    )
    try:
        extensional_probability(hard_query, tid)
    except UnsafeQueryError as error:
        print(f"  extensional refuses       : {error}")
    try:
        compile_lineage(hard_query, tid.instance)
    except NotCompilableError as error:
        print(f"  intensional refuses       : {error}")
    try:
        evaluate(hard_query, tid)
    except HardQueryError:
        print(
            "  auto refuses on this instance"
            f" ({len(tid)} tuples > brute-force limit)"
        )
    small = complete_tid(3, 1, 1, prob=Fraction(1, 2))
    fallback, fallback_ms = timed(lambda: evaluate(hard_query, small), 1)
    print(
        f"  auto on {len(small)} tuples        : engine={fallback.engine},"
        f" Pr = {fallback.probability} ({fallback_ms:.1f} ms)"
    )


if __name__ == "__main__":
    main()

"""Characteristic polynomials: watching Möbius become Euler.

Appendix B.2 of the paper proves Lemma 3.8 by writing the probability
``Pr(phi, pi_t)`` (every variable at probability ``t``) as a polynomial in
three ways — directly, through the CNF lattice, and through the DNF
lattice — and comparing leading coefficients.  This script makes the proof
tangible: it prints all three polynomials for q_9's function phi_9 (they
coincide, with a vanishing top coefficient — the polynomial shadow of
safety) and for an unsafe sibling (top coefficient = the non-zero Möbius
value), then recovers the polynomial a fourth way by exact Lagrange
interpolation of PQE values.

Run:  python examples/characteristic_polynomials.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import BooleanFunction, phi_9
from repro.lattice import (
    cnf_polynomial,
    dnf_polynomial,
    interpolated_polynomial,
    mobius_cnf_value,
    probability_polynomial,
)


def show(name: str, phi: BooleanFunction) -> None:
    k = phi.nvars - 1
    base = probability_polynomial(phi)
    cnf = cnf_polynomial(phi)
    dnf = dnf_polynomial(phi)
    interp = interpolated_polynomial(phi)
    print(f"{name}:")
    print(f"  P(t)          = {base}")
    print(f"  from CNF      = {cnf}")
    print(f"  from DNF      = {dnf}")
    print(f"  interpolated  = {interp}")
    assert base == cnf == dnf == interp
    top = base.coefficient(k + 1)
    print(f"  t^{k + 1} coefficient = {top}"
          f"  (= (-1)^{k + 1} * mu_CNF(0,1) = "
          f"{(-1) ** (k + 1) * mobius_cnf_value(phi)})")
    print(f"  e(phi) = {phi.euler_characteristic()}  "
          f"=> {'SAFE (PTIME)' if phi.euler_characteristic() == 0 else '#P-HARD'}")
    print()


def main() -> None:
    # The safe running example.
    show("phi_9 (safe)", phi_9())

    # An unsafe sibling: drop one CNF clause of phi_9.
    unsafe = BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}])
    show("phi_9 minus one clause (unsafe)", unsafe)

    # Evaluate the safe polynomial at a few operating points.
    polynomial = probability_polynomial(phi_9())
    print("Pr(q_9-pattern) at uniform tuple probability t:")
    for numerator in (1, 2, 3):
        t = Fraction(numerator, 4)
        print(f"  t = {t}: {polynomial(t)} = {float(polynomial(t)):.6f}")


if __name__ == "__main__":
    main()

"""Approximating the #P-hard region of the dichotomy.

The dichotomy of [12] (reproduced by this library's classifier) makes
non-zero-Euler H-queries #P-hard *exactly*.  This script shows the
practical way around it: randomized approximation.  We take the canonical
hard query ``H_k = h_{k,0} ∨ ... ∨ h_{k,k}`` on a database too large for
the brute-force oracle, confirm both exact engines refuse it, and then
estimate its probability with naive Monte Carlo and with the Karp–Luby
DNF estimator — including the small-probability regime where only
Karp–Luby maintains relative accuracy.

Run:  python examples/approximating_hard_queries.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import BooleanFunction, HQuery, complete_tid
from repro.pqe import (
    AccuracyBudget,
    HardQueryError,
    NotCompilableError,
    UnsafeQueryError,
    classify,
    evaluate,
    extensional_probability,
    intensional_probability,
    karp_luby_probability,
    monte_carlo_probability,
    probability_by_world_enumeration,
)


def hard_query(k: int) -> HQuery:
    phi = BooleanFunction.bottom(k + 1)
    for i in range(k + 1):
        phi = phi | BooleanFunction.variable(i, k + 1)
    return HQuery(k, phi)


def main() -> None:
    rng = random.Random(0)
    query = hard_query(3)
    verdict = classify(query)
    print(f"query: H_3 = h_0 ∨ h_1 ∨ h_2 ∨ h_3")
    print(f"classification: {verdict.region.value} (e = {verdict.euler})\n")

    large = complete_tid(3, 4, 4, prob=Fraction(1, 3))
    print(f"database: {large.instance} ({len(large)} tuples)")

    # Every exact engine refuses, each with its own reason.
    for name, runner in (
        ("extensional", lambda: extensional_probability(query, large)),
        ("intensional", lambda: intensional_probability(query, large)),
        ("auto facade", lambda: evaluate(query, large)),
    ):
        try:
            runner()
            print(f"  {name}: unexpectedly succeeded?!")
        except (UnsafeQueryError, NotCompilableError, HardQueryError) as e:
            reason = str(e).split(";")[0]
            print(f"  {name} refused: {reason}")

    # Approximation proceeds regardless of hardness.
    print("\nestimates on the large instance (scalar samplers):")
    mc = monte_carlo_probability(query, large, samples=400, rng=rng)
    kl = karp_luby_probability(query, large, samples=400, rng=rng)
    print(f"  monte carlo: {mc.value:.4f} ± {mc.half_width:.4f}")
    print(f"  karp–luby:   {kl.value:.4f} ± {kl.half_width:.4f}")

    # The vectorized engine: pass an accuracy budget and the auto facade
    # routes the hard query to the batched budget-adaptive sampler
    # instead of refusing.  Sampling stops as soon as the half-width
    # target is met — compare samples drawn with the fixed worst case.
    budget = AccuracyBudget(epsilon=0.02, min_samples=100, seed=7)
    result = evaluate(query, large, budget=budget)
    estimate = result.estimate
    print("\nvectorized budget-adaptive estimate (the serving route):")
    print(f"  engine: {result.engine}")
    print(f"  Pr ≈ {float(result.probability):.4f} "
          f"± {estimate.half_width:.4f}")
    print(f"  samples: {estimate.samples} in {estimate.waves} wave(s) "
          f"(fixed-count worst case: {budget.samples()})")

    # Cross-check on a small instance where brute force still runs.
    small = complete_tid(3, 1, 2, prob=Fraction(1, 3))
    truth = probability_by_world_enumeration(query, small)
    mc_small = monte_carlo_probability(query, small, samples=2000, rng=rng)
    kl_small = karp_luby_probability(query, small, samples=2000, rng=rng)
    print(f"\nsmall-instance cross-check (|D| = {len(small)}):")
    print(f"  exact truth: {float(truth):.6f}")
    print(f"  monte carlo: {mc_small.value:.4f} ± {mc_small.half_width:.4f} "
          f"(covers truth: {mc_small.covers(float(truth))})")
    print(f"  karp–luby:   {kl_small.value:.4f} ± {kl_small.half_width:.4f} "
          f"(covers truth: {kl_small.covers(float(truth))})")

    # The regime that motivates Karp–Luby: tiny probabilities.
    tiny = complete_tid(3, 1, 1, prob=Fraction(1, 50))
    truth = probability_by_world_enumeration(query, tiny)
    mc_tiny = monte_carlo_probability(query, tiny, samples=2000, rng=rng)
    kl_tiny = karp_luby_probability(query, tiny, samples=2000, rng=rng)
    print(f"\ntiny-probability regime (truth = {float(truth):.2e}):")
    print(f"  monte carlo estimate: {mc_tiny.value:.2e} "
          f"(additive error bars cannot see this scale)")
    print(f"  karp–luby estimate:   {kl_tiny.value:.2e} "
          f"(relative error "
          f"{abs(kl_tiny.value - float(truth)) / float(truth):.1%})")


if __name__ == "__main__":
    main()

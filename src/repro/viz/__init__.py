"""Text rendering of the paper's figures."""

from repro.viz.colored_graph import (
    render_colored_graph,
    render_matching_facts,
    render_transformation,
)
from repro.viz.figure1 import figure1_counts, render_figure1
from repro.viz.hasse import render_edges, render_hasse

__all__ = [
    "figure1_counts",
    "render_colored_graph",
    "render_edges",
    "render_figure1",
    "render_hasse",
    "render_matching_facts",
    "render_transformation",
]

"""Text rendering of colored hypercube graphs (Figures 3, 5 and 7).

The paper's Figures 3/5/7 display ``G_V[phi]`` with nodes grouped by
valuation size and the satisfying valuations colored.  We render each level
as one row, marking colored nodes with ``[...]`` and uncolored ones with
``(...)``, matching the figures' compact element notation (e.g. ``024``
for ``{0,2,4}``).
"""

from __future__ import annotations

from repro.core import valuations as _val
from repro.core.boolean_function import BooleanFunction
from repro.matching.graph import ColoredGraph


def _compact(mask: int) -> str:
    members = sorted(_val.mask_to_set(mask))
    if not members:
        return "∅"
    return "".join(map(str, members))


def render_colored_graph(phi: BooleanFunction) -> str:
    """Level-by-level rendering of ``G_V[phi]``; colored (satisfying)
    nodes are bracketed."""
    colored_graph = ColoredGraph(phi)
    lines = []
    for size, level in enumerate(colored_graph.levels()):
        row = " ".join(
            f"[{_compact(m)}]" if phi(m) else f"({_compact(m)})"
            for m in sorted(level)
        )
        lines.append(f"|nu|={size}:  {row}")
    lines.append("")
    lines.append(
        f"#phi = {phi.sat_count()},  e(phi) = {phi.euler_characteristic():+d}"
    )
    return "\n".join(lines)


def render_matching_facts(phi: BooleanFunction) -> str:
    """The Section-7 facts the figures illustrate: isolated nodes and
    perfect-matching status of both induced subgraphs."""
    from repro.matching.perfect_matching import has_perfect_matching

    colored_graph = ColoredGraph(phi)
    colored_pm = has_perfect_matching(colored_graph.colored_subgraph())
    uncolored_pm = has_perfect_matching(colored_graph.uncolored_subgraph())
    lines = [
        f"colored subgraph has perfect matching:   {colored_pm}",
        f"uncolored subgraph has perfect matching: {uncolored_pm}",
    ]
    isolated_c = colored_graph.isolated_colored_nodes()
    isolated_u = colored_graph.isolated_uncolored_nodes()
    if isolated_c:
        lines.append(
            "isolated colored nodes:   "
            + ", ".join(_compact(m) for m in isolated_c)
        )
    if isolated_u:
        lines.append(
            "isolated uncolored nodes: "
            + ", ".join(_compact(m) for m in isolated_u)
        )
    return "\n".join(lines)


def render_transformation(phi: BooleanFunction, steps) -> str:
    """Figure 4 style: the coloring after each ± move, one block per
    step."""
    from repro.core.transformation import apply_step

    blocks = [render_colored_graph(phi)]
    current = phi
    for step in steps:
        current = apply_step(current, step)
        blocks.append(f"after {step}:")
        blocks.append(render_colored_graph(current))
    return "\n\n".join(blocks)

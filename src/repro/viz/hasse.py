"""Text rendering of Hasse diagrams (Figure 2 of the paper).

Figure 2 shows the CNF lattice of ``phi_9`` with the Möbius value
``mu(n, 1̂)`` beside each node.  We render the same information as layered
ASCII: one row per "rank" (distance from the top in the covering
relation), each node printed as its variable set with its Möbius value.
"""

from __future__ import annotations

from repro.lattice.cnf_lattice import ClauseLattice


def _node_label(element: frozenset[int]) -> str:
    if not element:
        return "∅"
    return "{" + ",".join(map(str, sorted(element))) + "}"


def render_hasse(lattice: ClauseLattice) -> str:
    """Layered rendering of a clause lattice with Möbius annotations.

    Layers are computed as longest distance from the top along covering
    edges, matching the visual layout of the paper's Figure 2 (top ``1̂ = ∅``
    first, bottom ``0̂ = DEP(phi)`` last).
    """
    poset = lattice.poset
    top = lattice.top
    column = lattice.mobius_column()
    edges = lattice.hasse_edges()
    depth: dict[frozenset[int], int] = {top: 0}
    # Longest-path layering: iterate until stable (the poset is tiny).
    changed = True
    while changed:
        changed = False
        for lower, upper in edges:
            candidate = depth.get(upper, 0) + 1
            if depth.get(lower, -1) < candidate:
                depth[lower] = candidate
                changed = True
    by_layer: dict[int, list[frozenset[int]]] = {}
    for element in poset.elements:
        by_layer.setdefault(depth.get(element, 0), []).append(element)
    lines = []
    for layer in sorted(by_layer):
        row = "   ".join(
            f"{_node_label(e)} [mu={column[e]:+d}]"
            for e in sorted(by_layer[layer], key=lambda e: sorted(e))
        )
        lines.append(row)
    lines.append("")
    lines.append(
        f"mu(0-hat, 1-hat) = {lattice.mobius_bottom_top():+d}"
        f"   (0-hat = {_node_label(lattice.bottom)})"
    )
    return "\n".join(lines)


def render_edges(lattice: ClauseLattice) -> str:
    """The covering relation, one edge per line (lower < upper)."""
    lines = [
        f"{_node_label(lower)} -- {_node_label(upper)}"
        for lower, upper in sorted(
            lattice.hasse_edges(),
            key=lambda e: (len(e[0]), sorted(e[0]), len(e[1]), sorted(e[1])),
        )
    ]
    return "\n".join(lines)

"""ASCII rendering of the paper's Figure 1 (the region picture).

Figure 1 nests rectangles: all H-queries; the UCQ band (monotone phi);
the OBDD-compilable column (degenerate = inversion-free); the zero-Euler
region (d-D-compilable, containing all safe H+-queries); the provably
#P-hard region; and the conjectured-hard remainder.  We render the picture
with live counts for a given arity, so the qualitative figure becomes a
quantitative table in the same shape.
"""

from __future__ import annotations

from repro.core.boolean_function import BooleanFunction
from repro.pqe.dichotomy import Region, classify_function


def figure1_counts(k: int) -> dict[str, int]:
    """Counts for every (region × monotone?) cell of Figure 1."""
    cells = {
        "degenerate_monotone": 0,
        "degenerate_general": 0,
        "zero_euler_monotone": 0,
        "zero_euler_general": 0,
        "hard_monotone": 0,
        "hard_general": 0,
        "conjectured_general": 0,
    }
    for table in range(1 << (1 << (k + 1))):
        phi = BooleanFunction(k + 1, table)
        result = classify_function(phi)
        monotone = result.is_ucq
        if result.region is Region.DEGENERATE:
            key = "degenerate_monotone" if monotone else "degenerate_general"
        elif result.region is Region.ZERO_EULER:
            key = "zero_euler_monotone" if monotone else "zero_euler_general"
        elif result.region is Region.HARD:
            key = "hard_monotone" if monotone else "hard_general"
        else:
            # Monotone queries never land here (dichotomy of [12]).
            key = "conjectured_general"
        cells[key] += 1
    return cells


def render_figure1(k: int) -> str:
    """The Figure-1 picture with counts for arity ``k``."""
    cells = figure1_counts(k)
    total = sum(cells.values())
    ucq = (
        cells["degenerate_monotone"]
        + cells["zero_euler_monotone"]
        + cells["hard_monotone"]
    )
    lines = [
        f"all H-queries at k = {k}: {total} functions",
        "┌────────────────────────────────────────────────────────────┐",
        f"│ H  (Boolean combinations of the h_k,i)                     │",
        "│ ┌───────────────────────────────────────────┐              │",
        f"│ │ H+ (UCQs, monotone phi): {ucq:>6}           │              │",
        "│ │                                           │              │",
        f"│ │  safe = zero Euler: {cells['zero_euler_monotone'] + cells['degenerate_monotone']:>6}                │              │",
        f"│ │    of which OBDD (degenerate): {cells['degenerate_monotone']:>6}     │              │",
        f"│ │  unsafe (#P-hard): {cells['hard_monotone']:>6}                 │              │",
        "│ └───────────────────────────────────────────┘              │",
        f"│ non-monotone, d-D PTIME (e = 0): "
        f"{cells['zero_euler_general'] + cells['degenerate_general']:>6}                     │",
        f"│    of which OBDD (degenerate): {cells['degenerate_general']:>6}                       │",
        f"│ non-monotone, #P-hard (Prop 6.4): {cells['hard_general']:>6}                    │",
        f"│ conjectured #P-hard (dotted gray): {cells['conjectured_general']:>6}                   │",
        "└────────────────────────────────────────────────────────────┘",
    ]
    return "\n".join(lines)

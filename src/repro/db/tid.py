"""Tuple-independent databases (TIDs) and their possible-world semantics.

Section 2 of the paper: a TID is a pair ``(D, pi)`` of a relational instance
and a probability per tuple; it induces the product distribution over
sub-instances ``D' ⊆ D`` where each tuple is kept independently with its
probability.  Probabilities are stored as exact :class:`fractions.Fraction`
values so that the three evaluation engines of :mod:`repro.pqe` can be
compared with exact equality in tests.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Hashable, Iterator, Mapping
from fractions import Fraction

from repro.db.relation import Instance, TupleId


class TupleIndependentDatabase:
    """A TID ``(D, pi)``: an instance plus per-tuple probabilities.

    Tuples never assigned a probability default to probability 1
    (deterministic facts), matching common practice.
    """

    def __init__(self, instance: Instance | None = None):
        self.instance = instance if instance is not None else Instance()
        self._prob: dict[TupleId, Fraction] = {}
        self._prob_version = 0  # Bumped per pi mutation; keys derived caches.

    def add(
        self,
        relation: str,
        values: tuple[Hashable, ...],
        prob: Fraction | int | str | float = 1,
    ) -> TupleId:
        """Insert a fact with its probability.

        Probabilities are normalized to :class:`Fraction`; floats are
        converted via ``Fraction(str(p))`` to keep decimal literals exact.

        :raises ValueError: if the probability is outside ``[0, 1]``.
        """
        fraction = _as_fraction(prob)
        if not 0 <= fraction <= 1:
            raise ValueError(f"probability {prob!r} outside [0, 1]")
        tuple_id = self.instance.add(relation, values)
        self._prob[tuple_id] = fraction
        self._prob_version += 1
        return tuple_id

    def probability_of(self, tuple_id: TupleId) -> Fraction:
        """``pi(t)`` (1 for facts never explicitly weighted)."""
        return self._prob.get(tuple_id, Fraction(1))

    @property
    def probability_version(self) -> int:
        """A counter bumped on every ``pi`` mutation (``add`` /
        :meth:`set_probability`).  Together with the instance's relation
        versions it keys caches of anything derived from the *numeric*
        content of the TID — e.g. the columnar probability arrays of
        :mod:`repro.db.columnar` — the way
        :meth:`~repro.db.relation.Instance.cached_derivation` keys caches
        of purely structural state."""
        return self._prob_version

    def set_probability(
        self, tuple_id: TupleId, prob: Fraction | int | str | float
    ) -> None:
        """Update one tuple's probability (the paper's motivating reuse
        scenario: update ``pi`` and re-evaluate a compiled lineage)."""
        fraction = _as_fraction(prob)
        if not 0 <= fraction <= 1:
            raise ValueError(f"probability {prob!r} outside [0, 1]")
        if not self.instance.has(tuple_id.relation, tuple_id.values):
            raise KeyError(f"unknown tuple {tuple_id}")
        self._prob[tuple_id] = fraction
        self._prob_version += 1

    def probability_map(self) -> dict[TupleId, Fraction]:
        """``pi`` as a dict over all facts of the instance."""
        return {t: self.probability_of(t) for t in self.instance.tuple_ids()}

    def world_probability(self, present: frozenset[TupleId]) -> Fraction:
        """``Pr(D')`` of Section 2: the product over kept and dropped
        tuples."""
        probability = Fraction(1)
        for tuple_id in self.instance.tuple_ids():
            p = self.probability_of(tuple_id)
            probability *= p if tuple_id in present else (1 - p)
        return probability

    def possible_worlds(
        self,
    ) -> Iterator[tuple[frozenset[TupleId], Fraction, Instance]]:
        """Enumerate all ``2^|D|`` worlds with their probabilities.

        Exponential — reserved for the brute-force oracle and tests.
        """
        tuple_ids = self.instance.tuple_ids()
        for picks in itertools.product([False, True], repeat=len(tuple_ids)):
            present = frozenset(
                t for t, keep in zip(tuple_ids, picks) if keep
            )
            yield (
                present,
                self.world_probability(present),
                self.instance.restrict_to(present),
            )

    def sample_world(self, rng: random.Random) -> frozenset[TupleId]:
        """Draw one world from the TID distribution.

        Each tuple's inclusion is decided by :func:`exact_bernoulli`, so
        probabilities with no binary-float representation (1/3, 1/7, ...)
        are sampled bias-free — the samplers in
        :mod:`repro.pqe.approximate` inherit the exactness guarantee the
        rest of the repo gets from :class:`~fractions.Fraction`.
        """
        return frozenset(
            t
            for t in self.instance.tuple_ids()
            if exact_bernoulli(rng, self.probability_of(t))
        )

    def __len__(self) -> int:
        return len(self.instance)

    def __repr__(self) -> str:
        return f"TupleIndependentDatabase({self.instance!r})"


def _as_fraction(prob: Fraction | int | str | float) -> Fraction:
    if isinstance(prob, float):
        return Fraction(str(prob))
    return Fraction(prob)


def exact_bernoulli(rng: random.Random, p: Fraction) -> bool:
    """An exact coin flip: ``True`` with probability *exactly* ``p``.

    ``rng.random() < float(p)`` succeeds with the probability of the
    nearest 53-bit float, not of ``p`` — a bias of up to ``2**-53`` per
    draw that compounds over the per-tuple draws of a sampled world and
    contradicts the repo's exact-:class:`Fraction` guarantees.  A uniform
    integer below the denominator costs the same and has zero bias:
    ``randrange(q)`` is uniform on ``{0, ..., q-1}``, so the draw lands
    below the numerator with probability exactly ``p``.
    """
    p = Fraction(p)
    return rng.randrange(p.denominator) < p.numerator


def valuation_probability(
    prob: Mapping[Hashable, Fraction], valuation: frozenset[Hashable]
) -> Fraction:
    """Definition B.2: the probability of one valuation under independent
    variables — product of ``p`` over members and ``1 - p`` over the rest of
    the mapping's domain."""
    probability = Fraction(1)
    for label, p in prob.items():
        probability *= p if label in valuation else (1 - p)
    return probability

"""Tuple-independent databases (TIDs) and their possible-world semantics.

Section 2 of the paper: a TID is a pair ``(D, pi)`` of a relational instance
and a probability per tuple; it induces the product distribution over
sub-instances ``D' ⊆ D`` where each tuple is kept independently with its
probability.  Probabilities are stored as exact :class:`fractions.Fraction`
values so that the three evaluation engines of :mod:`repro.pqe` can be
compared with exact equality in tests.

Sampling lives here too, in two forms:

* :func:`exact_bernoulli` + :meth:`TupleIndependentDatabase.sample_world` —
  one world at a time off a ``random.Random`` (the scalar samplers of
  :mod:`repro.pqe.approximate` and their fixed-seed regression tests);
* :class:`WorldSampler` / :class:`DrawStream` — the batched counter-based
  draw stream of the vectorized sampling engine: every draw is addressed
  by an absolute ``(lane, index)`` counter and produced by a SplitMix64
  word generator plus top-bits rejection, so the numpy path and the
  pure-Python fallback emit *bit-identical* integers, draws never shift
  when neighbors are skipped, and a growing sample prefix is stable under
  any wave schedule.  Exact-integer-draw semantics per tuple are
  preserved: a draw for probability ``p = a/q`` is a uniform integer
  below ``q`` compared against ``a`` — zero float bias, like
  :func:`exact_bernoulli`.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from collections.abc import Hashable, Iterator, Mapping, Sequence
from fractions import Fraction

from repro.db.relation import Instance, TupleId

try:  # numpy is optional: the batched samplers fall back to pure Python.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None


class TupleIndependentDatabase:
    """A TID ``(D, pi)``: an instance plus per-tuple probabilities.

    Tuples never assigned a probability default to probability 1
    (deterministic facts), matching common practice.
    """

    def __init__(self, instance: Instance | None = None):
        self.instance = instance if instance is not None else Instance()
        self._prob: dict[TupleId, Fraction] = {}
        self._prob_version = 0  # Bumped per pi mutation; keys derived caches.

    def add(
        self,
        relation: str,
        values: tuple[Hashable, ...],
        prob: Fraction | int | str | float = 1,
    ) -> TupleId:
        """Insert a fact with its probability.

        Probabilities are normalized to :class:`Fraction`; floats are
        converted via ``Fraction(str(p))`` to keep decimal literals exact.

        :raises ValueError: if the probability is outside ``[0, 1]``.
        """
        fraction = _as_fraction(prob)
        if not 0 <= fraction <= 1:
            raise ValueError(f"probability {prob!r} outside [0, 1]")
        tuple_id = self.instance.add(relation, values)
        self._prob[tuple_id] = fraction
        self._prob_version += 1
        return tuple_id

    def probability_of(self, tuple_id: TupleId) -> Fraction:
        """``pi(t)`` (1 for facts never explicitly weighted)."""
        return self._prob.get(tuple_id, Fraction(1))

    @property
    def probability_version(self) -> int:
        """A counter bumped on every ``pi`` mutation (``add`` /
        :meth:`set_probability`).  Together with the instance's relation
        versions it keys caches of anything derived from the *numeric*
        content of the TID — e.g. the columnar probability arrays of
        :mod:`repro.db.columnar` — the way
        :meth:`~repro.db.relation.Instance.cached_derivation` keys caches
        of purely structural state."""
        return self._prob_version

    def set_probability(
        self, tuple_id: TupleId, prob: Fraction | int | str | float
    ) -> None:
        """Update one tuple's probability (the paper's motivating reuse
        scenario: update ``pi`` and re-evaluate a compiled lineage)."""
        fraction = _as_fraction(prob)
        if not 0 <= fraction <= 1:
            raise ValueError(f"probability {prob!r} outside [0, 1]")
        if not self.instance.has(tuple_id.relation, tuple_id.values):
            raise KeyError(f"unknown tuple {tuple_id}")
        self._prob[tuple_id] = fraction
        self._prob_version += 1

    def probability_map(self) -> dict[TupleId, Fraction]:
        """``pi`` as a dict over all facts of the instance."""
        return {t: self.probability_of(t) for t in self.instance.tuple_ids()}

    def probability_fingerprint(self) -> tuple:
        """A hashable value identifying the *numeric* content of the TID:
        per-tuple ``(numerator, denominator)`` pairs in ``tuple_ids()``
        order.

        The sampling layer groups concurrent hard-query requests whose
        instances share a content fingerprint; two such requests may be
        served one shared sampling sweep only when their probabilities
        agree as well, which this fingerprint decides.  Memoized against
        ``probability_version`` and the instance's relation versions.
        """
        versions = (self._prob_version, self.instance.content_fingerprint())
        cached = getattr(self, "_prob_fingerprint", None)
        if cached is not None and cached[0] == versions:
            return cached[1]
        fingerprint = tuple(
            (p.numerator, p.denominator)
            for p in (
                self.probability_of(t) for t in self.instance.tuple_ids()
            )
        )
        self._prob_fingerprint = (versions, fingerprint)
        return fingerprint

    def probability_digest(self) -> int:
        """A process-stable 64-bit blake2b digest of
        :meth:`probability_fingerprint`.

        Where the fingerprint is the full per-tuple numeric content,
        the digest is its compact *address*: the serving layer dedups
        fused microbatch twins on it, and the multiprocess backend uses
        ``(Instance.shard_key(), probability_digest())`` as the
        content-addressed key under which a probability column is
        published to worker processes — stable across processes (unlike
        ``hash()`` under ``PYTHONHASHSEED``) and across the fork
        boundary.  Memoized with the fingerprint.
        """
        versions = (self._prob_version, self.instance.content_fingerprint())
        cached = getattr(self, "_prob_digest", None)
        if cached is not None and cached[0] == versions:
            return cached[1]
        payload = repr(self.probability_fingerprint()).encode()
        digest = int.from_bytes(
            hashlib.blake2b(payload, digest_size=8).digest(), "big"
        )
        self._prob_digest = (versions, digest)
        return digest

    def world_probability(self, present: frozenset[TupleId]) -> Fraction:
        """``Pr(D')`` of Section 2: the product over kept and dropped
        tuples."""
        probability = Fraction(1)
        for tuple_id in self.instance.tuple_ids():
            p = self.probability_of(tuple_id)
            probability *= p if tuple_id in present else (1 - p)
        return probability

    def possible_worlds(
        self,
    ) -> Iterator[tuple[frozenset[TupleId], Fraction, Instance]]:
        """Enumerate all ``2^|D|`` worlds with their probabilities.

        Exponential — reserved for the brute-force oracle and tests.
        """
        tuple_ids = self.instance.tuple_ids()
        for picks in itertools.product([False, True], repeat=len(tuple_ids)):
            present = frozenset(
                t for t, keep in zip(tuple_ids, picks) if keep
            )
            yield (
                present,
                self.world_probability(present),
                self.instance.restrict_to(present),
            )

    def sample_world(self, rng: random.Random) -> frozenset[TupleId]:
        """Draw one world from the TID distribution.

        Each tuple's inclusion is decided by :func:`exact_bernoulli`, so
        probabilities with no binary-float representation (1/3, 1/7, ...)
        are sampled bias-free — the samplers in
        :mod:`repro.pqe.approximate` inherit the exactness guarantee the
        rest of the repo gets from :class:`~fractions.Fraction`.
        """
        return frozenset(
            t
            for t in self.instance.tuple_ids()
            if exact_bernoulli(rng, self.probability_of(t))
        )

    def __len__(self) -> int:
        return len(self.instance)

    def __repr__(self) -> str:
        return f"TupleIndependentDatabase({self.instance!r})"


def _as_fraction(prob: Fraction | int | str | float) -> Fraction:
    if isinstance(prob, float):
        return Fraction(str(prob))
    return Fraction(prob)


def exact_bernoulli(rng: random.Random, p: Fraction) -> bool:
    """An exact coin flip: ``True`` with probability *exactly* ``p``.

    ``rng.random() < float(p)`` succeeds with the probability of the
    nearest 53-bit float, not of ``p`` — a bias of up to ``2**-53`` per
    draw that compounds over the per-tuple draws of a sampled world and
    contradicts the repo's exact-:class:`Fraction` guarantees.  A uniform
    integer below the denominator costs the same and has zero bias:
    ``randrange(q)`` is uniform on ``{0, ..., q-1}``, so the draw lands
    below the numerator with probability exactly ``p``.
    """
    p = Fraction(p)
    return rng.randrange(p.denominator) < p.numerator


# ----------------------------------------------------------------------
# Counter-based exact draw stream (the vectorized sampling substrate)
# ----------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15  #: SplitMix64 counter increment
_ROUND_SALT = 0xD1342543DE82EF95  #: decorrelates rejection retries
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB


def _mix64(x: int) -> int:
    """The SplitMix64 finalizer: a 64-bit bijective mix whose outputs
    over any counter sequence pass as independent uniform words."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX_A) & _MASK64
    x ^= x >> 27
    x = (x * _MIX_B) & _MASK64
    x ^= x >> 31
    return x


def _stream_base(seed: int, lane: int) -> int:
    """The per-``(seed, lane)`` base offset of a draw stream.  Lanes keep
    logically distinct draw kinds (world cells, clause selection) on
    non-overlapping counter sequences under one seed."""
    return _mix64(_mix64(seed & _MASK64) ^ ((lane * _GOLDEN) & _MASK64))


def _word(base: int, counter: int, round_: int) -> int:
    """Word ``round_`` of draw ``counter``: all arithmetic is mod 2**64,
    so the numpy uint64 path computes the identical value."""
    return _mix64(
        (base + counter * _GOLDEN + round_ * _ROUND_SALT) & _MASK64
    )


def _py_uniform_below(base: int, counter: int, bound: int) -> int:
    """An exact uniform integer in ``[0, bound)`` for one counter.

    Top-``k`` bits of successive words (``k`` minimal with
    ``2**k >= bound``) are rejection-sampled: each candidate is uniform on
    ``[0, 2**k)``, so the accepted value is uniform on ``[0, bound)``
    *exactly* — the counter-stream analogue of the integer draws behind
    :func:`exact_bernoulli`, with no float grid anywhere.  Bounds beyond
    64 bits concatenate ``ceil(k/64)`` words per round (big-int path),
    so exotic common denominators stay exact too.
    """
    if bound <= 1:
        return 0
    k = (bound - 1).bit_length()
    if k <= 64:
        shift = 64 - k
        round_ = 0
        while True:
            value = _word(base, counter, round_) >> shift
            if value < bound:
                return value
            round_ += 1
    chunks = (k + 63) // 64
    shift = 64 * chunks - k
    round_ = 0
    while True:
        acc = 0
        for j in range(chunks):
            acc = (acc << 64) | _word(base, counter, round_ * chunks + j)
        value = acc >> shift
        if value < bound:
            return value
        round_ += 1


#: Bounds whose draws the numpy path vectorizes; wider bounds (and the
#: pure-Python backend) go through :func:`_py_uniform_below`.  63 bits
#: keeps every intermediate comfortably inside uint64 comparisons.
_VECTOR_BOUND_BITS = 63


def _np_mix64(x, scratch=None):
    """:func:`_mix64` over a uint64 array, in place (wrapping semantics
    match the masked Python arithmetic bit for bit).  ``x`` is consumed;
    ``scratch`` is an optional same-shape uint64 work buffer."""
    if scratch is None or scratch.shape != x.shape:
        scratch = _np.empty_like(x)
    _np.right_shift(x, _np.uint64(30), out=scratch)
    x ^= scratch
    x *= _np.uint64(_MIX_A)
    _np.right_shift(x, _np.uint64(27), out=scratch)
    x ^= scratch
    x *= _np.uint64(_MIX_B)
    _np.right_shift(x, _np.uint64(31), out=scratch)
    x ^= scratch
    return x


def _np_uniform_below(base: int, counters, bound: int, scratch=None):
    """Vectorized :func:`_py_uniform_below` for ``(bound - 1).bit_length()
    <= _VECTOR_BOUND_BITS``: identical words, identical rejection
    schedule, identical accepted values — per element, regardless of what
    its neighbors rejected (counters are independent).

    ``counters`` is preserved; power-of-two bounds take a no-rejection
    fast path (every top-``k``-bits candidate is already below the
    bound)."""
    k = (bound - 1).bit_length()
    shift = _np.uint64(64 - k)
    bound_v = _np.uint64(bound)
    with _np.errstate(over="ignore"):
        words = counters * _np.uint64(_GOLDEN)
        words += _np.uint64(base)
        _np_mix64(words, scratch)
        values = words
        values >>= shift
        if bound & (bound - 1) == 0:
            return values  # candidates are uniform on [0, bound) already
        pending = values >= bound_v
        round_ = 0
        while pending.any():
            round_ += 1
            salt = _np.uint64(
                (base + round_ * _ROUND_SALT) & _MASK64
            )
            retry = counters[pending] * _np.uint64(_GOLDEN)
            retry += salt
            _np_mix64(retry)
            retry >>= shift
            values[pending] = retry
            pending[pending] = retry >= bound_v
    return values


class DrawStream:
    """One seeded lane of exact uniform integer draws, addressed by
    absolute index.

    ``below(bound, start, count)`` returns draws ``start ..
    start + count - 1`` — the same integers whether drawn in one call or
    any partition into waves, and whether numpy is available or not.
    """

    def __init__(self, seed: int, lane: int = 0):
        self._base = _stream_base(seed, lane)

    def below(
        self,
        bound: int,
        start: int,
        count: int,
        use_numpy: bool | None = None,
    ):
        """``count`` exact uniform draws in ``[0, bound)`` — an ``int64``
        numpy array on the vector path (the bound fits 63 bits there, so
        the cast is lossless and spares the hot caller a per-element
        boxing roundtrip), a list of Python ints otherwise.  Values are
        identical either way."""
        if bound < 1:
            raise ValueError(f"bound must be positive, got {bound}")
        if use_numpy is None:
            use_numpy = _np is not None
        if use_numpy and bound > 1 and (
            (bound - 1).bit_length() <= _VECTOR_BOUND_BITS
        ):
            counters = (
                _np.uint64(start) + _np.arange(count, dtype=_np.uint64)
            )
            return _np_uniform_below(self._base, counters, bound).astype(
                _np.int64
            )
        if bound == 1:
            return [0] * count
        return [
            _py_uniform_below(self._base, index, bound)
            for index in range(start, start + count)
        ]


class WorldSampler:
    """Batched exact-Bernoulli world sampling on the counter stream.

    Column ``t`` of row ``s`` is 1 iff the uniform integer draw at
    counter ``(start + s) * n_tuples + t`` lands below the tuple's
    probability numerator — the batched form of
    :meth:`TupleIndependentDatabase.sample_world`'s per-tuple exact
    draws.  Deterministic tuples (probability 0 or 1) consume no draws;
    because the stream is counter-addressed, skipping them shifts
    nothing.  ``sample`` returns a ``count × n_tuples`` 0/1 matrix
    (numpy ``uint8`` on the vector path, lists of ints on the
    fallback), bit-identical across backends.
    """

    def __init__(
        self,
        probabilities: Sequence[Fraction],
        seed: int,
        lane: int = 0,
    ):
        self._n = len(probabilities)
        self._base = _stream_base(seed, lane)
        self._certain: list[tuple[int, int]] = []
        small: dict[int, tuple[list[int], list[int]]] = {}
        self._big: list[tuple[int, int, int]] = []
        for column, p in enumerate(probabilities):
            p = Fraction(p)
            if p.denominator == 1:
                self._certain.append((column, 1 if p.numerator >= 1 else 0))
            elif (p.denominator - 1).bit_length() <= _VECTOR_BOUND_BITS:
                cols, nums = small.setdefault(p.denominator, ([], []))
                cols.append(column)
                nums.append(p.numerator)
            else:
                self._big.append((column, p.numerator, p.denominator))
        self._small = sorted(small.items())

    @property
    def n_tuples(self) -> int:
        return self._n

    def sample(
        self, start: int, count: int, use_numpy: bool | None = None
    ):
        """Worlds ``start .. start + count - 1`` as a 0/1 matrix."""
        if use_numpy is None:
            use_numpy = _np is not None
        if use_numpy:
            return self._sample_numpy(start, count)
        return self._sample_python(start, count)

    def _sample_numpy(self, start: int, count: int):
        worlds = _np.zeros((count, self._n), dtype=_np.uint8)
        for column, present in self._certain:
            if present:
                worlds[:, column] = 1
        if self._small and count:
            golden = _np.uint64(_GOLDEN)
            with _np.errstate(over="ignore"):
                row_base = (
                    _np.uint64(start)
                    + _np.arange(count, dtype=_np.uint64)
                ) * _np.uint64(self._n)
                # Pre-multiplied counter pieces: the draw words are
                # mix64(base + counter * GOLDEN) and the counter is
                # row_base + column, so one broadcast add of the two
                # premultiplied halves builds base + counter * GOLDEN
                # directly — no full-size multiply pass per group.
                row_words = row_base * golden + _np.uint64(self._base)
            scratch = None
            for denominator, (cols, nums) in self._small:
                cols_arr = _np.array(cols, dtype=_np.uint64)
                if denominator & (denominator - 1) == 0:
                    # Power-of-two bound: the top-k candidate is already
                    # uniform on [0, bound) — no rejection, no counters.
                    with _np.errstate(over="ignore"):
                        words = (
                            row_words[:, None]
                            + (cols_arr * golden)[None, :]
                        )
                    if scratch is None or scratch.shape != words.shape:
                        scratch = _np.empty_like(words)
                    _np_mix64(words, scratch)
                    words >>= _np.uint64(
                        64 - (denominator - 1).bit_length()
                    )
                    values = words
                else:
                    with _np.errstate(over="ignore"):
                        counters = (
                            row_base[:, None] + cols_arr[None, :]
                        )
                    if scratch is None or scratch.shape != counters.shape:
                        scratch = _np.empty_like(counters)
                    values = _np_uniform_below(
                        self._base, counters, denominator, scratch
                    )
                worlds[:, cols] = (
                    values < _np.array(nums, dtype=_np.uint64)
                ).astype(_np.uint8)
        for column, numerator, denominator in self._big:
            for s in range(count):
                counter = (start + s) * self._n + column
                draw = _py_uniform_below(self._base, counter, denominator)
                worlds[s, column] = 1 if draw < numerator else 0
        return worlds

    def _sample_python(self, start: int, count: int) -> list[list[int]]:
        rows = []
        for s in range(start, start + count):
            row = [0] * self._n
            row_base = s * self._n
            for column, present in self._certain:
                row[column] = present
            for denominator, (cols, nums) in self._small:
                for column, numerator in zip(cols, nums):
                    draw = _py_uniform_below(
                        self._base, row_base + column, denominator
                    )
                    row[column] = 1 if draw < numerator else 0
            for column, numerator, denominator in self._big:
                draw = _py_uniform_below(
                    self._base, row_base + column, denominator
                )
                row[column] = 1 if draw < numerator else 0
            rows.append(row)
        return rows


def valuation_probability(
    prob: Mapping[Hashable, Fraction], valuation: frozenset[Hashable]
) -> Fraction:
    """Definition B.2: the probability of one valuation under independent
    variables — product of ``p`` over members and ``1 - p`` over the rest of
    the mapping's domain."""
    probability = Fraction(1)
    for label, p in prob.items():
        probability *= p if label in valuation else (1 - p)
    return probability

"""Relational schema and instance primitives.

The paper works over the fixed vocabulary of the ``h_{k,i}`` queries —
unary ``R`` and ``T`` plus binary ``S_1, ..., S_k`` — but the substrate here
is generic: named relations of fixed arity holding tuples of domain
constants.  Every fact carries a stable :class:`TupleId`, which doubles as
the lineage variable labeling tuples in circuits, OBDDs and Boolean
functions.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class TupleId:
    """The identity of one fact: relation name plus the constant tuple.

    Instances are the *variables* of lineages; they are hashable, ordered
    (for stable variable orders) and self-describing.
    """

    relation: str
    values: tuple[Hashable, ...]

    def __str__(self) -> str:
        inner = ",".join(map(str, self.values))
        return f"{self.relation}({inner})"


class Relation:
    """One named relation of a fixed arity with set semantics."""

    def __init__(self, name: str, arity: int):
        if arity < 1:
            raise ValueError(f"arity must be positive, got {arity}")
        self.name = name
        self.arity = arity
        self._tuples: set[tuple[Hashable, ...]] = set()

    def add(self, values: tuple[Hashable, ...]) -> TupleId:
        """Insert a fact; returns its :class:`TupleId` (idempotent)."""
        if len(values) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got tuple {values!r}"
            )
        self._tuples.add(tuple(values))
        return TupleId(self.name, tuple(values))

    def __contains__(self, values: tuple[Hashable, ...]) -> bool:
        return tuple(values) in self._tuples

    def __iter__(self) -> Iterator[tuple[Hashable, ...]]:
        return iter(sorted(self._tuples, key=repr))

    def __len__(self) -> int:
        return len(self._tuples)


class Instance:
    """A relational instance: a collection of named relations.

    >>> db = Instance()
    >>> _ = db.add("R", ("a",))
    >>> db.relation("R").arity
    1
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def relation(self, name: str) -> Relation:
        """The relation with the given name.

        :raises KeyError: if no fact of that relation was ever added and the
            relation was not declared.
        """
        return self._relations[name]

    def declare(self, name: str, arity: int) -> Relation:
        """Declare a relation (idempotent; arity must match if it exists)."""
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise ValueError(
                    f"relation {name} redeclared with arity {arity}, "
                    f"was {existing.arity}"
                )
            return existing
        created = Relation(name, arity)
        self._relations[name] = created
        return created

    def add(self, name: str, values: tuple[Hashable, ...]) -> TupleId:
        """Insert a fact, declaring the relation on first use."""
        relation = self.declare(name, len(values))
        return relation.add(values)

    def has(self, name: str, values: tuple[Hashable, ...]) -> bool:
        """Whether the given fact is present."""
        relation = self._relations.get(name)
        return relation is not None and tuple(values) in relation

    def relations(self) -> Iterator[Relation]:
        """Iterate over the relations, sorted by name."""
        for name in sorted(self._relations):
            yield self._relations[name]

    def tuple_ids(self) -> list[TupleId]:
        """All facts of the instance as :class:`TupleId` values, sorted."""
        ids = [
            TupleId(relation.name, values)
            for relation in self._relations.values()
            for values in relation
        ]
        return sorted(ids)

    def __len__(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def active_domain(self) -> list[Hashable]:
        """All constants appearing in some fact, sorted by repr."""
        domain: set[Hashable] = set()
        for relation in self._relations.values():
            for values in relation:
                domain.update(values)
        return sorted(domain, key=repr)

    def restrict_to(self, present: Iterable[TupleId]) -> "Instance":
        """The sub-instance containing exactly the given facts (a possible
        world ``D' ⊆ D``)."""
        keep = set(present)
        world = Instance()
        for relation in self._relations.values():
            world.declare(relation.name, relation.arity)
            for values in relation:
                if TupleId(relation.name, values) in keep:
                    world.add(relation.name, values)
        return world

    def __repr__(self) -> str:
        parts = [f"{r.name}:{len(r)}" for r in self.relations()]
        return f"Instance({', '.join(parts)})"

"""Relational schema and instance primitives.

The paper works over the fixed vocabulary of the ``h_{k,i}`` queries —
unary ``R`` and ``T`` plus binary ``S_1, ..., S_k`` — but the substrate here
is generic: named relations of fixed arity holding tuples of domain
constants.  Every fact carries a stable :class:`TupleId`, which doubles as
the lineage variable labeling tuples in circuits, OBDDs and Boolean
functions.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class TupleId:
    """The identity of one fact: relation name plus the constant tuple.

    Instances are the *variables* of lineages; they are hashable, ordered
    (for stable variable orders) and self-describing.
    """

    relation: str
    values: tuple[Hashable, ...]

    def __str__(self) -> str:
        inner = ",".join(map(str, self.values))
        return f"{self.relation}({inner})"


class _FingerprintTuple(tuple):
    """A tuple that computes its hash once.

    Instance fingerprints are large tuples used as cache keys; plain
    tuples rehash all elements on every dict lookup.  The memoized
    fingerprint object is also reused identically across lookups, so
    dict probes hit the identity fast path instead of element-wise
    comparison.
    """

    def __new__(cls, iterable=()):
        self = super().__new__(cls, iterable)
        self._hash = tuple.__hash__(self)
        return self

    def __hash__(self):
        return self._hash


class Relation:
    """One named relation of a fixed arity with set semantics.

    Point lookups on any subset of positions are served by hash indexes
    built lazily on first use (and discarded when a new fact arrives), so
    join matching in :mod:`repro.queries.cq` runs off O(1) probes instead
    of full scans.
    """

    def __init__(self, name: str, arity: int):
        if arity < 1:
            raise ValueError(f"arity must be positive, got {arity}")
        self.name = name
        self.arity = arity
        self._tuples: set[tuple[Hashable, ...]] = set()
        self._sorted: list[tuple[Hashable, ...]] | None = None
        self._version = 0  # Bumped per insert; keys derived caches.
        self._indexes: dict[
            tuple[int, ...], dict[tuple, list[tuple[Hashable, ...]]]
        ] = {}

    def add(self, values: tuple[Hashable, ...]) -> TupleId:
        """Insert a fact; returns its :class:`TupleId` (idempotent)."""
        if len(values) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got tuple {values!r}"
            )
        values = tuple(values)
        if values not in self._tuples:
            self._tuples.add(values)
            self._sorted = None
            self._version += 1
            self._indexes.clear()
        return TupleId(self.name, values)

    def __contains__(self, values: tuple[Hashable, ...]) -> bool:
        return tuple(values) in self._tuples

    def __iter__(self) -> Iterator[tuple[Hashable, ...]]:
        return iter(self._sorted_tuples())

    def _sorted_tuples(self) -> list[tuple[Hashable, ...]]:
        """The facts in the relation's deterministic (repr-sorted) order;
        memoized until the next insertion."""
        if self._sorted is None:
            self._sorted = sorted(self._tuples, key=repr)
        return self._sorted

    def __len__(self) -> int:
        return len(self._tuples)

    def index(
        self, positions: tuple[int, ...]
    ) -> dict[tuple, list[tuple[Hashable, ...]]]:
        """The hash index on the given positions, grouping each key (the
        projection onto ``positions``) to its facts in the relation's
        deterministic (repr-sorted) order.  Built lazily, then memoized
        until the next insertion.  The returned dict and its bucket lists
        are shared cache state — treat them as read-only."""
        if not all(0 <= p < self.arity for p in positions):
            raise ValueError(
                f"index positions {positions!r} out of range for arity "
                f"{self.arity}"
            )
        idx = self._indexes.get(positions)
        if idx is None:
            idx = {}
            for values in self:
                key = tuple(values[p] for p in positions)
                idx.setdefault(key, []).append(values)
            self._indexes[positions] = idx
        return idx

    def lookup(
        self, positions: tuple[int, ...], key: tuple
    ) -> list[tuple[Hashable, ...]]:
        """The facts whose projection onto ``positions`` equals ``key``.

        The returned list is shared cache state — treat it as read-only.
        """
        if not positions:
            # Full scan: nothing to filter, serve the memoized sorted
            # list instead of materializing a trivial {(): everything}.
            return self._sorted_tuples() if key == () else []
        return self.index(positions).get(key, [])


class Instance:
    """A relational instance: a collection of named relations.

    >>> db = Instance()
    >>> _ = db.add("R", ("a",))
    >>> db.relation("R").arity
    1
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._tuple_ids_cache: list[TupleId] | None = None
        self._tuple_ids_versions: tuple | None = None
        self._fingerprint_cache: tuple[TupleId, ...] | None = None
        self._fingerprint_versions: tuple | None = None
        self._derived: dict[Hashable, tuple[tuple, object]] = {}
        self._derivation_lock = threading.RLock()

    @property
    def derivation_lock(self) -> "threading.RLock":
        """The reentrant lock guarding everything derived from this
        instance's content: :meth:`cached_derivation` builds, and any
        compilation that *grows* a shared derivation afterwards (the
        side OBDD managers gain nodes while lineage templates are
        plugged).  Concurrent compilers over one instance must hold it —
        :class:`repro.pqe.engine.CompilationCache` does; replicated
        serving makes such races routine, since replica shards keep
        separate caches over the same ``Instance``."""
        return self._derivation_lock

    def relation(self, name: str) -> Relation:
        """The relation with the given name.

        :raises KeyError: if no fact of that relation was ever added and the
            relation was not declared.
        """
        return self._relations[name]

    def declare(self, name: str, arity: int) -> Relation:
        """Declare a relation (idempotent; arity must match if it exists)."""
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise ValueError(
                    f"relation {name} redeclared with arity {arity}, "
                    f"was {existing.arity}"
                )
            return existing
        created = Relation(name, arity)
        self._relations[name] = created
        return created

    def add(self, name: str, values: tuple[Hashable, ...]) -> TupleId:
        """Insert a fact, declaring the relation on first use."""
        relation = self.declare(name, len(values))
        return relation.add(values)

    def has(self, name: str, values: tuple[Hashable, ...]) -> bool:
        """Whether the given fact is present."""
        relation = self._relations.get(name)
        return relation is not None and tuple(values) in relation

    def relations(self) -> Iterator[Relation]:
        """Iterate over the relations, sorted by name."""
        for name in sorted(self._relations):
            yield self._relations[name]

    def tuple_ids(self) -> list[TupleId]:
        """All facts of the instance as :class:`TupleId` values, sorted.

        The sorted list is memoized against the relations' insertion
        version counters (evaluation fingerprints and probability maps
        call this on every pass); a fresh copy is returned each time, so
        callers may mutate their list freely.
        """
        versions = self._versions()
        if (
            self._tuple_ids_cache is None
            or self._tuple_ids_versions != versions
        ):
            self._tuple_ids_cache = sorted(
                TupleId(relation.name, values)
                for relation in self._relations.values()
                for values in relation
            )
            self._tuple_ids_versions = versions
        return list(self._tuple_ids_cache)

    def content_fingerprint(self) -> tuple[TupleId, ...]:
        """A hashable value identifying the instance's exact content,
        memoized (hash included) against the relations' insertion
        versions — repeated cache lookups on an unchanged instance cost
        O(1) instead of re-sorting and re-hashing every fact."""
        versions = self._versions()
        if (
            self._fingerprint_cache is None
            or self._fingerprint_versions != versions
        ):
            self._fingerprint_cache = _FingerprintTuple(self.tuple_ids())
            self._fingerprint_versions = versions
        return self._fingerprint_cache

    def shard_key(self) -> int:
        """A process-stable 64-bit digest of the instance's content.

        ``hash(content_fingerprint())`` would do for in-process routing,
        but Python salts string hashes per process (``PYTHONHASHSEED``),
        so a sharded service restarted — or spread over several
        processes — would route the same instance to different shards and
        cold-start every compilation cache.  This digest depends only on
        the facts' reprs, making shard assignment reproducible across
        runs.  Memoized against the relations' insertion versions via
        :meth:`cached_derivation`.
        """

        def build(db: "Instance") -> int:
            digest = hashlib.blake2b(digest_size=8)
            for tuple_id in db.tuple_ids():
                digest.update(repr(tuple_id).encode())
                digest.update(b"\x00")
            return int.from_bytes(digest.digest(), "big")

        return self.cached_derivation("instance.shard_key", build)

    def cached_derivation(self, key: Hashable, build) -> object:
        """Memoize ``build(self)`` against the relations' insertion
        versions, like :meth:`content_fingerprint` does for the tuple-id
        list.

        Derived structures that depend only on the instance's content —
        variable orders, side automata, shared OBDD managers in
        :mod:`repro.pqe.degenerate` — are built once per ``key`` and
        reused until a mutation bumps a relation version.  The cached
        value is shared state: treat it as read-only unless the builder
        documents otherwise.
        """
        with self._derivation_lock:
            versions = self._versions()
            entry = self._derived.get(key)
            if entry is not None and entry[0] == versions:
                return entry[1]
            value = build(self)
            self._derived[key] = (versions, value)
            return value

    def _versions(self) -> tuple:
        return tuple(
            (name, relation._version)
            for name, relation in sorted(self._relations.items())
        )

    def __len__(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def active_domain(self) -> list[Hashable]:
        """All constants appearing in some fact, sorted by repr."""
        domain: set[Hashable] = set()
        for relation in self._relations.values():
            for values in relation:
                domain.update(values)
        return sorted(domain, key=repr)

    def restrict_to(self, present: Iterable[TupleId]) -> "Instance":
        """The sub-instance containing exactly the given facts (a possible
        world ``D' ⊆ D``)."""
        keep = set(present)
        world = Instance()
        for relation in self._relations.values():
            world.declare(relation.name, relation.arity)
            for values in relation:
                if TupleId(relation.name, values) in keep:
                    world.add(relation.name, values)
        return world

    def __repr__(self) -> str:
        parts = [f"{r.name}:{len(r)}" for r in self.relations()]
        return f"Instance({', '.join(parts)})"

"""Loading and saving tuple-independent databases as TSV text.

A pragmatic interchange format so datasets can live next to the code:
one fact per line, tab-separated —

    relation <TAB> value1,value2,... <TAB> probability

Probabilities are written exactly as ``numerator/denominator`` (or an
integer); blank lines and ``#`` comments are ignored.  A header-free,
diff-friendly format that round-trips exactly (Fractions in, Fractions
out).  Relations that must exist but have no facts can be declared with a
``!declare relation arity`` directive line.
"""

from __future__ import annotations

import io
from fractions import Fraction
from pathlib import Path

from repro.db.tid import TupleIndependentDatabase


def dumps_tid(tid: TupleIndependentDatabase) -> str:
    """Serialize a TID to the TSV text format (sorted, deterministic)."""
    lines = ["# repro TID v1"]
    for relation in tid.instance.relations():
        if len(relation) == 0:
            lines.append(f"!declare {relation.name} {relation.arity}")
    for tuple_id in tid.instance.tuple_ids():
        values = ",".join(str(v) for v in tuple_id.values)
        probability = tid.probability_of(tuple_id)
        lines.append(f"{tuple_id.relation}\t{values}\t{probability}")
    return "\n".join(lines) + "\n"


def loads_tid(text: str) -> TupleIndependentDatabase:
    """Parse the TSV text format back into a TID.

    :raises ValueError: on malformed lines.
    """
    tid = TupleIndependentDatabase()
    for line_number, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("!declare"):
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"line {line_number}: malformed declare: {line!r}"
                )
            tid.instance.declare(parts[1], int(parts[2]))
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise ValueError(
                f"line {line_number}: expected 3 tab-separated fields, "
                f"got {len(parts)}: {line!r}"
            )
        relation, values_text, probability_text = parts
        values = tuple(values_text.split(","))
        try:
            probability = Fraction(probability_text)
        except (ValueError, ZeroDivisionError) as error:
            raise ValueError(
                f"line {line_number}: bad probability "
                f"{probability_text!r}"
            ) from error
        tid.add(relation, values, probability)
    return tid


def save_tid(tid: TupleIndependentDatabase, path: str | Path) -> None:
    """Write a TID to a file."""
    Path(path).write_text(dumps_tid(tid), encoding="utf-8")


def load_tid(path: str | Path) -> TupleIndependentDatabase:
    """Read a TID from a file."""
    return loads_tid(Path(path).read_text(encoding="utf-8"))

"""Columnar probability views of TIDs over the ``h_{k,i}`` schema.

The extensional safe-plan evaluator (:mod:`repro.pqe.safe_plans`) spends
its time in grouped reductions: per-``(x, y)`` chains over the ``S_i``
probabilities, per-``x`` products over ``y`` (the ``R`` side), per-``y``
products over ``x`` (the ``T`` side).  Walking ``TupleId`` dict lookups
per tuple per group pays hash-and-branch costs on every access; this
module materializes, once per TID, the *columns* those scans consume:

* the side domains ``xs`` / ``ys`` (sorted, as in the lifted plans) and
  their dense index maps — the group keys;
* per-relation probability columns: ``R`` over ``xs``, ``T`` over ``ys``,
  each ``S_i`` as a dense ``nx x ny`` grid in x-major order (absent
  tuples hold probability 0, matching the evaluator's convention), so
  grouping by ``x`` is a row, by ``y`` a column, and by ``(x, y)`` an
  element;
* two numeric encodings of every column: ``float`` arrays (numpy when
  importable, plain lists otherwise) for the vectorized backend, and
  integer numerators over one shared common denominator ``D`` for the
  exact backend — the same integer common-denominator trick
  :meth:`repro.circuits.evaluator.EvaluationTape.evaluate` uses, with
  the same 64-bit guard (``denominator`` is ``None`` beyond it and the
  exact caller falls back to :class:`~fractions.Fraction` arithmetic).

Caching is two-layered, both keyed by the existing version counters: the
*layout* (domains, index maps, present-tuple positions) depends only on
the instance's facts and lives in
:meth:`~repro.db.relation.Instance.cached_derivation`; the *filled*
columns additionally depend on ``pi`` and are memoized on the TID against
``(instance versions, probability version)``, so probability updates
rebuild only the numeric fill, never the layout.  Both cached objects are
shared state — treat them as read-only.

Beyond the fixed h-schema, the same two-layer scheme serves *generalized*
views keyed by ``(relation, grouping positions)`` —
:func:`relation_column_values` (projection domains) and
:func:`relation_probability_columns` (per-group probability columns) —
which the lifted-inference IR of :mod:`repro.pqe.lift` consumes for its
projection sweeps over arbitrary schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd

from repro.db.relation import Instance, TupleId
from repro.db.tid import TupleIndependentDatabase

try:  # numpy is optional: the float columns fall back to plain lists.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

#: Common denominators above this many bits disable the exact integer
#: encoding (mirrors ``EvaluationTape._evaluate_common_denominator``).
EXACT_DENOMINATOR_BITS = 64


def _s_chain_index(name: str) -> int | None:
    """``i`` for a schema relation ``S<i>`` (ASCII digits only), ``None``
    for anything else — out-of-schema relations like ``"Score"`` must be
    ignored, not crash the parse, and non-ASCII digit names must never
    alias a genuine ``S_i`` grid."""
    suffix = name[1:]
    if not name.startswith("S") or not suffix:
        return None
    if not (suffix.isascii() and suffix.isdigit()):
        return None
    return int(suffix)


@dataclass(frozen=True)
class HColumnarLayout:
    """The structural half of a columnar view: group keys and the dense
    positions of the present tuples.  Content-derived only — cached via
    :meth:`~repro.db.relation.Instance.cached_derivation`."""

    k: int
    xs: tuple  #: x-side active domain, sorted by repr
    ys: tuple  #: y-side active domain, sorted by repr
    #: present ``R`` facts as ``(x index, TupleId)``
    r_slots: tuple[tuple[int, TupleId], ...]
    #: present ``T`` facts as ``(y index, TupleId)``
    t_slots: tuple[tuple[int, TupleId], ...]
    #: per ``S_i`` (``i = 1..k``): present facts as flat x-major grid
    #: positions ``(x_index * ny + y_index, TupleId)``
    s_slots: tuple[tuple[tuple[int, TupleId], ...], ...]

    @property
    def nx(self) -> int:
        return len(self.xs)

    @property
    def ny(self) -> int:
        return len(self.ys)


def columnar_layout(instance: Instance, k: int) -> HColumnarLayout:
    """The (memoized) columnar layout of ``instance`` for the ``h_{k,i}``
    schema ``R, S1..Sk, T``.  Relations outside the schema are ignored,
    like the lifted plans ignore them."""

    def build(db: Instance) -> HColumnarLayout:
        xs: set = set()
        ys: set = set()
        for tuple_id in db.tuple_ids():
            if tuple_id.relation == "R":
                xs.add(tuple_id.values[0])
            elif tuple_id.relation == "T":
                ys.add(tuple_id.values[0])
            elif tuple_id.relation.startswith("S"):
                xs.add(tuple_id.values[0])
                ys.add(tuple_id.values[1])
        xs_sorted = tuple(sorted(xs, key=repr))
        ys_sorted = tuple(sorted(ys, key=repr))
        x_index = {x: i for i, x in enumerate(xs_sorted)}
        y_index = {y: j for j, y in enumerate(ys_sorted)}
        ny = len(ys_sorted)
        r_slots = []
        t_slots = []
        s_slots: list[list[tuple[int, TupleId]]] = [[] for _ in range(k)]
        for tuple_id in db.tuple_ids():
            name = tuple_id.relation
            if name == "R":
                r_slots.append((x_index[tuple_id.values[0]], tuple_id))
            elif name == "T":
                t_slots.append((y_index[tuple_id.values[0]], tuple_id))
            elif _s_chain_index(name) is not None:
                i = _s_chain_index(name)
                if 1 <= i <= k:
                    position = (
                        x_index[tuple_id.values[0]] * ny
                        + y_index[tuple_id.values[1]]
                    )
                    s_slots[i - 1].append((position, tuple_id))
        return HColumnarLayout(
            k=k,
            xs=xs_sorted,
            ys=ys_sorted,
            r_slots=tuple(r_slots),
            t_slots=tuple(t_slots),
            s_slots=tuple(tuple(slots) for slots in s_slots),
        )

    return instance.cached_derivation(("db.columnar.layout", k), build)


class HColumns:
    """A filled columnar view: the layout plus probability columns in
    both numeric encodings.

    Float columns (always present): ``r_float`` over ``xs``, ``t_float``
    over ``ys``, ``s_float[i-1]`` an ``nx x ny`` grid for ``S_i`` — numpy
    arrays when numpy is importable, nested lists otherwise (``s_float``
    rows are then per-``x`` lists).

    Exact columns (present when every ``pi`` shares a common denominator
    ``D`` of at most :data:`EXACT_DENOMINATOR_BITS` bits): integer
    numerator lists ``r_num`` / ``t_num`` / flat x-major ``s_num[i-1]``
    with ``p = num / D``; ``denominator`` is ``None`` otherwise and exact
    callers fall back to :class:`~fractions.Fraction` arithmetic.
    """

    __slots__ = (
        "layout",
        "denominator",
        "r_num",
        "t_num",
        "s_num",
        "r_float",
        "t_float",
        "s_float",
    )

    def __init__(self, layout: HColumnarLayout, tid: TupleIndependentDatabase):
        self.layout = layout
        nx, ny, k = layout.nx, layout.ny, layout.k
        probability_of = tid.probability_of

        r_prob = [Fraction(0)] * nx
        for slot, tuple_id in layout.r_slots:
            r_prob[slot] = probability_of(tuple_id)
        t_prob = [Fraction(0)] * ny
        for slot, tuple_id in layout.t_slots:
            t_prob[slot] = probability_of(tuple_id)
        s_prob = [[Fraction(0)] * (nx * ny) for _ in range(k)]
        for i, slots in enumerate(layout.s_slots):
            column = s_prob[i]
            for slot, tuple_id in slots:
                column[slot] = probability_of(tuple_id)

        denominator = 1
        for column in (r_prob, t_prob, *s_prob):
            for p in column:
                q = p.denominator
                if q > 1:
                    denominator = denominator * q // gcd(denominator, q)
                    if denominator.bit_length() > EXACT_DENOMINATOR_BITS:
                        denominator = None
                        break
            if denominator is None:
                break
        self.denominator = denominator
        if denominator is not None:
            D = denominator
            self.r_num = [p.numerator * (D // p.denominator) for p in r_prob]
            self.t_num = [p.numerator * (D // p.denominator) for p in t_prob]
            self.s_num = [
                [p.numerator * (D // p.denominator) for p in column]
                for column in s_prob
            ]
        else:
            self.r_num = self.t_num = None
            self.s_num = None

        if _np is not None:
            self.r_float = _np.array([float(p) for p in r_prob], dtype=float)
            self.t_float = _np.array([float(p) for p in t_prob], dtype=float)
            self.s_float = [
                _np.array([float(p) for p in column], dtype=float).reshape(
                    nx, ny
                )
                for column in s_prob
            ]
        else:
            self.r_float = [float(p) for p in r_prob]
            self.t_float = [float(p) for p in t_prob]
            self.s_float = [
                [
                    [float(column[x * ny + y]) for y in range(ny)]
                    for x in range(nx)
                ]
                for column in s_prob
            ]


@dataclass(frozen=True)
class ProbabilityColumns:
    """The *transportable* columnar encoding of a TID's numeric content:
    per-tuple numerator/denominator columns aligned with
    ``instance.tuple_ids()`` order.

    This is the payload the multiprocess serving backend publishes
    through ``multiprocessing.shared_memory`` — two int64 arrays are
    enough to rebuild every :class:`~fractions.Fraction` exactly on the
    far side, and the ``tuple_ids()`` order is content-determined, so
    both sides agree on the alignment without shipping the tuples
    themselves.  Entries whose numerator or denominator does not fit an
    int64 word are carried in ``overflow`` as ``(slot, numerator,
    denominator)`` triples (arbitrary-precision ints, pickled alongside
    the segment) and hold the sentinel ``0/0`` in the arrays.
    """

    numerators: tuple[int, ...]
    denominators: tuple[int, ...]
    overflow: tuple[tuple[int, int, int], ...] = ()

    def __len__(self) -> int:
        return len(self.numerators)

    def fractions(self) -> list[Fraction]:
        """The per-tuple probabilities, ``tuple_ids()`` order."""
        probabilities = [
            Fraction(num, den) if den else None
            for num, den in zip(self.numerators, self.denominators)
        ]
        for slot, num, den in self.overflow:
            probabilities[slot] = Fraction(num, den)
        return probabilities


#: int64 payload bound for the shared-memory probability columns.
_WORD_BOUND = 1 << 63


def probability_columns(tid: TupleIndependentDatabase) -> ProbabilityColumns:
    """The (memoized) transportable columns of ``tid`` — keyed, like the
    :func:`h_columns` fill, by ``(instance versions, probability
    version)``, so the encode cost is paid once per numeric content."""
    key = (tid.instance._versions(), tid.probability_version)
    cached = getattr(tid, "_probability_columns", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    numerators: list[int] = []
    denominators: list[int] = []
    overflow: list[tuple[int, int, int]] = []
    for slot, tuple_id in enumerate(tid.instance.tuple_ids()):
        p = tid.probability_of(tuple_id)
        num, den = p.numerator, p.denominator
        if num < _WORD_BOUND and den < _WORD_BOUND:
            numerators.append(num)
            denominators.append(den)
        else:
            numerators.append(0)
            denominators.append(0)
            overflow.append((slot, num, den))
    columns = ProbabilityColumns(
        tuple(numerators), tuple(denominators), tuple(overflow)
    )
    tid._probability_columns = (key, columns)
    return columns


def apply_probability_columns(
    tid: TupleIndependentDatabase, columns: ProbabilityColumns
) -> None:
    """Rehydrate ``columns`` onto ``tid`` (same instance content on the
    receiving side — the alignment contract is ``tuple_ids()`` order)."""
    tuple_ids = tid.instance.tuple_ids()
    if len(tuple_ids) != len(columns):
        raise ValueError(
            f"probability columns carry {len(columns)} entries for an "
            f"instance with {len(tuple_ids)} tuples — instance content "
            f"mismatch across the process boundary"
        )
    for tuple_id, probability in zip(tuple_ids, columns.fractions()):
        tid.set_probability(tuple_id, probability)


def relation_column_values(
    instance: Instance, relation: str, position: int
) -> tuple:
    """The sorted distinct values of one relation column — the active
    domain a lifted independent-project ranges over.  Content-derived
    only, so it lives in ``cached_derivation``; undeclared relations and
    out-of-range positions yield the empty domain (the query side treats
    them as empty relations)."""

    def build(db: Instance) -> tuple:
        try:
            rel = db.relation(relation)
        except KeyError:
            return ()
        if not 0 <= position < rel.arity:
            return ()
        return tuple(
            sorted({values[position] for values in rel}, key=repr)
        )

    return instance.cached_derivation(
        ("db.columnar.column_values", relation, position), build
    )


def relation_grouping_layout(
    instance: Instance, relation: str, key_positions: tuple[int, ...]
) -> dict:
    """The structural half of a generalized columnar view: the relation's
    facts grouped by their projection onto ``key_positions``, each group
    a tuple of :class:`TupleId` s in the relation's deterministic order.
    Cached via ``cached_derivation``, like :func:`columnar_layout`."""

    def build(db: Instance) -> dict:
        try:
            rel = db.relation(relation)
        except KeyError:
            return {}
        if any(not 0 <= p < rel.arity for p in key_positions):
            return {}
        groups: dict[tuple, list[TupleId]] = {}
        for values in rel:
            key = tuple(values[p] for p in key_positions)
            groups.setdefault(key, []).append(TupleId(relation, values))
        return {key: tuple(ids) for key, ids in groups.items()}

    return instance.cached_derivation(
        ("db.columnar.grouping", relation, key_positions), build
    )


def relation_probability_columns(
    tid: TupleIndependentDatabase,
    relation: str,
    key_positions: tuple[int, ...],
) -> dict:
    """The filled generalized columnar view: per-group float probability
    columns (numpy arrays when importable) for the facts of ``relation``
    grouped by ``key_positions`` — the kernel input of the lifted IR's
    vectorized projections.  The fill is memoized on the TID against
    ``(instance versions, probability version)``, exactly like the
    :func:`h_columns` fill; the layout half comes from
    :func:`relation_grouping_layout`.  Read-only shared cache state."""
    version_key = (tid.instance._versions(), tid.probability_version)
    cache = getattr(tid, "_relation_columns_cache", None)
    if cache is None:
        cache = {}
        tid._relation_columns_cache = cache
    entry = cache.get((relation, key_positions))
    if entry is not None and entry[0] == version_key:
        return entry[1]
    layout = relation_grouping_layout(tid.instance, relation, key_positions)
    probability_of = tid.probability_of
    if _np is not None:
        filled = {
            key: _np.array(
                [float(probability_of(t)) for t in ids], dtype=float
            )
            for key, ids in layout.items()
        }
    else:
        filled = {
            key: [float(probability_of(t)) for t in ids]
            for key, ids in layout.items()
        }
    cache[(relation, key_positions)] = (version_key, filled)
    return filled


def h_columns(tid: TupleIndependentDatabase, k: int) -> HColumns:
    """The (memoized) columnar view of ``tid`` for the ``h_{k,i}`` schema.

    The layout half is keyed by the instance's relation versions (via
    ``cached_derivation``); the numeric fill is additionally keyed by the
    TID's :attr:`~repro.db.tid.TupleIndependentDatabase.probability_version`,
    so inserts and ``set_probability`` calls invalidate exactly what they
    changed.  The returned view is shared cache state — read-only.
    """
    key = (tid.instance._versions(), tid.probability_version)
    cache = getattr(tid, "_columnar_cache", None)
    if cache is None:
        cache = {}
        tid._columnar_cache = cache
    entry = cache.get(k)  # one slot per k: mixed-k workloads never thrash
    if entry is not None and entry[0] == key:
        return entry[1]
    columns = HColumns(columnar_layout(tid.instance, k), tid)
    cache[k] = (key, columns)
    return columns

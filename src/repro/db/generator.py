"""Generators for databases over the ``h_{k,i}`` vocabulary.

The H-queries live on the schema ``R(x), S_1(x,y), ..., S_k(x,y), T(y)``
(Definition 3.1).  The benches and tests need families of TIDs of controlled
size and shape over this schema; this module builds them: complete bipartite
instances, random sub-instances, and adversarially sparse ones.  Domain
elements are the strings ``a1..an`` (left/x side) and ``b1..bm`` (right/y
side); using separate sides keeps the ``x``/``y`` roles of the queries
legible in lineages.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.db.tid import TupleIndependentDatabase


def relation_names(k: int) -> list[str]:
    """The schema of the ``h_{k,i}`` queries: ``R, S1..Sk, T``."""
    if k < 1:
        raise ValueError(f"the paper fixes k >= 1, got {k}")
    return ["R"] + [f"S{i}" for i in range(1, k + 1)] + ["T"]


def complete_tid(
    k: int,
    n_left: int,
    n_right: int | None = None,
    prob: Fraction | str = Fraction(1, 2),
) -> TupleIndependentDatabase:
    """The complete instance: all ``R(a)``, ``T(b)`` and all ``Si(a, b)``
    over ``a in {a1..a_nleft}``, ``b in {b1..b_nright}``, every tuple at the
    same probability.

    This is the canonical hard family (lineages of ``h_k`` on complete
    bipartite graphs encode #P-hard counting), and the default scaling
    family for the benches: ``|D| = n_left + n_right + k * n_left * n_right``.
    """
    n_right = n_left if n_right is None else n_right
    tid = TupleIndependentDatabase()
    p = Fraction(prob)
    left = [f"a{i}" for i in range(1, n_left + 1)]
    right = [f"b{j}" for j in range(1, n_right + 1)]
    for a in left:
        tid.add("R", (a,), p)
    for b in right:
        tid.add("T", (b,), p)
    for i in range(1, k + 1):
        for a in left:
            for b in right:
                tid.add(f"S{i}", (a, b), p)
    # Declare every relation even if empty so queries can mention them.
    for name in relation_names(k):
        arity = 1 if name in ("R", "T") else 2
        tid.instance.declare(name, arity)
    return tid


def random_tid(
    k: int,
    n_left: int,
    n_right: int,
    rng: random.Random,
    tuple_density: float = 0.7,
) -> TupleIndependentDatabase:
    """A random sub-instance of the complete one: each potential tuple is
    present with probability ``tuple_density`` and carries a random rational
    probability with small denominator (so exact engine comparisons stay
    cheap)."""
    tid = TupleIndependentDatabase()
    left = [f"a{i}" for i in range(1, n_left + 1)]
    right = [f"b{j}" for j in range(1, n_right + 1)]

    def random_prob() -> Fraction:
        return Fraction(rng.randint(0, 8), 8)

    for a in left:
        if rng.random() < tuple_density:
            tid.add("R", (a,), random_prob())
    for b in right:
        if rng.random() < tuple_density:
            tid.add("T", (b,), random_prob())
    for i in range(1, k + 1):
        for a in left:
            for b in right:
                if rng.random() < tuple_density:
                    tid.add(f"S{i}", (a, b), random_prob())
    for name in relation_names(k):
        arity = 1 if name in ("R", "T") else 2
        tid.instance.declare(name, arity)
    return tid


def path_tid(
    k: int, length: int, prob: Fraction | str = Fraction(1, 2)
) -> TupleIndependentDatabase:
    """A sparse "path" instance: ``Si(aj, bj)`` only on the diagonal.

    With disjoint ``(a, b)`` pairs, each pair's sub-lineage is independent
    of the others — the friendly extreme of the spectrum, useful to separate
    data-size from interaction effects in the benches.
    """
    tid = TupleIndependentDatabase()
    p = Fraction(prob)
    for j in range(1, length + 1):
        a, b = f"a{j}", f"b{j}"
        tid.add("R", (a,), p)
        tid.add("T", (b,), p)
        for i in range(1, k + 1):
            tid.add(f"S{i}", (a, b), p)
    for name in relation_names(k):
        arity = 1 if name in ("R", "T") else 2
        tid.instance.declare(name, arity)
    return tid

"""Relational and tuple-independent database substrate."""

from repro.db.columnar import HColumnarLayout, HColumns, columnar_layout, h_columns
from repro.db.io import dumps_tid, load_tid, loads_tid, save_tid
from repro.db.generator import complete_tid, path_tid, random_tid, relation_names
from repro.db.relation import Instance, Relation, TupleId
from repro.db.tid import TupleIndependentDatabase, valuation_probability

__all__ = [
    "HColumnarLayout",
    "HColumns",
    "columnar_layout",
    "h_columns",
    "Instance",
    "Relation",
    "TupleId",
    "TupleIndependentDatabase",
    "complete_tid",
    "dumps_tid",
    "load_tid",
    "loads_tid",
    "path_tid",
    "random_tid",
    "relation_names",
    "save_tid",
    "valuation_probability",
]

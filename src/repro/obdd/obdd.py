"""Reduced Ordered Binary Decision Diagrams (OBDDs).

OBDDs [10, 38] are one of the tractable knowledge-compilation formalisms of
Section 2; the paper's Proposition 3.7 compiles the lineage of every
*degenerate* H-query into an OBDD in polynomial time, and those OBDDs are
the leaves of the d-D templates of Proposition 4.4.

This implementation uses the classic node store with hash-consing:

* a node is ``(level, low_id, high_id)`` where ``level`` indexes into the
  variable order and ``low``/``high`` are the cofactor children for the
  variable absent/present;
* two terminal nodes 0 and 1;
* reduction invariants (no redundant node, no duplicate node) are enforced
  at construction, so equality of functions is equality of node ids;
* ``apply`` implements binary Boolean combinations with memoization, and
  negation swaps terminals.

Probability computation is a single bottom-up pass (an OBDD is in
particular a d-D after the standard decision-gate expansion).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping
from fractions import Fraction

TERMINAL_FALSE = 0
TERMINAL_TRUE = 1


class ObddManager:
    """A node store for reduced OBDDs over a fixed variable order.

    All OBDDs produced by one manager share its order and node table, so
    functions can be combined freely with :meth:`apply`.
    """

    def __init__(self, order: list[Hashable]):
        if len(set(order)) != len(order):
            raise ValueError("variable order contains duplicates")
        self._order = list(order)
        self._level_of = {label: i for i, label in enumerate(order)}
        # nodes[i] = (level, low, high) for i >= 2; ids 0/1 are terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def order(self) -> list[Hashable]:
        """The variable order (position = level)."""
        return list(self._order)

    def level_of(self, label: Hashable) -> int:
        """The level of a variable label in the order."""
        return self._level_of[label]

    def node(self, node_id: int) -> tuple[int, int, int]:
        """The ``(level, low, high)`` triple of an internal node."""
        if node_id < 2:
            raise ValueError("terminals have no structure")
        return self._nodes[node_id]

    def is_terminal(self, node_id: int) -> bool:
        """Whether the id denotes one of the two terminal nodes."""
        return node_id < 2

    def make(self, level: int, low: int, high: int) -> int:
        """Hash-consing constructor enforcing both reduction rules."""
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        self._nodes.append(key)
        node_id = len(self._nodes) - 1
        self._unique[key] = node_id
        return node_id

    def terminal(self, value: bool) -> int:
        """The terminal node for a constant."""
        return TERMINAL_TRUE if value else TERMINAL_FALSE

    def variable(self, label: Hashable) -> int:
        """The OBDD of the single variable ``label``."""
        level = self._level_of[label]
        return self.make(level, TERMINAL_FALSE, TERMINAL_TRUE)

    def size(self, root: int) -> int:
        """Number of nodes reachable from ``root`` (terminals included)."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            if node_id >= 2:
                _, low, high = self._nodes[node_id]
                stack.extend((low, high))
        return len(seen)

    def width_profile(self, root: int) -> dict[int, int]:
        """Number of reachable nodes per level (the OBDD width per layer)."""
        profile: dict[int, int] = {}
        seen: set[int] = set()
        stack = [root]
        while stack:
            node_id = stack.pop()
            if node_id in seen or node_id < 2:
                continue
            seen.add(node_id)
            level, low, high = self._nodes[node_id]
            profile[level] = profile.get(level, 0) + 1
            stack.extend((low, high))
        return profile

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    _OPS: dict[str, Callable[[bool, bool], bool]] = {
        "and": lambda a, b: a and b,
        "or": lambda a, b: a or b,
        "xor": lambda a, b: a != b,
    }
    _OP_CODES = {"and": 2, "or": 3, "xor": 4}

    def apply(self, op: str, left: int, right: int) -> int:
        """Shannon-expansion combination of two OBDDs (Bryant's apply)."""
        if op not in self._OPS:
            raise ValueError(f"unknown operation {op!r}")
        return self._apply(self._OP_CODES[op], self._OPS[op], left, right)

    def _apply(
        self,
        op_code: int,
        op: Callable[[bool, bool], bool],
        left: int,
        right: int,
    ) -> int:
        if left < 2 and right < 2:
            return self.terminal(op(bool(left), bool(right)))
        # Short circuits for the lattice operations.
        if op_code == 2:  # and
            if left == TERMINAL_FALSE or right == TERMINAL_FALSE:
                return TERMINAL_FALSE
            if left == TERMINAL_TRUE:
                return right
            if right == TERMINAL_TRUE:
                return left
            if left == right:
                return left
        elif op_code == 3:  # or
            if left == TERMINAL_TRUE or right == TERMINAL_TRUE:
                return TERMINAL_TRUE
            if left == TERMINAL_FALSE:
                return right
            if right == TERMINAL_FALSE:
                return left
            if left == right:
                return left
        key = (op_code, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        left_level = self._nodes[left][0] if left >= 2 else float("inf")
        right_level = self._nodes[right][0] if right >= 2 else float("inf")
        level = int(min(left_level, right_level))
        if left >= 2 and self._nodes[left][0] == level:
            left_low, left_high = self._nodes[left][1], self._nodes[left][2]
        else:
            left_low = left_high = left
        if right >= 2 and self._nodes[right][0] == level:
            right_low, right_high = self._nodes[right][1], self._nodes[right][2]
        else:
            right_low = right_high = right
        low = self._apply(op_code, op, left_low, right_low)
        high = self._apply(op_code, op, left_high, right_high)
        result = self.make(level, low, high)
        self._apply_cache[key] = result
        return result

    def negate(self, root: int) -> int:
        """The complement OBDD (swap terminals, memoized via apply-xor)."""
        return self.apply("xor", root, TERMINAL_TRUE)

    def conjoin_all(self, roots: list[int]) -> int:
        """Fold a list of OBDDs with ``and``."""
        result = TERMINAL_TRUE
        for root in roots:
            result = self.apply("and", result, root)
        return result

    def disjoin_all(self, roots: list[int]) -> int:
        """Fold a list of OBDDs with ``or``."""
        result = TERMINAL_FALSE
        for root in roots:
            result = self.apply("or", result, root)
        return result

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, root: int, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate under an assignment; missing variables default to False."""
        node_id = root
        while node_id >= 2:
            level, low, high = self._nodes[node_id]
            node_id = (
                high if assignment.get(self._order[level], False) else low
            )
        return bool(node_id)

    def probability(
        self, root: int, prob: Mapping[Hashable, Fraction]
    ) -> Fraction:
        """``Pr(root)`` under independent variables, by one memoized
        bottom-up pass.  Variables skipped along an edge are marginalized
        automatically (their branches sum out)."""
        cache: dict[int, Fraction] = {
            TERMINAL_FALSE: Fraction(0),
            TERMINAL_TRUE: Fraction(1),
        }

        def walk(node_id: int) -> Fraction:
            if node_id in cache:
                return cache[node_id]
            level, low, high = self._nodes[node_id]
            p = Fraction(prob.get(self._order[level], 0))
            value = (1 - p) * walk(low) + p * walk(high)
            cache[node_id] = value
            return value

        # Iterative version to avoid recursion limits on deep orders.
        stack = [root]
        while stack:
            node_id = stack[-1]
            if node_id in cache:
                stack.pop()
                continue
            level, low, high = self._nodes[node_id]
            pending = [c for c in (low, high) if c not in cache]
            if pending:
                stack.extend(pending)
                continue
            p = Fraction(prob.get(self._order[level], 0))
            cache[node_id] = (1 - p) * cache[low] + p * cache[high]
            stack.pop()
        return cache[root]

    def model_count(self, root: int) -> int:
        """Exact model count over all variables of the order."""
        half = Fraction(1, 2)
        prob = {label: half for label in self._order}
        value = self.probability(root, prob)
        return int(value * (2 ** len(self._order)))

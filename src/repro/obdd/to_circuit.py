"""Conversion of OBDDs into deterministic decomposable circuits.

An OBDD is, after the standard decision-gate expansion, a d-D (in fact a
DLDD in the terminology of [6]): each internal node ``(v, low, high)``
becomes the gate ``(¬v ∧ low) ∨ (v ∧ high)``, whose ∨ is deterministic
(the two branches disagree on ``v``) and whose ∧-gates are decomposable
(reduced OBDD children never test ``v`` again).  The paper's Proposition 4.4
plugs such circuits into ¬-∨-templates; this module provides the expansion.

One subtlety: an OBDD edge may *skip* variables of the order, which is fine
for Boolean semantics and for probability (skipped variables marginalize
out), so no smoothing is required — our circuit probability pass is exact on
the expanded circuit because the decision expansion preserves the function
and the d-D properties, and d-D probability is exact regardless of
smoothness.

Compilation fast path (PR 2): expansion is split into *compile once,
replay often*.  Per manager (and per ``compact`` flag) a **gate program**
is built incrementally — the hash-consed DAG of decision gates, with
``¬v`` and variable slots shared — and every arena instantiation replays
the needed slots through :meth:`repro.circuits.circuit.Circuit.replay_gates`,
the cheapest possible per-gate loop.  With ``compact=True`` (used by the
pair-query compiler) branches through a terminal drop their constant
conjunct/disjunct: ``x ∧ 1 → x``, ``x ∨ 0 → x``.  This shrinks circuits
while keeping probabilities bit-identical even in floating point (only
multiplications by 1 and additions of 0 are elided); the result is no
longer DLDD-shaped, so the default keeps the full decision form.
"""

from __future__ import annotations

import weakref

from repro.circuits.circuit import Circuit
from repro.obdd.obdd import ObddManager

_OP_CONST = Circuit.OP_CONST
_OP_VAR = Circuit.OP_VAR
_OP_NOT = Circuit.OP_NOT
_OP_AND = Circuit.OP_AND
_OP_OR = Circuit.OP_OR


def obdd_to_circuit(manager: ObddManager, root: int) -> Circuit:
    """Expand an OBDD into a d-D circuit with a fresh arena."""
    circuit = Circuit()
    circuit.set_output(obdd_into_circuit(manager, root, circuit))
    return circuit


class _GateProgram:
    """The precompiled decision-gate DAG of one manager's OBDD nodes.

    Slots 0/1 are the constants False/True; every further slot is one
    ``(opcode, a, b)`` gate over earlier slots.  The program ingests the
    manager's node store *linearly past a watermark* — node creation
    order is topological, since ``make`` receives existing children — and
    is hash-consed at build time (``¬v``, per-level variables and
    repeated branch gates exist once), so arena replays need no cons
    lookups and no graph walks.
    """

    __slots__ = (
        "compact",
        "ops",
        "cons",
        "var_slots",
        "not_slots",
        "node_slot",
        "watermark",
        "root_slots",
    )

    def __init__(self, manager: ObddManager, compact: bool):
        self.compact = compact
        self.ops: list[tuple[int, int, int]] = [
            (_OP_CONST, 0, 0),
            (_OP_CONST, 1, 0),
        ]
        self.cons: dict[tuple[int, int, int], int] = {}
        levels = len(manager.order)
        self.var_slots = [-1] * levels  # level -> slot
        self.not_slots = [-1] * levels  # level -> slot of ¬v
        self.node_slot: list[int] = [0, 1]  # OBDD node -> slot
        self.watermark = 2  # manager nodes ingested so far
        self.root_slots: dict[int, list[int]] = {}  # node -> replay list

    def _gate(self, op: int, a: int, b: int = 0) -> int:
        key = (op, a, b)
        slot = self.cons.get(key)
        if slot is None:
            self.ops.append(key)
            slot = len(self.ops) - 1
            self.cons[key] = slot
        return slot

    def _var(self, level: int) -> int:
        slot = self.var_slots[level]
        if slot == -1:
            self.ops.append((_OP_VAR, level, 0))
            slot = len(self.ops) - 1
            self.var_slots[level] = slot
        return slot

    def _not_var(self, level: int) -> int:
        slot = self.not_slots[level]
        if slot == -1:
            slot = self._gate(_OP_NOT, self._var(level))
            self.not_slots[level] = slot
        return slot

    def ensure_root(self, manager: ObddManager, root: int) -> int:
        """Ingest any manager nodes created since the last call (one
        linear pass, children always precede parents) and return the
        slot of ``root``."""
        nodes = manager._nodes
        top = len(nodes)
        if self.watermark < top:
            node_slot = self.node_slot
            compact = self.compact
            gate = self._gate
            var = self._var
            ops = self.ops
            for node in range(self.watermark, top):
                level, low, high = nodes[node]
                high_slot = node_slot[high]
                if compact:
                    if low == 0:
                        node_slot.append(
                            var(level)
                            if high == 1
                            else gate(_OP_AND, var(level), high_slot)
                        )
                        continue
                    not_slot = self._not_var(level)
                    low_branch = (
                        not_slot
                        if low == 1
                        else gate(_OP_AND, not_slot, node_slot[low])
                    )
                    if high == 0:
                        node_slot.append(low_branch)
                        continue
                    high_branch = (
                        var(level)
                        if high == 1
                        else gate(_OP_AND, var(level), high_slot)
                    )
                else:
                    low_branch = gate(
                        _OP_AND, self._not_var(level), node_slot[low]
                    )
                    high_branch = gate(_OP_AND, var(level), high_slot)
                # The ∨ of a decision gate is unique to its node (two
                # nodes never share both branch pairs — the OBDD itself
                # is hash-consed), so it skips the cons table.
                ops.append((_OP_OR, low_branch, high_branch))
                node_slot.append(len(ops) - 1)
            self.watermark = top
        return self.node_slot[root]

    def slots_for(self, manager: ObddManager, root: int) -> list[int]:
        """The dependency-ordered, duplicate-free slot list of ``root``'s
        subprogram, memoized per root (treat as read-only).  Ascending
        slot index is a dependency order because programs are built
        bottom-up."""
        slots = self.root_slots.get(root)
        if slots is not None:
            return slots
        root_slot = self.ensure_root(manager, root)
        ops = self.ops
        collected = [root_slot]
        seen = {root_slot}
        seen_add = seen.add
        stack = [root_slot]
        while stack:
            op, a, b = ops[stack.pop()]
            if op >= 3:  # AND / OR
                if a not in seen:
                    seen_add(a)
                    collected.append(a)
                    stack.append(a)
                if b not in seen:
                    seen_add(b)
                    collected.append(b)
                    stack.append(b)
            elif op == 2:  # NOT
                if a not in seen:
                    seen_add(a)
                    collected.append(a)
                    stack.append(a)
        collected.sort()
        self.root_slots[root] = collected
        return collected


#: Gate programs per manager (weak keys: a program dies with its manager),
#: one per ``compact`` flag.
_PROGRAMS: "weakref.WeakKeyDictionary[ObddManager, dict[bool, _GateProgram]]" = (
    weakref.WeakKeyDictionary()
)


def _program_for(manager: ObddManager, compact: bool) -> _GateProgram:
    per_manager = _PROGRAMS.setdefault(manager, {})
    program = per_manager.get(compact)
    if program is None:
        program = _GateProgram(manager, compact)
        per_manager[compact] = program
    return program


class ObddExpansion:
    """Per-(circuit, manager, compact) expansion state: the dense
    slot→gate table through which one arena materializes a manager's gate
    program.  Slot indices are program-specific, so one state must never
    mix ``compact`` flags."""

    __slots__ = ("manager", "compact", "slot_to_gate")

    def __init__(self, manager: ObddManager, compact: bool = False):
        self.manager = manager
        self.compact = compact
        self.slot_to_gate: list[int] = []


#: Expansion states per circuit; entries die with the circuit (the outer
#: key is weak) and managers are held strongly only while their circuit
#: is alive.
_EXPANSION_CACHES: "weakref.WeakKeyDictionary[Circuit, dict[tuple[int, bool], ObddExpansion]]" = (
    weakref.WeakKeyDictionary()
)


def expansion_cache(
    circuit: Circuit, manager: ObddManager, compact: bool = False
) -> ObddExpansion:
    """The memoized :class:`ObddExpansion` for expanding ``manager``'s
    OBDDs into ``circuit`` — pass it as ``cache=`` to
    :func:`obdd_into_circuit` so OBDD roots sharing structure (one
    manager serves a whole family on the compilation fast path)
    materialize each gate exactly once per arena."""
    per_circuit = _EXPANSION_CACHES.setdefault(circuit, {})
    key = (id(manager), compact)
    entry = per_circuit.get(key)
    if entry is None or entry.manager is not manager:
        entry = ObddExpansion(manager, compact)
        per_circuit[key] = entry
    return entry


def obdd_into_circuit(
    manager: ObddManager,
    root: int,
    circuit: Circuit,
    cache: ObddExpansion | None = None,
    compact: bool = False,
) -> int:
    """Expand an OBDD inside an existing circuit arena; returns the gate id
    computing the OBDD's function.  Shared OBDD nodes become shared gates.

    ``cache`` may carry the expansion state of a previous call for the
    same manager and arena (see :func:`expansion_cache`); already-
    materialized gates are then reused instead of rebuilt.
    ``compact=True`` elides constant conjuncts/disjuncts at terminal
    edges (smaller circuits, bit-identical probabilities, but no longer
    DLDD-shaped — see the module docstring)."""
    program = _program_for(manager, compact)
    slots = program.slots_for(manager, root)
    if cache is None:
        expansion = ObddExpansion(manager, compact)
    else:
        if cache.compact != compact:
            raise ValueError(
                "expansion cache was created for compact="
                f"{cache.compact}; slot tables cannot be shared across "
                "programs"
            )
        expansion = cache
    slot_to_gate = expansion.slot_to_gate
    missing = len(program.ops) - len(slot_to_gate)
    if missing > 0:
        slot_to_gate.extend([-1] * missing)
    circuit.replay_gates(program.ops, slots, slot_to_gate, manager.order)
    return slot_to_gate[program.node_slot[root]]

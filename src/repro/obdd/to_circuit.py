"""Conversion of OBDDs into deterministic decomposable circuits.

An OBDD is, after the standard decision-gate expansion, a d-D (in fact a
DLDD in the terminology of [6]): each internal node ``(v, low, high)``
becomes the gate ``(¬v ∧ low) ∨ (v ∧ high)``, whose ∨ is deterministic
(the two branches disagree on ``v``) and whose ∧-gates are decomposable
(reduced OBDD children never test ``v`` again).  The paper's Proposition 4.4
plugs such circuits into ¬-∨-templates; this module provides the expansion.

One subtlety: an OBDD edge may *skip* variables of the order, which is fine
for Boolean semantics and for probability (skipped variables marginalize
out), so no smoothing is required — our circuit probability pass is exact on
the expanded circuit because the decision expansion preserves the function
and the d-D properties, and d-D probability is exact regardless of
smoothness.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.obdd.obdd import TERMINAL_FALSE, TERMINAL_TRUE, ObddManager


def obdd_to_circuit(manager: ObddManager, root: int) -> Circuit:
    """Expand an OBDD into a d-D circuit with a fresh arena."""
    circuit = Circuit()
    circuit.set_output(obdd_into_circuit(manager, root, circuit))
    return circuit


def obdd_into_circuit(
    manager: ObddManager, root: int, circuit: Circuit
) -> int:
    """Expand an OBDD inside an existing circuit arena; returns the gate id
    computing the OBDD's function.  Shared OBDD nodes become shared gates."""
    gate_of: dict[int, int] = {
        TERMINAL_FALSE: circuit.add_const(False),
        TERMINAL_TRUE: circuit.add_const(True),
    }
    order = manager.order
    stack = [root]
    while stack:
        node_id = stack[-1]
        if node_id in gate_of:
            stack.pop()
            continue
        _, low, high = manager.node(node_id)
        pending = [c for c in (low, high) if c not in gate_of]
        if pending:
            stack.extend(pending)
            continue
        level, low, high = manager.node(node_id)
        var_gate = circuit.add_var(order[level])
        not_gate = circuit.add_not(var_gate)
        low_branch = circuit.add_and([not_gate, gate_of[low]])
        high_branch = circuit.add_and([var_gate, gate_of[high]])
        gate_of[node_id] = circuit.add_or([low_branch, high_branch])
        stack.pop()
    return gate_of[root]

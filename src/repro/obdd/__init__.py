"""Reduced OBDDs: node store, apply, layered automaton compilation, and
expansion into d-D circuits (the Proposition 3.7 substrate)."""

from repro.obdd.fbdd import Fbdd, fbdd_from_obdd
from repro.obdd.builder import (
    LayeredAutomaton,
    TabularAutomaton,
    build_obdd,
    build_obdd_family,
    product_automaton,
)
from repro.obdd.obdd import TERMINAL_FALSE, TERMINAL_TRUE, ObddManager
from repro.obdd.to_circuit import (
    ObddExpansion,
    expansion_cache,
    obdd_into_circuit,
    obdd_to_circuit,
)

__all__ = [
    "Fbdd",
    "LayeredAutomaton",
    "ObddExpansion",
    "ObddManager",
    "TabularAutomaton",
    "TERMINAL_FALSE",
    "TERMINAL_TRUE",
    "build_obdd",
    "build_obdd_family",
    "expansion_cache",
    "fbdd_from_obdd",
    "obdd_into_circuit",
    "obdd_to_circuit",
    "product_automaton",
]

"""Layered construction of OBDDs from streaming automata.

Appendix B.1 of the paper builds OBDDs for lineages of (conjunctions of
possibly-negated) ``h_{k,i}`` queries under an interleaved variable order:
scanning the database tuples in a fixed order, a constant amount of state
(in data complexity) suffices to decide the query.  We formalize that idea
as a :class:`LayeredAutomaton` — a deterministic automaton reading one
Boolean tuple-variable per step — and compile any such automaton into a
*reduced* OBDD whose width at each level is at most the number of reachable,
distinguishable states.

The compilation runs backward over the layers, mapping every state to an
OBDD node id; states with identical continuations collapse via the
manager's hash-consing, so the result is reduced by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from typing import TypeVar

from repro.obdd.obdd import ObddManager

State = TypeVar("State", bound=Hashable)


class LayeredAutomaton:
    """A deterministic automaton over a fixed sequence of Boolean variables.

    * ``order`` — the variable labels, read left to right;
    * ``initial`` — the starting state (any hashable);
    * ``transition(state, position, value)`` — the next state after reading
      ``value`` for the variable at ``position``;
    * ``accepting(state)`` — whether a final state accepts.

    The OBDD produced by :func:`build_obdd` computes exactly the language of
    the automaton, viewed as a Boolean function of the variables.
    """

    def __init__(
        self,
        order: list[Hashable],
        initial: State,
        transition: Callable[[State, int, bool], State],
        accepting: Callable[[State], bool],
    ):
        self.order = list(order)
        self.initial = initial
        self.transition = transition
        self.accepting = accepting

    def run(self, values: list[bool]) -> bool:
        """Execute the automaton on a full vector of variable values."""
        if len(values) != len(self.order):
            raise ValueError(
                f"expected {len(self.order)} values, got {len(values)}"
            )
        state = self.initial
        for position, value in enumerate(values):
            state = self.transition(state, position, bool(value))
        return bool(self.accepting(state))

    def reachable_states_per_layer(self) -> list[set]:
        """The sets of states reachable before reading each variable (layer
        ``i`` holds the states before variable ``i``; a final layer holds the
        states after the last variable).  Used for width statistics and by
        the OBDD compiler."""
        layers: list[set] = [{self.initial}]
        for position in range(len(self.order)):
            nxt: set = set()
            for state in layers[-1]:
                nxt.add(self.transition(state, position, False))
                nxt.add(self.transition(state, position, True))
            layers.append(nxt)
        return layers


def build_obdd(
    automaton: LayeredAutomaton, manager: ObddManager | None = None
) -> tuple[ObddManager, int]:
    """Compile a layered automaton into a reduced OBDD.

    Returns ``(manager, root)``.  If ``manager`` is given, its variable
    order must agree with the automaton's on the automaton's variables
    (extra variables in the manager's order are allowed and simply skipped);
    otherwise a fresh manager over exactly the automaton's order is created.

    Complexity: ``O(L * W)`` node constructions for ``L`` layers of width
    ``W`` (number of reachable states), which is the paper's
    polynomial-in-data bound since ``W`` depends only on the query.
    """
    if manager is None:
        manager = ObddManager(automaton.order)
    levels = [manager.level_of(label) for label in automaton.order]
    if sorted(levels) != levels:
        raise ValueError(
            "manager order is incompatible with the automaton order"
        )
    layers = automaton.reachable_states_per_layer()
    # Backward pass: node_for[state] at layer i+1 -> nodes at layer i.
    node_for: dict = {
        state: manager.terminal(automaton.accepting(state))
        for state in layers[-1]
    }
    for position in range(len(automaton.order) - 1, -1, -1):
        level = levels[position]
        previous: dict = {}
        for state in layers[position]:
            low_state = automaton.transition(state, position, False)
            high_state = automaton.transition(state, position, True)
            previous[state] = manager.make(
                level, node_for[low_state], node_for[high_state]
            )
        node_for = previous
    return manager, node_for[automaton.initial]


class TabularAutomaton:
    """A layered automaton with integer-coded states and precomputed
    transition tables — the compilation fast path's replacement for
    closure-driven :class:`LayeredAutomaton` instances.

    * states are ``0 .. num_states - 1``;
    * ``low_tables[p][s]`` / ``high_tables[p][s]`` give the successor of
      state ``s`` at position ``p`` on reading False / True (tables may be
      shared between positions — the side machines of
      :mod:`repro.pqe.degenerate` reuse one table per event kind);
    * ``outcome[s]`` is the classification of final state ``s`` (for the
      Appendix-B.1 machines: the satisfied-mask component), so one
      automaton describes the *family* of acceptance conditions
      ``outcome(final) == value`` at once.

    The forward reachability pass is shared by every member of the family
    and memoized on the automaton.
    """

    def __init__(
        self,
        order: list[Hashable],
        num_states: int,
        initial: int,
        low_tables: list[list[int]],
        high_tables: list[list[int]],
        outcome: list[Hashable],
    ):
        if len(low_tables) != len(order) or len(high_tables) != len(order):
            raise ValueError("transition tables must cover the order")
        if len(outcome) != num_states:
            raise ValueError("outcome must classify every state")
        self.order = list(order)
        self.num_states = num_states
        self.initial = initial
        self.low_tables = low_tables
        self.high_tables = high_tables
        self.outcome = outcome
        self._reachable: list[list[int]] | None = None
        # One successor bitmask table per distinct (low, high) table
        # pair, so the reachability pass is pure integer arithmetic.
        self._step_bits: dict[tuple[int, int], list[int]] = {}

    def transition(self, state: int, position: int, value: bool) -> int:
        """Tabular transition (LayeredAutomaton-compatible signature)."""
        table = self.high_tables[position] if value else self.low_tables[position]
        return table[state]

    def run(self, values: list[bool]) -> Hashable:
        """The outcome of the final state reached on a full value vector."""
        if len(values) != len(self.order):
            raise ValueError(
                f"expected {len(self.order)} values, got {len(values)}"
            )
        state = self.initial
        for position, value in enumerate(values):
            table = (
                self.high_tables[position]
                if value
                else self.low_tables[position]
            )
            state = table[state]
        return self.outcome[state]

    def accept(self, value: Hashable) -> LayeredAutomaton:
        """The family member accepting exactly ``outcome(final) == value``,
        as a :class:`LayeredAutomaton` (for :func:`build_obdd` and tests)."""
        outcome = self.outcome
        return LayeredAutomaton(
            order=self.order,
            initial=self.initial,
            transition=self.transition,
            accepting=lambda state: outcome[state] == value,
        )

    def reachable_per_layer(self) -> list[list[int]]:
        """Sorted reachable-state lists per layer (memoized): entry ``i``
        holds the states before reading variable ``i``, the final entry the
        states after the last variable.

        Layer sets are integer bitmasks internally, and one-step images
        are memoized per ``(transition table, mask)`` — the side machines'
        periodic orders revisit the same (event, reachable-set) pair in
        every block, so after the first block each layer is a dict hit.
        """
        if self._reachable is None:
            step_bits = self._step_bits
            image_memo: dict[tuple[tuple[int, int], int], int] = {}
            current = 1 << self.initial
            masks = [current]
            for position in range(len(self.order)):
                low = self.low_tables[position]
                high = self.high_tables[position]
                table_key = (id(low), id(high))
                memo_key = (table_key, current)
                nxt = image_memo.get(memo_key)
                if nxt is None:
                    bits = step_bits.get(table_key)
                    if bits is None:
                        bits = [
                            (1 << low[s]) | (1 << high[s])
                            for s in range(self.num_states)
                        ]
                        step_bits[table_key] = bits
                    nxt = 0
                    remaining = current
                    while remaining:
                        state = (remaining & -remaining).bit_length() - 1
                        remaining &= remaining - 1
                        nxt |= bits[state]
                    image_memo[memo_key] = nxt
                current = nxt
                masks.append(current)
            list_memo: dict[int, list[int]] = {}
            layers = []
            for mask in masks:
                states = list_memo.get(mask)
                if states is None:
                    states = []
                    remaining = mask
                    while remaining:
                        states.append((remaining & -remaining).bit_length() - 1)
                        remaining &= remaining - 1
                    list_memo[mask] = states
                layers.append(states)
            self._reachable = layers
        return self._reachable


def build_obdd_family(
    automaton: TabularAutomaton,
    values: Iterable[Hashable],
    manager: ObddManager | None = None,
) -> tuple[ObddManager, dict[Hashable, int]]:
    """Compile a whole family of reduced OBDDs — one per accepting outcome
    in ``values`` — in a single backward sweep over the layers.

    All family members share the automaton's state space (they differ only
    in which final outcomes accept), so the layer structure, the forward
    reachability and the transition lookups are paid once; the manager's
    hash-consing then shares identical sub-OBDDs *across* the members.
    Compared to one :func:`build_obdd` call per member this removes the
    per-member reachability passes, closure dispatch and duplicate node
    construction — the ``O(#members × layers × states)`` rebuild cost of
    the seed path collapses into one tabular sweep.

    Returns ``(manager, {value: root})``.
    """
    if manager is None:
        manager = ObddManager(automaton.order)
    if manager.order == automaton.order:
        levels: list[int] | range = range(len(automaton.order))
    else:
        level_of = manager.level_of
        levels = [level_of(label) for label in automaton.order]
        if sorted(levels) != levels:
            raise ValueError(
                "manager order is incompatible with the automaton order"
            )
    wanted = list(dict.fromkeys(values))
    layers = automaton.reachable_per_layer()
    outcome = automaton.outcome
    terminal_true = manager.terminal(True)
    terminal_false = manager.terminal(False)
    num_states = automaton.num_states
    # columns[i] maps each state of the current layer to the node id of
    # family member wanted[i]; dense lists keep the sweep on C-level
    # indexing.  The node constructor is the inlined fast path of
    # ObddManager.make — this loop is the compilation hot spot.
    nodes = manager._nodes
    unique = manager._unique
    unique_get = unique.get
    nodes_append = nodes.append
    columns: list[list[int]] = []
    for value in wanted:
        column = [terminal_false] * num_states
        for state in layers[-1]:
            if outcome[state] == value:
                column[state] = terminal_true
        columns.append(column)
    member_range = range(len(wanted))
    single = columns[0] if len(wanted) == 1 else None
    for position in range(len(automaton.order) - 1, -1, -1):
        level = levels[position]
        low_table = automaton.low_tables[position]
        high_table = automaton.high_tables[position]
        states = layers[position]
        if single is not None:  # one family member: flat loop
            previous_single = [terminal_false] * num_states
            for state in states:
                low = single[low_table[state]]
                high = single[high_table[state]]
                if low == high:
                    previous_single[state] = low
                    continue
                key = (level, low, high)
                found = unique_get(key)
                if found is None:
                    nodes_append(key)
                    found = len(nodes) - 1
                    unique[key] = found
                previous_single[state] = found
            single = previous_single
            continue
        previous = [[terminal_false] * num_states for _ in member_range]
        for state in states:
            low_state = low_table[state]
            high_state = high_table[state]
            for member in member_range:
                column = columns[member]
                low = column[low_state]
                high = column[high_state]
                if low == high:
                    previous[member][state] = low
                    continue
                key = (level, low, high)
                found = unique_get(key)
                if found is None:
                    nodes_append(key)
                    found = len(nodes) - 1
                    unique[key] = found
                previous[member][state] = found
        columns = previous
    if single is not None:
        columns = [single]
    initial = automaton.initial
    return manager, {
        value: columns[member][initial]
        for member, value in enumerate(wanted)
    }


def product_automaton(
    automata: list[LayeredAutomaton],
    accepting: Callable[[tuple], bool],
) -> LayeredAutomaton:
    """The synchronous product of automata over the *same* variable order,
    with a custom acceptance combiner over the tuple of final states.

    This is how conjunctions/negations of ``h_{k,i}`` queries are compiled
    under one shared order (Appendix B.1): each query contributes a
    constant-size automaton, and the product has constant size in data
    complexity because the number of queries is fixed.
    """
    if not automata:
        raise ValueError("product of zero automata is undefined")
    order = automata[0].order
    for automaton in automata[1:]:
        if automaton.order != order:
            raise ValueError("product automata must share a variable order")

    def transition(state: tuple, position: int, value: bool) -> tuple:
        return tuple(
            automaton.transition(component, position, value)
            for automaton, component in zip(automata, state)
        )

    return LayeredAutomaton(
        order=order,
        initial=tuple(a.initial for a in automata),
        transition=transition,
        accepting=accepting,
    )

"""Layered construction of OBDDs from streaming automata.

Appendix B.1 of the paper builds OBDDs for lineages of (conjunctions of
possibly-negated) ``h_{k,i}`` queries under an interleaved variable order:
scanning the database tuples in a fixed order, a constant amount of state
(in data complexity) suffices to decide the query.  We formalize that idea
as a :class:`LayeredAutomaton` — a deterministic automaton reading one
Boolean tuple-variable per step — and compile any such automaton into a
*reduced* OBDD whose width at each level is at most the number of reachable,
distinguishable states.

The compilation runs backward over the layers, mapping every state to an
OBDD node id; states with identical continuations collapse via the
manager's hash-consing, so the result is reduced by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import TypeVar

from repro.obdd.obdd import ObddManager

State = TypeVar("State", bound=Hashable)


class LayeredAutomaton:
    """A deterministic automaton over a fixed sequence of Boolean variables.

    * ``order`` — the variable labels, read left to right;
    * ``initial`` — the starting state (any hashable);
    * ``transition(state, position, value)`` — the next state after reading
      ``value`` for the variable at ``position``;
    * ``accepting(state)`` — whether a final state accepts.

    The OBDD produced by :func:`build_obdd` computes exactly the language of
    the automaton, viewed as a Boolean function of the variables.
    """

    def __init__(
        self,
        order: list[Hashable],
        initial: State,
        transition: Callable[[State, int, bool], State],
        accepting: Callable[[State], bool],
    ):
        self.order = list(order)
        self.initial = initial
        self.transition = transition
        self.accepting = accepting

    def run(self, values: list[bool]) -> bool:
        """Execute the automaton on a full vector of variable values."""
        if len(values) != len(self.order):
            raise ValueError(
                f"expected {len(self.order)} values, got {len(values)}"
            )
        state = self.initial
        for position, value in enumerate(values):
            state = self.transition(state, position, bool(value))
        return bool(self.accepting(state))

    def reachable_states_per_layer(self) -> list[set]:
        """The sets of states reachable before reading each variable (layer
        ``i`` holds the states before variable ``i``; a final layer holds the
        states after the last variable).  Used for width statistics and by
        the OBDD compiler."""
        layers: list[set] = [{self.initial}]
        for position in range(len(self.order)):
            nxt: set = set()
            for state in layers[-1]:
                nxt.add(self.transition(state, position, False))
                nxt.add(self.transition(state, position, True))
            layers.append(nxt)
        return layers


def build_obdd(
    automaton: LayeredAutomaton, manager: ObddManager | None = None
) -> tuple[ObddManager, int]:
    """Compile a layered automaton into a reduced OBDD.

    Returns ``(manager, root)``.  If ``manager`` is given, its variable
    order must agree with the automaton's on the automaton's variables
    (extra variables in the manager's order are allowed and simply skipped);
    otherwise a fresh manager over exactly the automaton's order is created.

    Complexity: ``O(L * W)`` node constructions for ``L`` layers of width
    ``W`` (number of reachable states), which is the paper's
    polynomial-in-data bound since ``W`` depends only on the query.
    """
    if manager is None:
        manager = ObddManager(automaton.order)
    levels = [manager.level_of(label) for label in automaton.order]
    if sorted(levels) != levels:
        raise ValueError(
            "manager order is incompatible with the automaton order"
        )
    layers = automaton.reachable_states_per_layer()
    # Backward pass: node_for[state] at layer i+1 -> nodes at layer i.
    node_for: dict = {
        state: manager.terminal(automaton.accepting(state))
        for state in layers[-1]
    }
    for position in range(len(automaton.order) - 1, -1, -1):
        level = levels[position]
        previous: dict = {}
        for state in layers[position]:
            low_state = automaton.transition(state, position, False)
            high_state = automaton.transition(state, position, True)
            previous[state] = manager.make(
                level, node_for[low_state], node_for[high_state]
            )
        node_for = previous
    return manager, node_for[automaton.initial]


def product_automaton(
    automata: list[LayeredAutomaton],
    accepting: Callable[[tuple], bool],
) -> LayeredAutomaton:
    """The synchronous product of automata over the *same* variable order,
    with a custom acceptance combiner over the tuple of final states.

    This is how conjunctions/negations of ``h_{k,i}`` queries are compiled
    under one shared order (Appendix B.1): each query contributes a
    constant-size automaton, and the product has constant size in data
    complexity because the number of queries is fixed.
    """
    if not automata:
        raise ValueError("product of zero automata is undefined")
    order = automata[0].order
    for automaton in automata[1:]:
        if automaton.order != order:
            raise ValueError("product automata must share a variable order")

    def transition(state: tuple, position: int, value: bool) -> tuple:
        return tuple(
            automaton.transition(component, position, value)
            for automaton, component in zip(automata, state)
        )

    return LayeredAutomaton(
        order=order,
        initial=tuple(a.initial for a in automata),
        transition=transition,
        accepting=accepting,
    )

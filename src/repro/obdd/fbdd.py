"""Free Binary Decision Diagrams (FBDDs).

FBDDs [1] relax OBDDs by dropping the global variable order: each
root-to-sink path may test variables in its own order, but never tests the
same variable twice (the *read-once* property).  They matter to the paper
through [6]: Theorem 6.3 transfers FBDD lineage representations between
H-queries, and the exponential FBDD lower bound for ``Q_{phi_big-FBDDs}``
then rules the whole nondegenerate family out of FBDD(PSIZE) — which is why
Section 6 contrasts the paper's Euler-characteristic-based d-D transfer
(Theorem 6.2) with it.

This module provides the data structure, the read-once validation, exact
probability/model counting (linear, like all decision diagrams), an
OBDD-importer (every OBDD is an FBDD), and the expansion into d-D circuits
— FBDDs are DLDD-shaped d-Ds, so the rest of the library applies.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from fractions import Fraction

from repro.circuits.circuit import Circuit
from repro.obdd.obdd import TERMINAL_FALSE, TERMINAL_TRUE, ObddManager


class Fbdd:
    """An FBDD: decision nodes ``(variable, low, high)`` over two terminals.

    Node ids 0/1 are the False/True terminals; internal nodes are appended
    through :meth:`add_node`.  Reduction is not enforced (FBDDs have no
    canonical form), but read-once-ness is checked by :meth:`validate`.
    """

    def __init__(self) -> None:
        self._nodes: list[tuple[Hashable, int, int]] = [
            (None, -1, -1),
            (None, -1, -1),
        ]
        self._root: int | None = None

    def add_node(self, variable: Hashable, low: int, high: int) -> int:
        """Append a decision node; children must already exist."""
        for child in (low, high):
            if not 0 <= child < len(self._nodes):
                raise ValueError(f"unknown child node {child}")
        self._nodes.append((variable, low, high))
        return len(self._nodes) - 1

    def set_root(self, node_id: int) -> None:
        """Designate the root node."""
        if not 0 <= node_id < len(self._nodes):
            raise ValueError(f"unknown node {node_id}")
        self._root = node_id

    @property
    def root(self) -> int:
        if self._root is None:
            raise ValueError("FBDD has no designated root")
        return self._root

    def node(self, node_id: int) -> tuple[Hashable, int, int]:
        """The ``(variable, low, high)`` of an internal node."""
        if node_id < 2:
            raise ValueError("terminals have no structure")
        return self._nodes[node_id]

    def is_terminal(self, node_id: int) -> bool:
        return node_id < 2

    def size(self) -> int:
        """Number of nodes reachable from the root."""
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            if node_id >= 2:
                _, low, high = self._nodes[node_id]
                stack.extend((low, high))
        return len(seen)

    def variables(self) -> frozenset[Hashable]:
        """All decision variables reachable from the root."""
        labels: set[Hashable] = set()
        stack = [self.root]
        seen: set[int] = set()
        while stack:
            node_id = stack.pop()
            if node_id in seen or node_id < 2:
                continue
            seen.add(node_id)
            variable, low, high = self._nodes[node_id]
            labels.add(variable)
            stack.extend((low, high))
        return frozenset(labels)

    # ------------------------------------------------------------------
    # Validation: the "free" (read-once) property
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check that no root-to-terminal path tests a variable twice.

        Computed without path enumeration: for every node, the set of
        variables tested on *some* path from the root to it must not
        contain the node's own variable.  Sets are propagated along a
        topological order of the reachable DAG.

        :raises ValueError: if some path reads a variable twice.
        """
        order = self._topological()
        tested_above: dict[int, set[Hashable]] = {self.root: set()}
        for node_id in order:
            if node_id < 2:
                continue
            variable, low, high = self._nodes[node_id]
            above = tested_above.setdefault(node_id, set())
            if variable in above:
                raise ValueError(
                    f"variable {variable!r} re-tested below itself at node "
                    f"{node_id}"
                )
            below = above | {variable}
            for child in (low, high):
                tested_above.setdefault(child, set()).update(below)

    def _topological(self) -> list[int]:
        order: list[int] = []
        seen: set[int] = set()

        def visit(node_id: int) -> None:
            if node_id in seen or node_id < 2:
                return
            seen.add(node_id)
            order.append(node_id)
            _, low, high = self._nodes[node_id]
            visit(low)
            visit(high)

        visit(self.root)
        # Parents before children: DFS preorder works because parents are
        # visited before their descendants along every path; but a node
        # with two parents may be ordered after one parent only.  Use
        # Kahn's algorithm instead for correctness.
        indegree: dict[int, int] = {self.root: 0}
        for node_id in seen:
            _, low, high = self._nodes[node_id]
            for child in (low, high):
                if child >= 2:
                    indegree[child] = indegree.get(child, 0) + 1
        indegree.setdefault(self.root, 0)
        queue = [n for n in seen if indegree.get(n, 0) == 0]
        ordered: list[int] = []
        while queue:
            node_id = queue.pop()
            ordered.append(node_id)
            _, low, high = self._nodes[node_id]
            for child in (low, high):
                if child >= 2:
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        queue.append(child)
        return ordered

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Follow the decisions; missing variables default to False."""
        node_id = self.root
        while node_id >= 2:
            variable, low, high = self._nodes[node_id]
            node_id = high if assignment.get(variable, False) else low
        return bool(node_id)

    def probability(self, prob: Mapping[Hashable, Fraction]) -> Fraction:
        """Exact probability under independent variables.

        One memoized top-down pass *per node* is wrong for FBDDs (different
        paths to a node may have consumed different variables), but the
        standard bottom-up pass is right: by read-once-ness, below a node
        the untested variables marginalize out exactly as for OBDDs.
        """
        cache: dict[int, Fraction] = {
            TERMINAL_FALSE: Fraction(0),
            TERMINAL_TRUE: Fraction(1),
        }
        stack = [self.root]
        while stack:
            node_id = stack[-1]
            if node_id in cache:
                stack.pop()
                continue
            variable, low, high = self._nodes[node_id]
            pending = [c for c in (low, high) if c not in cache]
            if pending:
                stack.extend(pending)
                continue
            p = Fraction(prob.get(variable, 0))
            cache[node_id] = (1 - p) * cache[low] + p * cache[high]
            stack.pop()
        return cache[self.root]

    def model_count(self) -> int:
        """Exact model count over :meth:`variables`."""
        half = Fraction(1, 2)
        prob = {label: half for label in self.variables()}
        return int(self.probability(prob) * (2 ** len(self.variables())))

    def to_circuit(self) -> Circuit:
        """Expand into a d-D circuit (decision gates), as for OBDDs."""
        circuit = Circuit()
        gate_of: dict[int, int] = {
            TERMINAL_FALSE: circuit.add_const(False),
            TERMINAL_TRUE: circuit.add_const(True),
        }
        stack = [self.root]
        while stack:
            node_id = stack[-1]
            if node_id in gate_of:
                stack.pop()
                continue
            variable, low, high = self._nodes[node_id]
            pending = [c for c in (low, high) if c not in gate_of]
            if pending:
                stack.extend(pending)
                continue
            var_gate = circuit.add_var(variable)
            low_branch = circuit.add_and(
                [circuit.add_not(var_gate), gate_of[low]]
            )
            high_branch = circuit.add_and([var_gate, gate_of[high]])
            gate_of[node_id] = circuit.add_or([low_branch, high_branch])
            stack.pop()
        circuit.set_output(gate_of[self.root])
        return circuit


def fbdd_from_obdd(manager: ObddManager, root: int) -> Fbdd:
    """Every OBDD is an FBDD: import the reachable nodes."""
    fbdd = Fbdd()
    mapping: dict[int, int] = {
        TERMINAL_FALSE: TERMINAL_FALSE,
        TERMINAL_TRUE: TERMINAL_TRUE,
    }
    order = manager.order
    stack = [root]
    while stack:
        node_id = stack[-1]
        if node_id in mapping:
            stack.pop()
            continue
        level, low, high = manager.node(node_id)
        pending = [c for c in (low, high) if c not in mapping]
        if pending:
            stack.extend(pending)
            continue
        mapping[node_id] = fbdd.add_node(
            order[level], mapping[low], mapping[high]
        )
        stack.pop()
    fbdd.set_root(mapping[root])
    fbdd.validate()
    return fbdd

"""Boolean circuits with ∧, ∨, ¬, variable and constant gates.

These are the carrier objects of the intensional approach (Section 2 of the
paper): lineages are compiled into circuits whose ∧-gates are *decomposable*
(inputs over disjoint variable sets) and whose ∨-gates are *deterministic*
(inputs capture disjoint Boolean functions) — the class d-D.  The circuit
class itself is agnostic: decomposability and determinism are checked by
:mod:`repro.circuits.validation`, and probability computation for validated
d-Ds lives in :mod:`repro.circuits.probability`.

A circuit is a DAG of :class:`Gate` objects addressed by integer ids inside
a :class:`Circuit` arena, with one designated output gate.  Variables are
arbitrary hashable labels (in this package: tuple identifiers of a database).
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence


class GateKind(enum.Enum):
    """The five kinds of gates a circuit may contain."""

    VAR = "var"
    NOT = "not"
    AND = "and"
    OR = "or"
    CONST = "const"


class Gate:
    """One gate of a circuit: a kind, input gate ids, and a payload.

    The payload is the variable label for ``VAR`` gates and the Boolean value
    for ``CONST`` gates; it is ``None`` otherwise.
    """

    __slots__ = ("kind", "inputs", "payload")

    def __init__(
        self, kind: GateKind, inputs: tuple[int, ...], payload: object = None
    ):
        self.kind = kind
        self.inputs = inputs
        self.payload = payload

    def __repr__(self) -> str:
        if self.kind is GateKind.VAR:
            return f"Gate(VAR {self.payload!r})"
        if self.kind is GateKind.CONST:
            return f"Gate(CONST {self.payload!r})"
        return f"Gate({self.kind.name} <- {self.inputs})"


#: Int opcodes for cons-table keys (hashing an enum member is a Python-
#: level call; these stay on the C fast path).
_CONS_NOT, _CONS_AND, _CONS_OR = 0, 1, 2


class Circuit:
    """A Boolean circuit: an arena of gates plus a designated output.

    Gates are created through the ``add_*`` methods, which return gate ids.
    Structural sharing is encouraged: the builder methods hash-cons variable
    and constant gates, and callers may reuse any gate id as input to many
    gates.  The circuit is append-only; ids are dense and topologically
    ordered (inputs always have smaller ids), which the evaluators exploit.

    With ``dedup=True`` the hash-consing extends to ¬/∧/∨ gates: an
    ``add_*`` call whose (kind, inputs) pair was already built returns the
    existing gate id instead of appending a duplicate.  Consing merges only
    *syntactically* identical gates, so every gate keeps its Boolean
    function and the d-D properties (decomposability, determinism) are
    preserved verbatim — probabilities are bit-identical with or without
    it.  The default stays append-only for callers that rely on one id per
    ``add_*`` call (e.g. structural tests counting construction steps).
    ``dedup_hits`` counts the calls served from the cons table: the arena
    would hold ``len(circuit) + dedup_hits`` gates without sharing.
    """

    def __init__(self, dedup: bool = False) -> None:
        self._gates: list[Gate] = []
        self._var_ids: dict[Hashable, int] = {}
        self._const_ids: dict[bool, int] = {}
        self._cons: dict[tuple, int] | None = {} if dedup else None
        self.dedup_hits = 0
        self._non_nnf_nots = 0  # ¬-gates over non-variable inputs
        self._output: int | None = None
        self._frozen = False

    @property
    def dedup(self) -> bool:
        """Whether ¬/∧/∨ gates are hash-consed (set at construction)."""
        return self._cons is not None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_var(self, label: Hashable) -> int:
        """Add (or fetch) the variable gate for ``label``."""
        if label in self._var_ids:
            return self._var_ids[label]
        gate_id = self._append(Gate(GateKind.VAR, (), label))
        self._var_ids[label] = gate_id
        return gate_id

    def add_const(self, value: bool) -> int:
        """Add (or fetch) a constant gate."""
        value = bool(value)
        if value in self._const_ids:
            return self._const_ids[value]
        gate_id = self._append(Gate(GateKind.CONST, (), value))
        self._const_ids[value] = gate_id
        return gate_id

    def add_not(self, input_id: int) -> int:
        """Add a ¬-gate over an existing gate."""
        self._check_ids([input_id])
        if self._cons is None:
            return self._append(Gate(GateKind.NOT, (input_id,)))
        return self._consed(_CONS_NOT, GateKind.NOT, (input_id,))

    def add_and(self, input_ids: Iterable[int]) -> int:
        """Add an ∧-gate; an empty input list denotes the constant True."""
        ids = tuple(input_ids)
        self._check_ids(ids)
        if not ids:
            return self.add_const(True)
        if len(ids) == 1:
            return ids[0]
        if self._cons is None:
            return self._append(Gate(GateKind.AND, ids))
        return self._consed(_CONS_AND, GateKind.AND, ids)

    def add_or(self, input_ids: Iterable[int]) -> int:
        """Add an ∨-gate; an empty input list denotes the constant False."""
        ids = tuple(input_ids)
        self._check_ids(ids)
        if not ids:
            return self.add_const(False)
        if len(ids) == 1:
            return ids[0]
        if self._cons is None:
            return self._append(Gate(GateKind.OR, ids))
        return self._consed(_CONS_OR, GateKind.OR, ids)

    def _consed(self, code: int, kind: GateKind, ids: tuple[int, ...]) -> int:
        # Cons keys carry an int opcode instead of the GateKind member:
        # key hashing is the hot operation and enum hashing is a Python-
        # level call.
        key = (code, ids)
        found = self._cons.get(key)
        if found is not None:
            self.dedup_hits += 1
            return found
        gate_id = self._append(Gate(kind, ids))
        self._cons[key] = gate_id
        return gate_id

    #: Opcodes of precompiled gate programs (see
    #: :meth:`replay_gates` and :mod:`repro.obdd.to_circuit`).
    OP_CONST, OP_VAR, OP_NOT, OP_AND, OP_OR = range(5)

    def replay_gates(
        self,
        ops: list[tuple[int, int, int]],
        slots: list[int],
        slot_to_gate: list[int],
        labels: Sequence[Hashable],
    ) -> None:
        """Instantiate slots of a precompiled gate program into the arena.

        A program is a list of ``(opcode, a, b)`` triples addressed by
        *slot* index: ``OP_CONST`` builds the constant ``a``; ``OP_VAR``
        the variable ``labels[a]``; ``OP_NOT``/``OP_AND``/``OP_OR`` gates
        over the slots ``a`` (and ``b``).  ``slots`` lists the slots to
        materialize, dependencies first; ``slot_to_gate`` is the dense
        slot→gate table of this arena (-1 for absent), which doubles as
        the skip set — across many roots each gate is built once per
        arena — and receives every new gate id.

        The program itself is already hash-consed at build time
        (:mod:`repro.obdd.to_circuit` builds one per OBDD manager), so
        the replay performs no cons lookups: per gate it is one tuple
        load, one ``Gate`` construction and two list writes — the
        cheapest possible arena instantiation, which is what makes cold
        compilation of many queries over one database scale.  Replayed
        ∧/∨ gates are therefore *not* registered in a dedup arena's cons
        table (¬-gates are, because distinct programs share them through
        the arena's global variable gates; identical ∧/∨ gates later
        requested through ``add_*`` are appended anew — harmless for
        semantics, merely a missed sharing opportunity).
        """
        if self._frozen:
            raise ValueError("circuit is frozen; derive a copy instead")
        gates = self._gates
        append = gates.append
        var_ids = self._var_ids
        cons = self._cons
        hits = 0
        VAR_KIND, NOT_KIND = GateKind.VAR, GateKind.NOT
        AND_KIND, OR_KIND = GateKind.AND, GateKind.OR
        for slot in slots:
            if slot_to_gate[slot] != -1:
                continue
            op, a, b = ops[slot]
            if op == 3:  # OP_AND
                append(Gate(AND_KIND, (slot_to_gate[a], slot_to_gate[b])))
                slot_to_gate[slot] = len(gates) - 1
            elif op == 4:  # OP_OR
                append(Gate(OR_KIND, (slot_to_gate[a], slot_to_gate[b])))
                slot_to_gate[slot] = len(gates) - 1
            elif op == 2:  # OP_NOT (always over a variable slot)
                ids = (slot_to_gate[a],)
                if cons is None:
                    append(Gate(NOT_KIND, ids))
                    slot_to_gate[slot] = len(gates) - 1
                else:
                    # ¬v is the one gate distinct programs (one per side
                    # manager) can share — variables are global to the
                    # arena — so it alone keeps the cons table round trip.
                    key = (_CONS_NOT, ids)
                    built = cons.get(key)
                    if built is None:
                        append(Gate(NOT_KIND, ids))
                        built = len(gates) - 1
                        cons[key] = built
                    else:
                        hits += 1
                    slot_to_gate[slot] = built
            elif op == 1:  # OP_VAR
                label = labels[a]
                var_gate = var_ids.get(label)
                if var_gate is None:
                    append(Gate(VAR_KIND, (), label))
                    var_gate = len(gates) - 1
                    var_ids[label] = var_gate
                slot_to_gate[slot] = var_gate
            else:  # OP_CONST
                slot_to_gate[slot] = self.add_const(bool(a))
        self.dedup_hits += hits

    def set_output(self, gate_id: int) -> None:
        """Designate the output gate."""
        if self._frozen:
            raise ValueError("circuit is frozen; derive a copy instead")
        self._check_ids([gate_id])
        self._output = gate_id

    def freeze(self) -> None:
        """Make the circuit immutable: any further gate addition or output
        re-designation raises.  Used by caches that share one circuit among
        many holders (grow a copy via ``operations.copy_into`` instead)."""
        self._frozen = True

    def _append(self, gate: Gate) -> int:
        if self._frozen:
            raise ValueError("circuit is frozen; derive a copy instead")
        if (
            gate.kind is GateKind.NOT
            and self._gates[gate.inputs[0]].kind is not GateKind.VAR
        ):
            self._non_nnf_nots += 1
        self._gates.append(gate)
        return len(self._gates) - 1

    def _check_ids(self, ids: Iterable[int]) -> None:
        for gate_id in ids:
            if not 0 <= gate_id < len(self._gates):
                raise ValueError(f"unknown gate id {gate_id}")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def output(self) -> int:
        """The id of the output gate.

        :raises ValueError: if no output has been designated.
        """
        if self._output is None:
            raise ValueError("circuit has no designated output gate")
        return self._output

    def gate(self, gate_id: int) -> Gate:
        """The gate with the given id."""
        return self._gates[gate_id]

    def __len__(self) -> int:
        """Number of gates (the paper's notion of circuit size up to wires)."""
        return len(self._gates)

    def num_wires(self) -> int:
        """Total number of wires (gate inputs)."""
        return sum(len(g.inputs) for g in self._gates)

    def gates(self) -> Iterator[tuple[int, Gate]]:
        """Iterate over ``(id, gate)`` pairs in topological order."""
        return iter(enumerate(self._gates))

    def variables(self) -> frozenset[Hashable]:
        """All variable labels appearing in the circuit."""
        return frozenset(self._var_ids)

    def var_id(self, label: Hashable) -> int:
        """The gate id of a variable label."""
        return self._var_ids[label]

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate the output under a total assignment of the variables.

        Missing variables default to False (absent tuples), matching the
        valuation-as-subset convention of the paper.
        """
        values = self.evaluate_all(assignment)
        return values[self.output]

    def evaluate_all(self, assignment: Mapping[Hashable, bool]) -> list[bool]:
        """Evaluate every gate bottom-up; returns a list indexed by gate id."""
        values: list[bool] = [False] * len(self._gates)
        for gate_id, gate in enumerate(self._gates):
            if gate.kind is GateKind.VAR:
                values[gate_id] = bool(assignment.get(gate.payload, False))
            elif gate.kind is GateKind.CONST:
                values[gate_id] = bool(gate.payload)
            elif gate.kind is GateKind.NOT:
                values[gate_id] = not values[gate.inputs[0]]
            elif gate.kind is GateKind.AND:
                values[gate_id] = all(values[i] for i in gate.inputs)
            else:
                values[gate_id] = any(values[i] for i in gate.inputs)
        return values

    def gate_variable_sets(self) -> list[frozenset[Hashable]]:
        """``Vars(g)`` for every gate: the variable labels with a directed
        path to the gate (used by the decomposability check)."""
        sets: list[frozenset[Hashable]] = [frozenset()] * len(self._gates)
        for gate_id, gate in enumerate(self._gates):
            if gate.kind is GateKind.VAR:
                sets[gate_id] = frozenset([gate.payload])
            elif gate.kind is GateKind.CONST:
                sets[gate_id] = frozenset()
            else:
                combined: set[Hashable] = set()
                for input_id in gate.inputs:
                    combined |= sets[input_id]
                sets[gate_id] = frozenset(combined)
        return sets

    def models_by_enumeration(self) -> Iterator[frozenset[Hashable]]:
        """All satisfying assignments, as the sets of variables set to True.

        Exponential in the number of variables — only for validation on
        small instances.
        """
        labels = sorted(self._var_ids, key=repr)
        for bits in itertools.product([False, True], repeat=len(labels)):
            assignment = dict(zip(labels, bits))
            if self.evaluate(assignment):
                yield frozenset(l for l, b in assignment.items() if b)

    def reachable_from_output(self) -> set[int]:
        """Gate ids reachable from the output (the live part of the arena)."""
        seen: set[int] = set()
        stack = [self.output]
        while stack:
            gate_id = stack.pop()
            if gate_id in seen:
                continue
            seen.add(gate_id)
            stack.extend(self._gates[gate_id].inputs)
        return seen

    def is_nnf(self) -> bool:
        """Whether the circuit is in negation normal form: every ¬-gate's
        input is a variable gate (Section 2).  O(1): the count of
        offending ¬-gates is maintained at construction (bulk decision-
        gate expansion only ever negates variables)."""
        return self._non_nnf_nots == 0

    def stats(self) -> dict[str, int]:
        """Gate-count statistics by kind, plus wires (for the benches)."""
        counts = {kind.name: 0 for kind in GateKind}
        for gate in self._gates:
            counts[gate.kind.name] += 1
        counts["TOTAL"] = len(self._gates)
        counts["WIRES"] = self.num_wires()
        return counts

    def __repr__(self) -> str:
        return f"Circuit({len(self._gates)} gates, {len(self._var_ids)} vars)"

"""Probability computation and reuse tasks on d-D circuits.

The defining feature of d-Ds (Section 2): probability is computed in one
bottom-up linear pass, evaluating ∧ with ×, ∨ with +, and ¬ with ``1 - x``.
This is only *correct* when the circuit is decomposable and deterministic;
callers are expected to validate with :mod:`repro.circuits.validation` (the
tests always do).

Beyond plain probability, this module implements the reuse tasks the paper's
introduction cites as motivation for the intensional approach: re-evaluation
after probability updates comes for free; most-probable-explanation (MPE)
works by swapping + for max on deterministic ∨-gates; and exact sampling of
satisfying worlds walks the circuit top-down.  All algorithms are generic in
the numeric type — ``fractions.Fraction`` gives exact results, ``float``
gives fast ones.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Mapping
from fractions import Fraction

from repro.circuits.circuit import Circuit, GateKind
from repro.circuits.evaluator import tape_for

Number = Fraction | float


def gate_probabilities(
    circuit: Circuit, prob: Mapping[Hashable, Number]
) -> list[Number]:
    """One bottom-up pass computing ``Pr(gate)`` for every gate.

    ``prob`` maps each variable label to its marginal probability; missing
    labels default to probability 0 (a deterministic absent tuple).

    Runs on the circuit's memoized evaluation tape
    (:mod:`repro.circuits.evaluator`) with the same numeric semantics as
    the historical per-gate loop.
    """
    return tape_for(circuit).gate_values(prob)


def probability(circuit: Circuit, prob: Mapping[Hashable, Number]) -> Number:
    """``Pr(circuit)`` under independent variables — linear time on a d-D."""
    return tape_for(circuit).evaluate(prob)


def model_count(circuit: Circuit) -> int:
    """Exact model count of a d-D over its own variables.

    Uses the standard reduction to probability: with every variable at
    probability 1/2, ``#models = Pr * 2^{#vars}``.
    """
    half = Fraction(1, 2)
    prob = {label: half for label in circuit.variables()}
    value = probability(circuit, prob)
    count = value * (2 ** len(circuit.variables()))
    if count.denominator != 1:
        raise ValueError(
            "non-integer model count: the circuit is not a valid d-D"
        )
    return int(count)


def most_probable_model(
    circuit: Circuit, prob: Mapping[Hashable, Fraction]
) -> tuple[Fraction, dict[Hashable, bool]]:
    """MPE on a d-D: the most probable satisfying world and its probability.

    Bottom-up max-product: ∨ takes the max over its (disjoint) inputs, ∧
    multiplies (decomposability makes branch optima independent), ¬ over a
    variable selects its absence.  Because our circuits are not smoothed,
    each gate value is normalized to range over *all* circuit variables: a
    branch of an ∨-gate that does not mention a variable contributes that
    variable's best free factor ``max(p, 1-p)``.  A top-down trace then
    reassembles the argmax world.

    :raises ValueError: if the circuit is unsatisfiable.
    """
    labels = sorted(circuit.variables(), key=repr)
    free_factor = {
        label: max(Fraction(prob.get(label, 0)), 1 - Fraction(prob.get(label, 0)))
        for label in labels
    }
    var_sets = circuit.gate_variable_sets()

    def missing_factor(gate_id: int, input_id: int) -> Fraction:
        """Best free contribution of variables seen by the gate but not by
        one of its inputs."""
        product = Fraction(1)
        for label in var_sets[gate_id] - var_sets[input_id]:
            product *= free_factor[label]
        return product

    # best[g] = max over models of gate g, scored over Vars(g) only.
    best: list[Fraction | None] = [None] * len(circuit)
    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR:
            best[gate_id] = Fraction(prob.get(gate.payload, 0))
        elif gate.kind is GateKind.CONST:
            best[gate_id] = Fraction(1) if gate.payload else None
        elif gate.kind is GateKind.NOT:
            inner = circuit.gate(gate.inputs[0])
            if inner.kind is not GateKind.VAR:
                raise ValueError(
                    "MPE requires NNF circuits (¬ only over variables); "
                    "normalize with repro.circuits.operations first"
                )
            best[gate_id] = Fraction(1) - Fraction(prob.get(inner.payload, 0))
        elif gate.kind is GateKind.AND:
            product = Fraction(1)
            feasible = True
            for input_id in gate.inputs:
                if best[input_id] is None:
                    feasible = False
                    break
                product *= best[input_id]
            best[gate_id] = product if feasible else None
        else:  # OR — normalize branches over the gate's variable set.
            candidates = [
                best[i] * missing_factor(gate_id, i)
                for i in gate.inputs
                if best[i] is not None
            ]
            best[gate_id] = max(candidates) if candidates else None
    if best[circuit.output] is None:
        raise ValueError("circuit is unsatisfiable; no most probable model")

    # Top-down argmax reconstruction.
    world: dict[Hashable, bool] = {}
    stack = [circuit.output]
    while stack:
        gate_id = stack.pop()
        gate = circuit.gate(gate_id)
        if gate.kind is GateKind.VAR:
            world[gate.payload] = True
        elif gate.kind is GateKind.NOT:
            inner = circuit.gate(gate.inputs[0])
            world[inner.payload] = False
        elif gate.kind is GateKind.AND:
            stack.extend(gate.inputs)
        elif gate.kind is GateKind.OR:
            winner = max(
                (i for i in gate.inputs if best[i] is not None),
                key=lambda i: best[i] * missing_factor(gate_id, i),
            )
            stack.append(winner)
    # Variables never constrained along the chosen trace take their
    # individually best value.
    for label in labels:
        if label not in world:
            world[label] = Fraction(prob.get(label, 0)) >= Fraction(1, 2)
    mpe_probability = Fraction(1)
    for label in labels:
        p = Fraction(prob.get(label, 0))
        mpe_probability *= p if world[label] else (1 - p)
    return mpe_probability, world


def sample_model(
    circuit: Circuit,
    prob: Mapping[Hashable, Fraction],
    rng: random.Random,
) -> dict[Hashable, bool]:
    """Draw a world from the distribution *conditioned on the circuit being
    satisfied* (one of the reuse tasks of the introduction, cf. [34]).

    Top-down: at a deterministic ∨, pick an input with probability
    proportional to its gate probability; at a decomposable ∧, recurse into
    every input; variables not constrained by the chosen trace are sampled
    from their priors.

    :raises ValueError: if the circuit has probability zero.
    """
    values = gate_probabilities(circuit, prob)
    if values[circuit.output] == 0:
        raise ValueError("cannot sample: the circuit has probability zero")
    world: dict[Hashable, bool] = {}
    stack = [circuit.output]
    while stack:
        gate_id = stack.pop()
        gate = circuit.gate(gate_id)
        if gate.kind is GateKind.VAR:
            world[gate.payload] = True
        elif gate.kind is GateKind.NOT:
            inner = circuit.gate(gate.inputs[0])
            if inner.kind is not GateKind.VAR:
                raise ValueError("sampling requires NNF circuits")
            world[inner.payload] = False
        elif gate.kind is GateKind.AND:
            stack.extend(gate.inputs)
        elif gate.kind is GateKind.OR:
            # Draw exactly: scale the unit draw into the gate's total mass
            # and compare as Fractions, so branch selection never suffers
            # float rounding (Fraction(float) is exact).
            draw = Fraction(rng.random()) * Fraction(values[gate_id])
            cumulative = Fraction(0)
            chosen = gate.inputs[-1]
            for input_id in gate.inputs:
                cumulative += Fraction(values[input_id])
                if draw < cumulative:
                    chosen = input_id
                    break
            stack.append(chosen)
    for label in circuit.variables():
        if label not in world:
            world[label] = rng.random() < float(prob.get(label, 0))
    return world


def conditioned_probability(
    circuit: Circuit,
    prob: Mapping[Hashable, Fraction],
    evidence: Mapping[Hashable, bool],
) -> Fraction:
    """``Pr(circuit | evidence)`` for evidence fixing some variables.

    On a d-D this is just a re-evaluation with the evidence variables pinned
    to probability 0/1, divided by nothing (tuple independence): conditioning
    a TID on tuple presence/absence yields another TID.
    """
    pinned = dict(prob)
    for label, value in evidence.items():
        pinned[label] = Fraction(1) if value else Fraction(0)
    return probability(circuit, pinned)

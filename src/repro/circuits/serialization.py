"""Serialization of circuits to and from plain JSON-compatible dicts.

Compiled lineages are the artefact a downstream system wants to *keep*
(the whole point of knowledge compilation is amortizing the compilation
across many probability computations), so they must survive a round trip
through storage.  The format is deliberately dumb: a gate list in
topological order, with variables rendered through a caller-supplied codec
(the default handles :class:`repro.db.relation.TupleId` and strings).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Hashable

from repro.circuits.circuit import Circuit, GateKind
from repro.db.relation import TupleId

FORMAT_VERSION = 1


def _default_encode(label: Hashable) -> object:
    if isinstance(label, TupleId):
        return {"relation": label.relation, "values": list(label.values)}
    if isinstance(label, (str, int)):
        return label
    raise TypeError(
        f"cannot encode variable label {label!r}; pass a custom encoder"
    )


def _default_decode(payload: object) -> Hashable:
    if isinstance(payload, dict) and "relation" in payload:
        return TupleId(payload["relation"], tuple(payload["values"]))
    if isinstance(payload, (str, int)):
        return payload
    raise TypeError(f"cannot decode variable payload {payload!r}")


def circuit_to_dict(
    circuit: Circuit,
    encode_label: Callable[[Hashable], object] = _default_encode,
) -> dict:
    """Serialize a circuit (live part only) into a JSON-compatible dict."""
    live = circuit.reachable_from_output()
    order = sorted(live)
    index_of = {gate_id: i for i, gate_id in enumerate(order)}
    gates = []
    for gate_id in order:
        gate = circuit.gate(gate_id)
        if gate.kind is GateKind.VAR:
            gates.append({"kind": "var", "label": encode_label(gate.payload)})
        elif gate.kind is GateKind.CONST:
            gates.append({"kind": "const", "value": bool(gate.payload)})
        else:
            gates.append(
                {
                    "kind": gate.kind.value,
                    "inputs": [index_of[i] for i in gate.inputs],
                }
            )
    return {
        "format": FORMAT_VERSION,
        "gates": gates,
        "output": index_of[circuit.output],
    }


def circuit_from_dict(
    payload: dict,
    decode_label: Callable[[object], Hashable] = _default_decode,
) -> Circuit:
    """Rebuild a circuit from :func:`circuit_to_dict` output.

    :raises ValueError: on version or structure mismatches.
    """
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported circuit format {payload.get('format')!r}"
        )
    circuit = Circuit()
    ids: list[int] = []
    for gate in payload["gates"]:
        kind = gate["kind"]
        if kind == "var":
            ids.append(circuit.add_var(decode_label(gate["label"])))
        elif kind == "const":
            ids.append(circuit.add_const(bool(gate["value"])))
        elif kind == "not":
            ids.append(circuit.add_not(ids[gate["inputs"][0]]))
        elif kind == "and":
            ids.append(circuit.add_and([ids[i] for i in gate["inputs"]]))
        elif kind == "or":
            ids.append(circuit.add_or([ids[i] for i in gate["inputs"]]))
        else:
            raise ValueError(f"unknown gate kind {kind!r}")
    circuit.set_output(ids[payload["output"]])
    return circuit


def dumps(circuit: Circuit) -> str:
    """Serialize to a JSON string."""
    return json.dumps(circuit_to_dict(circuit), separators=(",", ":"))


def loads(text: str) -> Circuit:
    """Deserialize from a JSON string."""
    return circuit_from_dict(json.loads(text))

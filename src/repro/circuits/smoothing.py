"""Smoothing and model enumeration for d-D circuits.

Two standard knowledge-compilation services complementing
:mod:`repro.circuits.probability`:

* **Smoothing** — rewriting a d-D so that, at every ∨-gate, all inputs
  mention exactly the same variable set (padding missing variables with
  tautological ``(v ∨ ¬v)`` gates).  Plain probability does not need it
  (marginalization is implicit), but weighted *model* counts per gate and
  the enumeration below become uniform with it, and many published d-DNNF
  algorithms assume it.

* **Model enumeration** — streaming the satisfying assignments of a
  smoothed d-D: deterministic ∨-gates partition the model set, and
  decomposable ∧-gates make it a product; each model is emitted once (the
  intro's "enumerate satisfying states" reuse task, cf. [2]).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from repro.circuits.circuit import Circuit, GateKind


def is_smooth(circuit: Circuit) -> bool:
    """Whether every ∨-gate's inputs share one variable set."""
    var_sets = circuit.gate_variable_sets()
    for _, gate in circuit.gates():
        if gate.kind is not GateKind.OR:
            continue
        sets = {var_sets[i] for i in gate.inputs}
        if len(sets) > 1:
            return False
    return True


def smooth(circuit: Circuit) -> Circuit:
    """A smoothed copy of a d-D: each ∨-input is conjoined with
    ``(v ∨ ¬v)`` gates for the variables its siblings see but it does not.

    Preserves the function (the pads are tautologies), decomposability
    (pad variables are disjoint from the branch and from each other) and
    determinism (branch functions are unchanged as functions).  The copy is
    rebuilt in one topological pass, padding each ∨-gate as it is emitted,
    so gate ids stay topologically ordered for the bottom-up evaluators.
    """
    result = Circuit()
    new_id_of: dict[int, int] = {}
    vars_of: dict[int, frozenset[Hashable]] = {}

    def record(new_id: int, labels: frozenset[Hashable]) -> int:
        vars_of[new_id] = labels
        return new_id

    def padded(child: int, missing: frozenset[Hashable]) -> int:
        if not missing:
            return child
        pads = []
        for label in sorted(missing, key=repr):
            var = record(result.add_var(label), frozenset([label]))
            negated = record(result.add_not(var), frozenset([label]))
            pads.append(
                record(result.add_or([var, negated]), frozenset([label]))
            )
        conjunction = result.add_and([child, *pads])
        return record(conjunction, vars_of[child] | missing)

    for gate_id, gate in circuit.gates():
        if gate.kind is GateKind.VAR:
            new_id = record(
                result.add_var(gate.payload), frozenset([gate.payload])
            )
        elif gate.kind is GateKind.CONST:
            new_id = record(result.add_const(bool(gate.payload)), frozenset())
        elif gate.kind is GateKind.NOT:
            child = new_id_of[gate.inputs[0]]
            new_id = record(result.add_not(child), vars_of[child])
        elif gate.kind is GateKind.AND:
            children = [new_id_of[i] for i in gate.inputs]
            union: frozenset[Hashable] = frozenset()
            for child in children:
                union |= vars_of[child]
            new_id = record(result.add_and(children), union)
        else:  # OR: pad every branch up to the union.
            children = [new_id_of[i] for i in gate.inputs]
            union = frozenset()
            for child in children:
                union |= vars_of[child]
            balanced = [
                padded(child, union - vars_of[child]) for child in children
            ]
            new_id = record(result.add_or(balanced), union)
        new_id_of[gate_id] = new_id
    result.set_output(new_id_of[circuit.output])
    return result


def enumerate_models(circuit: Circuit) -> Iterator[frozenset[Hashable]]:
    """Stream the models of a (smoothed) d-D over ``circuit.variables()``.

    Each model is the set of variables assigned True; models are emitted
    exactly once thanks to determinism (disjoint ∨-branches) and
    decomposability (∧-branches combine independently).  The input must be
    smooth — use :func:`smooth` first — so every gate's models range over a
    known variable set; variables invisible to the whole circuit are
    expanded at the top level.

    :raises ValueError: if the circuit is not smooth.
    """
    if not is_smooth(circuit):
        raise ValueError("enumerate_models requires a smoothed circuit")
    var_sets = circuit.gate_variable_sets()
    all_labels = circuit.variables()

    def walk(gate_id: int) -> Iterator[frozenset[Hashable]]:
        gate = circuit.gate(gate_id)
        if gate.kind is GateKind.VAR:
            yield frozenset([gate.payload])
        elif gate.kind is GateKind.CONST:
            if gate.payload:
                yield frozenset()
        elif gate.kind is GateKind.NOT:
            inner = circuit.gate(gate.inputs[0])
            if inner.kind is GateKind.VAR:
                yield frozenset()
            else:
                # General negation: enumerate by complementation over the
                # gate's variable set (exponential only in that set).
                labels = sorted(var_sets[gate_id], key=repr)
                inner_models = set(walk(gate.inputs[0]))
                import itertools

                for bits in itertools.product(
                    [False, True], repeat=len(labels)
                ):
                    model = frozenset(
                        l for l, b in zip(labels, bits) if b
                    )
                    if model not in inner_models:
                        yield model
        elif gate.kind is GateKind.AND:
            yield from _product_models(gate.inputs, walk)
        else:
            for input_id in gate.inputs:
                yield from walk(input_id)

    free = all_labels - var_sets[circuit.output]
    import itertools

    for core in walk(circuit.output):
        if not free:
            yield core
            continue
        labels = sorted(free, key=repr)
        for bits in itertools.product([False, True], repeat=len(labels)):
            yield core | frozenset(l for l, b in zip(labels, bits) if b)


def _product_models(inputs, walk) -> Iterator[frozenset]:
    if not inputs:
        yield frozenset()
        return
    head, tail = inputs[0], inputs[1:]
    for left in walk(head):
        for right in _product_models(tail, walk):
            yield left | right


def count_models_smoothed(circuit: Circuit) -> int:
    """Model count via the smoothed enumeration — a slow, independent
    cross-check of :func:`repro.circuits.probability.model_count` used by
    tests."""
    smoothed = smooth(circuit)
    return sum(1 for _ in enumerate_models(smoothed))

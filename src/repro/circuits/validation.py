"""Structural validation of circuits: decomposability and determinism.

Section 2 of the paper: an ∧-gate is *decomposable* when its inputs mention
pairwise-disjoint variable sets, and an ∨-gate is *deterministic* when its
inputs capture pairwise-disjoint Boolean functions.  A circuit is a d-D when
every ∧-gate is decomposable and every ∨-gate is deterministic.

Decomposability is purely syntactic and checked exactly here.  Determinism
is a semantic property (coNP-hard in general); this module offers

* :func:`check_determinism_by_enumeration` — exact, exponential in the number
  of variables, for tests on small lineages; and
* :func:`check_determinism_by_sampling` — randomized refutation for larger
  circuits (any two inputs of an ∨-gate simultaneously true under a sampled
  assignment disproves determinism).

The compilation pipelines of :mod:`repro.pqe.intensional` produce circuits
that are deterministic *by construction* (the paper's Propositions 4.4/5.8);
the tests re-verify this with the checkers below.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Hashable

from repro.circuits.circuit import Circuit, GateKind


class CircuitPropertyError(AssertionError):
    """Raised when a circuit fails a claimed structural property."""


def is_decomposable(circuit: Circuit) -> bool:
    """Whether every ∧-gate has inputs over pairwise-disjoint variable sets."""
    return find_nondecomposable_gate(circuit) is None


def find_nondecomposable_gate(circuit: Circuit) -> int | None:
    """Return the id of some non-decomposable ∧-gate, or None."""
    var_sets = circuit.gate_variable_sets()
    for gate_id, gate in circuit.gates():
        if gate.kind is not GateKind.AND:
            continue
        seen: set[Hashable] = set()
        for input_id in gate.inputs:
            input_vars = var_sets[input_id]
            if seen & input_vars:
                return gate_id
            seen |= input_vars
    return None


def check_determinism_by_enumeration(circuit: Circuit) -> bool:
    """Exact determinism check by enumerating all variable assignments.

    For every assignment and every ∨-gate, at most one input may evaluate to
    True.  Exponential in ``|variables|``; reserved for validation on small
    instances.
    """
    labels = sorted(circuit.variables(), key=repr)
    or_gates = [
        (gate_id, gate)
        for gate_id, gate in circuit.gates()
        if gate.kind is GateKind.OR
    ]
    for bits in itertools.product([False, True], repeat=len(labels)):
        assignment = dict(zip(labels, bits))
        values = circuit.evaluate_all(assignment)
        for _, gate in or_gates:
            if sum(1 for i in gate.inputs if values[i]) > 1:
                return False
    return True


def check_determinism_by_sampling(
    circuit: Circuit, rng: random.Random, samples: int = 200
) -> bool:
    """Randomized determinism refuter: sample assignments and report False
    as soon as two inputs of one ∨-gate are simultaneously true.  A True
    result is evidence, not proof."""
    labels = sorted(circuit.variables(), key=repr)
    or_gates = [
        gate for _, gate in circuit.gates() if gate.kind is GateKind.OR
    ]
    for _ in range(samples):
        assignment = {label: rng.random() < 0.5 for label in labels}
        values = circuit.evaluate_all(assignment)
        for gate in or_gates:
            if sum(1 for i in gate.inputs if values[i]) > 1:
                return False
    return True


def assert_d_d(circuit: Circuit, exhaustive_limit: int = 14) -> None:
    """Assert the circuit is a d-D: decomposable, and deterministic
    (exactly if it has at most ``exhaustive_limit`` variables, by sampling
    otherwise).

    :raises CircuitPropertyError: if a violation is found.
    """
    bad_gate = find_nondecomposable_gate(circuit)
    if bad_gate is not None:
        raise CircuitPropertyError(
            f"∧-gate {bad_gate} is not decomposable: "
            f"{circuit.gate(bad_gate)!r}"
        )
    if len(circuit.variables()) <= exhaustive_limit:
        if not check_determinism_by_enumeration(circuit):
            raise CircuitPropertyError("some ∨-gate is not deterministic")
    else:
        rng = random.Random(0xD5EED)
        if not check_determinism_by_sampling(circuit, rng):
            raise CircuitPropertyError(
                "some ∨-gate is not deterministic (found by sampling)"
            )


def is_dldd_shaped(circuit: Circuit) -> bool:
    """Whether every ∨-gate has the restricted *decision* shape of DLDDs
    ([6], discussed under Proposition 3.7): two inputs of the form
    ``(v ∧ g) ∨ (¬v ∧ g')`` for a common variable ``v``.

    Used by tests to confirm that the paper's d-D constructions genuinely
    leave the DLDD fragment (where the exponential lower bounds of [6] live)
    at the template gates, while OBDD-derived subcircuits stay inside it.
    """
    for _, gate in circuit.gates():
        if gate.kind is not GateKind.OR:
            continue
        if not _is_decision_or(circuit, gate.inputs):
            return False
    return True


def _is_decision_or(circuit: Circuit, inputs: tuple[int, ...]) -> bool:
    if len(inputs) != 2:
        return False
    # Collect, per branch, every literal-shaped operand of its top ∧-gate;
    # the gate is a decision iff some variable appears as a positive
    # literal in one branch and a negative literal in the other (operands
    # that are themselves variables may play either the literal or the
    # sub-circuit role, so we must consider all candidates).
    branch_literals: list[set[tuple[Hashable, bool]]] = []
    for input_id in inputs:
        gate = circuit.gate(input_id)
        if gate.kind is not GateKind.AND or len(gate.inputs) != 2:
            return False
        literals: set[tuple[Hashable, bool]] = set()
        for operand in gate.inputs:
            operand_gate = circuit.gate(operand)
            if operand_gate.kind is GateKind.VAR:
                literals.add((operand_gate.payload, True))
            elif (
                operand_gate.kind is GateKind.NOT
                and circuit.gate(operand_gate.inputs[0]).kind is GateKind.VAR
            ):
                literals.add(
                    (circuit.gate(operand_gate.inputs[0]).payload, False)
                )
        if not literals:
            return False
        branch_literals.append(literals)
    first, second = branch_literals
    return any(
        (variable, not polarity) in second for variable, polarity in first
    )

"""Compiled evaluation tapes: the fast path for d-D probability.

:mod:`repro.circuits.probability` states the d-D payoff — probability is
one bottom-up pass — but walking :class:`~repro.circuits.circuit.Gate`
objects gate-by-gate pays Python's full dispatch cost (enum identity
checks, attribute loads, dict lookups) on every gate of every pass.  This
module flattens a circuit once into an immutable post-order *evaluation
tape*: parallel arrays of opcodes and input-index spans, with variable
gates resolved to dense *slots*.  The tape is the unit of reuse for the
paper's motivating workloads (re-evaluation after probability updates,
sensitivity sweeps, Monte-Carlo batches over many probability maps):

* :meth:`EvaluationTape.gate_values` / :meth:`EvaluationTape.evaluate` —
  the exact backend, an interpreter over the tape arrays that is generic
  in the numeric type (``fractions.Fraction`` in, ``Fraction`` out) and
  reproduces the reference per-gate loop bit for bit;
* :meth:`EvaluationTape.evaluate_floats` — the fast ``float`` backend: the
  tape is lazily code-generated into one Python function of straight-line
  arithmetic (a statement per live gate), so a pass costs bytecode only;
* :meth:`EvaluationTape.evaluate_batch` — batched probability: ``B``
  probability maps are evaluated in one sweep by running the generated
  function over per-slot vectors (numpy rows when numpy is importable, a
  pure-Python per-map loop otherwise).

Tapes are immutable; :func:`tape_for` memoizes them per circuit (weakly,
keyed by the circuit's append-only fingerprint), so repeated evaluation
never re-walks the gate arena.
"""

from __future__ import annotations

import weakref
from array import array
from collections.abc import Hashable, Iterable, Mapping, Sequence
from fractions import Fraction
from math import gcd

from repro.circuits.circuit import Circuit, GateKind

try:  # numpy is optional: the batch backend falls back to pure Python.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _batch_fallback
    _np = None

Number = Fraction | float

#: Tape opcodes (one byte each; CONST is split by payload so the
#: interpreter needs no payload array).
OP_VAR = 0
OP_CONST_FALSE = 1
OP_CONST_TRUE = 2
OP_NOT = 3
OP_AND = 4
OP_OR = 5

#: Above this many live gates the float backend stays on the interpreter
#: instead of code generation (compiling a function of millions of
#: statements costs more than it saves on a handful of passes).
CODEGEN_GATE_LIMIT = 500_000

#: Maximum operands folded into one generated expression; wider gates are
#: accumulated over several statements to keep the AST shallow.
_CODEGEN_CHUNK = 32


class EvaluationTape:
    """An immutable post-order flattening of a :class:`Circuit`.

    Node ``i`` of the tape is gate ``i`` of the arena (arena ids are dense
    and topologically ordered, so arena order *is* a post-order).  The
    structure is four parallel arrays — ``opcodes``, per-node operand
    (variable slot for ``VAR``, span start for ``NOT``/``AND``/``OR``),
    span length, and one flat ``args`` array of input node indices — plus
    the variable labels in slot order.
    """

    __slots__ = (
        "opcodes",
        "operands",
        "arity",
        "args",
        "var_labels",
        "output",
        "live",
        "_float_fn",
        "__weakref__",
    )

    def __init__(
        self,
        opcodes: array,
        operands: array,
        arity: array,
        args: array,
        var_labels: tuple[Hashable, ...],
        output: int,
        live: array,
    ):
        self.opcodes = opcodes
        self.operands = operands
        self.arity = arity
        self.args = args
        self.var_labels = var_labels
        self.output = output
        self.live = live
        self._float_fn = None

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "EvaluationTape":
        """Flatten ``circuit``.  A designated output is optional: without
        one the whole arena is live and only :meth:`gate_values` works."""
        output = _output_of(circuit)
        n = len(circuit)
        opcodes = array("b", bytes(n))
        operands = array("q", [0]) * n
        arity = array("q", [0]) * n
        args = array("q")
        var_labels: list[Hashable] = []
        for gate_id, gate in circuit.gates():
            kind = gate.kind
            if kind is GateKind.VAR:
                operands[gate_id] = len(var_labels)
                var_labels.append(gate.payload)
            elif kind is GateKind.CONST:
                opcodes[gate_id] = (
                    OP_CONST_TRUE if gate.payload else OP_CONST_FALSE
                )
            else:
                if kind is GateKind.NOT:
                    opcodes[gate_id] = OP_NOT
                elif kind is GateKind.AND:
                    opcodes[gate_id] = OP_AND
                else:
                    opcodes[gate_id] = OP_OR
                operands[gate_id] = len(args)
                arity[gate_id] = len(gate.inputs)
                args.extend(gate.inputs)
        live = array(
            "q",
            range(n) if output is None
            else sorted(circuit.reachable_from_output()),
        )
        return cls(
            opcodes, operands, arity, args, tuple(var_labels), output, live
        )

    def __len__(self) -> int:
        return len(self.opcodes)

    # ------------------------------------------------------------------
    # Exact backend: interpreter over the tape arrays
    # ------------------------------------------------------------------

    def gate_values(
        self, prob: Mapping[Hashable, Number]
    ) -> list[Number]:
        """Per-gate probabilities for *every* node of the tape, indexed by
        gate id — the tape form of the reference bottom-up pass, with
        identical numeric semantics (missing labels default to 0)."""
        return self._interpret(prob, range(len(self.opcodes)))

    def evaluate(self, prob: Mapping[Hashable, Number]) -> Number:
        """``Pr(circuit)`` by evaluating only the live (output-reachable)
        nodes; exact for :class:`Fraction` inputs.

        Exact maps run on the integer common-denominator backend when the
        probabilities admit a small common denominator (the result is the
        same canonical ``Fraction`` either way); other maps — and exotic
        denominators — use the generic interpreter.
        """
        result = self._evaluate_common_denominator(prob)
        if result is not None:
            return result
        return self._interpret(prob, self.live)[self._output()]

    def _output(self) -> int:
        if self.output is None:
            raise ValueError("circuit has no designated output gate")
        return self.output

    def _evaluate_common_denominator(
        self, prob: Mapping[Hashable, Number]
    ) -> Fraction | None:
        """The exact fast path: gate values as ``(numerator, exponent)``
        pairs denoting ``numerator / D**exponent`` for one common
        denominator ``D`` of every slot probability.

        Python-``int`` arithmetic replaces per-operation ``Fraction``
        normalization (two gcds and an object per multiply); the single
        ``Fraction(n, D**e)`` at the output canonicalizes, so the result
        is bit-identical to the interpreter's.  Returns ``None`` — caller
        falls back to the interpreter — when the map is not exact
        (first value float, mirroring :func:`one_like`), the common
        denominator exceeds 64 bits, or an exponent outruns
        ``#slots + 2`` (possible only on non-decomposable circuits, where
        repeated subcircuits inflate the scale).
        """
        if self.output is None or not isinstance(one_like(prob), Fraction):
            return None
        get = prob.get
        values = []
        denominator = 1
        for label in self.var_labels:
            value = get(label, 0)
            if isinstance(value, Fraction):
                q = value.denominator
                if q > 1:
                    denominator = denominator * q // gcd(denominator, q)
                    if denominator.bit_length() > 64:
                        return None
            elif not isinstance(value, int):
                return None  # a float slot: keep interpreter semantics
            values.append(value)
        D = denominator
        exponent_limit = len(values) + 2
        powers = [1, D]  # powers[i] = D**i, grown on demand
        opcodes = self.opcodes
        operands = self.operands
        arity = self.arity
        args = self.args
        nums = [0] * len(opcodes)
        exps = [0] * len(opcodes)
        for i in self.live:
            op = opcodes[i]
            if op == OP_VAR:
                value = values[operands[i]]
                if isinstance(value, Fraction):
                    nums[i] = value.numerator * (D // value.denominator)
                else:
                    nums[i] = value * D
                exps[i] = 1
            elif op == OP_AND:
                start = operands[i]
                product = 1
                exponent = 0
                for j in range(start, start + arity[i]):
                    a = args[j]
                    product *= nums[a]
                    exponent += exps[a]
                if exponent > exponent_limit:
                    return None
                nums[i] = product
                exps[i] = 0 if product == 0 else exponent
            elif op == OP_OR:
                start = operands[i]
                top = start + arity[i]
                exponent = 0
                for j in range(start, top):
                    e = exps[args[j]]
                    if e > exponent:
                        exponent = e
                while len(powers) <= exponent:
                    powers.append(powers[-1] * D)
                total = 0
                for j in range(start, top):
                    a = args[j]
                    e = exps[a]
                    total += (
                        nums[a]
                        if e == exponent
                        else nums[a] * powers[exponent - e]
                    )
                nums[i] = total
                exps[i] = 0 if total == 0 else exponent
            elif op == OP_NOT:
                a = args[operands[i]]
                exponent = exps[a]
                while len(powers) <= exponent:
                    powers.append(powers[-1] * D)
                nums[i] = powers[exponent] - nums[a]
                exps[i] = exponent
            elif op == OP_CONST_TRUE:
                nums[i] = 1
            # OP_CONST_FALSE keeps the zero initialization.
        out = self.output
        exponent = exps[out]
        while len(powers) <= exponent:
            powers.append(powers[-1] * D)
        return Fraction(nums[out], powers[exponent])

    def _interpret(
        self, prob: Mapping[Hashable, Number], nodes: Iterable[int]
    ) -> list[Number]:
        one = one_like(prob)
        zero = one - one
        opcodes = self.opcodes
        operands = self.operands
        arity = self.arity
        args = self.args
        labels = self.var_labels
        get = prob.get
        values: list[Number] = [0] * len(opcodes)
        for i in nodes:
            op = opcodes[i]
            if op == OP_VAR:
                values[i] = get(labels[operands[i]], 0)
            elif op == OP_AND:
                start = operands[i]
                product = one
                for j in range(start, start + arity[i]):
                    product = product * values[args[j]]
                values[i] = product
            elif op == OP_OR:
                start = operands[i]
                total = zero
                for j in range(start, start + arity[i]):
                    total = total + values[args[j]]
                values[i] = total
            elif op == OP_NOT:
                values[i] = one - values[args[operands[i]]]
            elif op == OP_CONST_TRUE:
                values[i] = one
            else:
                values[i] = zero
        return values

    # ------------------------------------------------------------------
    # Float backend: code generation
    # ------------------------------------------------------------------

    def probability_vector(
        self, prob: Mapping[Hashable, Number]
    ) -> list[float]:
        """``prob`` resolved to the tape's variable slots, as floats."""
        get = prob.get
        return [float(get(label, 0)) for label in self.var_labels]

    def evaluate_floats(
        self, prob: Mapping[Hashable, Number] | Sequence[float]
    ) -> float:
        """``Pr(circuit)`` in floating point via the compiled tape.

        ``prob`` may be a probability map or a pre-resolved slot vector
        (as produced by :meth:`probability_vector`).
        """
        vector = (
            self.probability_vector(prob)
            if isinstance(prob, Mapping)
            else prob
        )
        return float(self._compiled()(vector))

    def evaluate_batch(
        self,
        probs: Sequence[Mapping[Hashable, Number]] | None = None,
        *,
        matrix: Sequence[Sequence[float]] | None = None,
    ) -> list[float]:
        """``Pr(circuit)`` for a batch of probability maps in one sweep.

        Pass either ``probs`` (one mapping per batch member) or ``matrix``
        (one row of floats per *slot*, each of the batch length — the
        transposed layout the backend consumes directly).  With numpy the
        generated function runs once over per-slot vectors; without it
        each batch member is one compiled-function call.
        """
        if (probs is None) == (matrix is None):
            raise ValueError("pass exactly one of probs= or matrix=")
        if probs is not None:
            batch_size = len(probs)
            rows = [
                [float(p.get(label, 0)) for p in probs]
                for label in self.var_labels
            ]
        else:
            if not self.var_labels:
                # With zero slots the matrix layout cannot encode a batch
                # size; fail loudly instead of returning an empty batch.
                raise ValueError(
                    "the tape has no variable slots, so matrix= cannot "
                    "express a batch size; pass probs= instead"
                )
            rows = [list(map(float, row)) for row in matrix]
            if len(rows) != len(self.var_labels):
                raise ValueError(
                    f"matrix has {len(rows)} rows; the tape has "
                    f"{len(self.var_labels)} variable slots"
                )
            batch_size = len(rows[0])
            if any(len(row) != batch_size for row in rows):
                raise ValueError("ragged batch matrix")
        return self._sweep(rows, batch_size)

    def evaluate_vectors(
        self, vectors: Sequence[Sequence[float]]
    ) -> list[float]:
        """``Pr(circuit)`` for a batch of pre-resolved slot vectors — one
        per batch member, as produced by :meth:`probability_vector`.

        The microbatch entry of the serving layer
        (:meth:`repro.serving.shard.Shard._process`): each grouped
        request's probability map is resolved to a slot vector once,
        and the whole group then shares a single sweep.  Equivalent to
        :meth:`evaluate_batch` on the corresponding maps, float for
        float.
        """
        width = len(self.var_labels)
        for vector in vectors:
            if len(vector) != width:
                raise ValueError(
                    f"slot vector of length {len(vector)}; the tape has "
                    f"{width} variable slots"
                )
        rows = [
            [float(vector[slot]) for vector in vectors]
            for slot in range(width)
        ]
        return self._sweep(rows, len(vectors))

    # ------------------------------------------------------------------
    # Boolean backend: batched world (indicator) evaluation
    # ------------------------------------------------------------------

    def evaluate_worlds(self, worlds) -> list[bool]:
        """The circuit's *Boolean* value on a batch of 0/1 slot rows.

        ``worlds`` is a ``samples × slots`` 0/1 matrix (numpy array or
        sequence of rows), one possible world per row.  Unlike the
        probability backends — whose ∨-as-sum is only meaningful on
        deterministic circuits — this evaluates honest Boolean semantics
        (∧ = all, ∨ = any, ¬ = complement), so it computes the exact
        indicator of *any* circuit, non-deterministic DNF lineages
        included.  That is what the Monte-Carlo route of
        :mod:`repro.pqe.approximate` needs: the lineage circuit of a
        #P-hard query is never a d-D, but its indicator on a sampled
        world is still one tape sweep.

        The batch is evaluated as big-int bitmasks (bit ``s`` of a gate's
        value is its truth in world ``s``): one Python int op per gate
        covers the whole batch, independent of numpy — with numpy input
        the columns are bit-packed via ``np.packbits`` first.
        """
        output = self._output()
        if _np is not None and isinstance(worlds, _np.ndarray):
            samples = int(worlds.shape[0])
            if samples and worlds.shape[1] != len(self.var_labels):
                raise ValueError(
                    f"world rows of width {worlds.shape[1]}; the tape "
                    f"has {len(self.var_labels)} variable slots"
                )
            packed = _np.packbits(
                worlds.astype(_np.uint8), axis=0, bitorder="little"
            )
            masks = [
                int.from_bytes(packed[:, slot].tobytes(), "little")
                for slot in range(len(self.var_labels))
            ]
        else:
            rows = list(worlds)
            samples = len(rows)
            masks = [0] * len(self.var_labels)
            for s, row in enumerate(rows):
                if len(row) != len(self.var_labels):
                    raise ValueError(
                        f"world row of width {len(row)}; the tape has "
                        f"{len(self.var_labels)} variable slots"
                    )
                bit = 1 << s
                for slot, value in enumerate(row):
                    if value:
                        masks[slot] |= bit
        if samples == 0:
            return []
        full = (1 << samples) - 1
        opcodes = self.opcodes
        operands = self.operands
        arity = self.arity
        args = self.args
        values = [0] * len(opcodes)
        for i in self.live:
            op = opcodes[i]
            if op == OP_VAR:
                values[i] = masks[operands[i]]
            elif op == OP_AND:
                start = operands[i]
                mask = full
                for j in range(start, start + arity[i]):
                    mask &= values[args[j]]
                values[i] = mask
            elif op == OP_OR:
                start = operands[i]
                mask = 0
                for j in range(start, start + arity[i]):
                    mask |= values[args[j]]
                values[i] = mask
            elif op == OP_NOT:
                values[i] = full ^ values[args[operands[i]]]
            elif op == OP_CONST_TRUE:
                values[i] = full
            # OP_CONST_FALSE keeps the zero initialization.
        out = values[output]
        return [bool(out >> s & 1) for s in range(samples)]

    def _sweep(
        self, rows: list[list[float]], batch_size: int
    ) -> list[float]:
        """Run the compiled function over per-slot rows (the shared
        backend of :meth:`evaluate_batch` and :meth:`evaluate_vectors`)."""
        if batch_size == 0:
            return []
        fn = self._compiled()
        if _np is not None:
            stacked = (
                _np.array(rows, dtype=float)
                if rows
                else _np.empty((0, batch_size))
            )
            result = fn(stacked)
            if _np.ndim(result) == 0:  # constant output: broadcast
                return [float(result)] * batch_size
            return [float(x) for x in result]
        return self._batch_fallback(fn, rows, batch_size)

    @staticmethod
    def _batch_fallback(fn, rows, batch_size):
        """Pure-Python batch: one compiled pass per batch member."""
        return [
            float(fn([row[b] for row in rows])) for b in range(batch_size)
        ]

    def _compiled(self):
        if self._float_fn is None:
            self._output()
            if len(self.live) > CODEGEN_GATE_LIMIT:
                self._float_fn = self._interpreted_float_fn()
            else:
                self._float_fn = _codegen(self)
        return self._float_fn

    def _interpreted_float_fn(self):
        """Interpreter-backed stand-in for the generated function, used
        beyond :data:`CODEGEN_GATE_LIMIT` (same calling convention)."""

        def run(vector):
            prob = dict(zip(self.var_labels, vector))
            values = self._interpret(prob, self.live)
            return values[self._output()]

        return run


def _codegen(tape: EvaluationTape):
    """Generate one straight-line Python function evaluating the live part
    of the tape over a slot vector ``V`` (floats or numpy rows)."""
    opcodes = tape.opcodes
    operands = tape.operands
    arity = tape.arity
    args = tape.args
    lines = ["def _tape_fn(V):"]
    emit = lines.append
    for i in tape.live:
        op = opcodes[i]
        if op == OP_VAR:
            emit(f" v{i}=V[{operands[i]}]")
        elif op == OP_CONST_TRUE:
            emit(f" v{i}=1.0")
        elif op == OP_CONST_FALSE:
            emit(f" v{i}=0.0")
        elif op == OP_NOT:
            emit(f" v{i}=1.0-v{args[operands[i]]}")
        else:
            start = operands[i]
            inputs = [f"v{args[j]}" for j in range(start, start + arity[i])]
            joiner = "*" if op == OP_AND else "+"
            emit(f" v{i}={joiner.join(inputs[:_CODEGEN_CHUNK])}")
            for at in range(_CODEGEN_CHUNK, len(inputs), _CODEGEN_CHUNK):
                chunk = joiner.join(inputs[at : at + _CODEGEN_CHUNK])
                emit(f" v{i}=v{i}{joiner}{chunk}")
    emit(f" return v{tape.output}")
    namespace: dict = {}
    exec(compile("\n".join(lines), "<evaluation-tape>", "exec"), namespace)
    return namespace["_tape_fn"]


def one_like(prob: Mapping[Hashable, Number]) -> Number:
    """The multiplicative unit matching the numeric type of ``prob``:
    :class:`Fraction` for exact maps (and for empty maps), ``1.0`` for
    float maps — the convention of the reference pass."""
    for value in prob.values():
        if isinstance(value, Fraction):
            return Fraction(1)
        return 1.0
    return Fraction(1)


# ----------------------------------------------------------------------
# Per-circuit tape cache
# ----------------------------------------------------------------------

_TAPE_CACHE: "weakref.WeakKeyDictionary[Circuit, tuple[tuple[int, int], EvaluationTape]]" = (
    weakref.WeakKeyDictionary()
)


def _output_of(circuit: Circuit) -> int | None:
    try:
        return circuit.output
    except ValueError:
        return None


def tape_for(circuit: Circuit) -> EvaluationTape:
    """The memoized evaluation tape of ``circuit``.

    Circuits are append-only, so ``(gate count, output id)`` fingerprints
    the arena: growing the circuit or re-designating the output invalidates
    the cached tape, and nothing else can.
    """
    fingerprint = (len(circuit), _output_of(circuit))
    entry = _TAPE_CACHE.get(circuit)
    if entry is not None and entry[0] == fingerprint:
        return entry[1]
    tape = EvaluationTape.from_circuit(circuit)
    _TAPE_CACHE[circuit] = (fingerprint, tape)
    return tape

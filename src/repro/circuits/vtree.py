"""V-trees and structured decomposability (the d-SDNNF frontier).

A *v-tree* [29] over a variable set is a full binary tree whose leaves are
the variables; a decomposable circuit is *structured* by the v-tree when
every ∧-gate splits its variables along some internal v-tree node (left
operand inside the node's left subtree, right operand inside the right).
Structured d-DNNFs (d-SDNNFs) are exactly the circuits the [9] lower bound
cited by the paper applies to: nondegenerate H+-queries have **no**
polynomial d-SDNNF lineages, which is one of the two results that pushed
the intensional–extensional conjecture toward the unrestricted d-D class
this library targets.

We provide the v-tree structure, the structuredness check, a canonical
right-linear v-tree, and a structured compiler for *read-once* circuits
(every read-once decomposable circuit is structured by the v-tree induced
by its own shape) — enough to exhibit both sides of the frontier in tests:
the hierarchical baseline is structured, while the paper's compiled d-Ds
for nondegenerate H-queries are (correctly) *not* certified structured by
their natural v-trees.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Union

from repro.circuits.circuit import Circuit, GateKind


@dataclass(frozen=True)
class VtreeLeaf:
    """A leaf holding one variable."""

    variable: Hashable


@dataclass(frozen=True)
class VtreeNode:
    """An internal node with two children."""

    left: "Vtree"
    right: "Vtree"


Vtree = Union[VtreeLeaf, VtreeNode]


def vtree_variables(tree: Vtree) -> frozenset[Hashable]:
    """All variables at the leaves of a v-tree."""
    if isinstance(tree, VtreeLeaf):
        return frozenset([tree.variable])
    return vtree_variables(tree.left) | vtree_variables(tree.right)


def validate_vtree(tree: Vtree) -> None:
    """Check leaf variables are pairwise distinct.

    :raises ValueError: on a duplicated variable.
    """
    seen: set[Hashable] = set()

    def walk(node: Vtree) -> None:
        if isinstance(node, VtreeLeaf):
            if node.variable in seen:
                raise ValueError(
                    f"variable {node.variable!r} appears twice in the v-tree"
                )
            seen.add(node.variable)
            return
        walk(node.left)
        walk(node.right)

    walk(tree)


def right_linear_vtree(variables: list[Hashable]) -> Vtree:
    """The right-linear (caterpillar) v-tree over the given order — the
    v-tree whose structured circuits correspond to OBDD-style slicing."""
    if not variables:
        raise ValueError("a v-tree needs at least one variable")
    if len(variables) == 1:
        return VtreeLeaf(variables[0])
    return VtreeNode(
        VtreeLeaf(variables[0]), right_linear_vtree(variables[1:])
    )


def _subtrees(tree: Vtree):
    yield tree
    if isinstance(tree, VtreeNode):
        yield from _subtrees(tree.left)
        yield from _subtrees(tree.right)


def respects_vtree(circuit: Circuit, tree: Vtree) -> bool:
    """Whether the circuit is structured by the v-tree: every binary
    ∧-gate's operand variable sets are separated by some internal node
    (left set inside its left subtree, right set inside its right, in
    either orientation).  n-ary ∧-gates are treated as nested binary
    splits, folded right to left, and every fold must be separable.

    Constants and single-variable operands are unconstrained.
    """
    validate_vtree(tree)
    var_sets = circuit.gate_variable_sets()
    internal = [
        (vtree_variables(node.left), vtree_variables(node.right))
        for node in _subtrees(tree)
        if isinstance(node, VtreeNode)
    ]

    def separated(left_vars: frozenset, right_vars: frozenset) -> bool:
        if not left_vars or not right_vars:
            return True
        for left_side, right_side in internal:
            if left_vars <= left_side and right_vars <= right_side:
                return True
            if left_vars <= right_side and right_vars <= left_side:
                return True
        return False

    for _, gate in circuit.gates():
        if gate.kind is not GateKind.AND:
            continue
        remaining = list(gate.inputs)
        # Fold the n-ary gate right to left; each fold must be separable.
        while len(remaining) >= 2:
            last = remaining.pop()
            rest_vars: frozenset[Hashable] = frozenset()
            for other in remaining:
                rest_vars |= var_sets[other]
            if not separated(rest_vars, var_sets[last]):
                return False
        del remaining
    return True


def vtree_of_read_once(circuit: Circuit) -> Vtree:
    """The v-tree induced by a read-once decomposable circuit's own shape:
    mirror the circuit's ∧-splits, putting each variable where the circuit
    uses it.  The circuit then respects the result by construction — the
    structured (d-SDNNF-side) certificate for the hierarchical baseline.

    :raises ValueError: if the circuit mentions no variables or a variable
        is shared across ∧-operands (not read-once-decomposable).
    """
    var_sets = circuit.gate_variable_sets()
    if not var_sets[circuit.output]:
        raise ValueError("cannot build a v-tree for a constant circuit")

    def build(gate_id: int) -> Vtree:
        labels = sorted(var_sets[gate_id], key=repr)
        if len(labels) == 1:
            return VtreeLeaf(labels[0])
        gate = circuit.gate(gate_id)
        if gate.kind in (GateKind.NOT,):
            return build(gate.inputs[0])
        if gate.kind is GateKind.AND:
            children = [
                i for i in gate.inputs if var_sets[i]
            ]
            if len(children) == 1:
                return build(children[0])
            subtree = build(children[0])
            for child in children[1:]:
                subtree = VtreeNode(subtree, build(child))
            return subtree
        if gate.kind is GateKind.OR:
            # Read-once ∨-branches share variables only if the circuit is
            # not read-once; pick the first branch covering everything, or
            # fall back to a right-linear tree over the gate's variables.
            for input_id in gate.inputs:
                if var_sets[input_id] == var_sets[gate_id]:
                    return build(input_id)
            return right_linear_vtree(labels)
        return right_linear_vtree(labels)

    tree = build(circuit.output)
    # Cover any variables lost through OR-branch asymmetry.
    missing = sorted(
        var_sets[circuit.output] - vtree_variables(tree), key=repr
    )
    for label in missing:
        tree = VtreeNode(tree, VtreeLeaf(label))
    validate_vtree(tree)
    return tree

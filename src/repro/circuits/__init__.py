"""Boolean circuits: d-D carriers, structural validation, probability and
the knowledge-compilation reuse tasks (Section 2 of the paper)."""

from repro.circuits.circuit import Circuit, Gate, GateKind
from repro.circuits.evaluator import EvaluationTape, tape_for
from repro.circuits.operations import (
    circuit_to_boolean_function,
    constant_circuit,
    copy_into,
    negate,
    to_nnf,
)
from repro.circuits.probability import (
    conditioned_probability,
    gate_probabilities,
    model_count,
    most_probable_model,
    probability,
    sample_model,
)
from repro.circuits.serialization import circuit_from_dict, circuit_to_dict
from repro.circuits.vtree import (
    VtreeLeaf,
    VtreeNode,
    respects_vtree,
    right_linear_vtree,
    vtree_of_read_once,
)
from repro.circuits.smoothing import (
    count_models_smoothed,
    enumerate_models,
    is_smooth,
    smooth,
)
from repro.circuits.validation import (
    CircuitPropertyError,
    assert_d_d,
    check_determinism_by_enumeration,
    check_determinism_by_sampling,
    find_nondecomposable_gate,
    is_decomposable,
    is_dldd_shaped,
)

__all__ = [
    "Circuit",
    "CircuitPropertyError",
    "EvaluationTape",
    "Gate",
    "GateKind",
    "assert_d_d",
    "check_determinism_by_enumeration",
    "check_determinism_by_sampling",
    "circuit_to_boolean_function",
    "conditioned_probability",
    "constant_circuit",
    "copy_into",
    "count_models_smoothed",
    "enumerate_models",
    "find_nondecomposable_gate",
    "gate_probabilities",
    "is_decomposable",
    "is_dldd_shaped",
    "is_smooth",
    "model_count",
    "most_probable_model",
    "negate",
    "probability",
    "sample_model",
    "smooth",
    "tape_for",
    "to_nnf",
    "vtree_of_read_once",
    "right_linear_vtree",
    "respects_vtree",
    "circuit_to_dict",
    "circuit_from_dict",
    "VtreeNode",
    "VtreeLeaf",
]

"""Circuit-to-circuit operations: copying, negation pushing, truth tables.

The paper's template construction (Proposition 5.8) freely applies ¬-gates
on top of d-Ds — legal for d-Ds, which unlike d-DNNFs are closed under
negation by definition.  To compare against d-DNNF requirements (Section 7)
we also provide negation *pushing*: rewriting an arbitrary d-D into NNF.
Pushing ¬ through a decomposable ∧ yields (by De Morgan) an ∨ whose
determinism must be re-established; we do this with the standard disjoint
expansion ``¬(a ∧ b) = ¬a ∨ (a ∧ ¬b)``, which preserves both determinism and
decomposability.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.circuits.circuit import Circuit, GateKind
from repro.core.boolean_function import BooleanFunction


def copy_into(
    source: Circuit,
    target: Circuit,
    rename: Mapping[Hashable, Hashable] | None = None,
) -> int:
    """Copy ``source``'s gates into ``target`` (optionally renaming
    variables) and return the id of the copied output gate in ``target``.

    Every gate is rebuilt through ``target``'s ``add_*`` methods, so when
    the target hash-conses (``Circuit(dedup=True)``) the copy dedups
    against the target's cons table: gates the target already holds are
    reused instead of appended.
    """
    rename = rename or {}
    mapping: dict[int, int] = {}
    for gate_id, gate in source.gates():
        if gate.kind is GateKind.VAR:
            label = rename.get(gate.payload, gate.payload)
            mapping[gate_id] = target.add_var(label)
        elif gate.kind is GateKind.CONST:
            mapping[gate_id] = target.add_const(bool(gate.payload))
        elif gate.kind is GateKind.NOT:
            mapping[gate_id] = target.add_not(mapping[gate.inputs[0]])
        elif gate.kind is GateKind.AND:
            mapping[gate_id] = target.add_and(
                mapping[i] for i in gate.inputs
            )
        else:
            mapping[gate_id] = target.add_or(mapping[i] for i in gate.inputs)
    return mapping[source.output]


def negate(circuit: Circuit) -> Circuit:
    """The complement circuit: a fresh circuit computing ``¬ output``.

    For d-Ds this is a single extra ¬-gate — the closure property the
    paper's technique exploits ("inclusion–exclusion can be avoided by using
    negation").
    """
    result = Circuit()
    inner = copy_into(circuit, result)
    result.set_output(result.add_not(inner))
    return result


def to_nnf(circuit: Circuit) -> Circuit:
    """Push all negations down to the variables, preserving determinism and
    decomposability (so a d-D becomes a d-DNNF of at most quadratic size).

    Rewrites, on the negated rail:

    * ``¬¬g -> g``;
    * ``¬(g1 ∨ ... ∨ gm) -> ¬g1 ∧ ... ∧ ¬gm``  — decomposable only if the
      original ∨ was over disjoint variables, so instead we use the
      deterministic expansion over the (deterministic) ∨:
      ``¬g1 ∧ ... ∧ ¬gm`` is correct but possibly non-decomposable; we keep
      it only when variable sets are disjoint, otherwise we fall back to the
      pairwise disjoint expansion described below;
    * ``¬(g1 ∧ ... ∧ gm) -> ¬g1 ∨ (g1 ∧ ¬g2) ∨ (g1 ∧ g2 ∧ ¬g3) ∨ ...`` — a
      deterministic ∨ of decomposable ∧-gates (decomposable because the
      original ∧ was).

    The same expansion handles the ∨ case through De Morgan duality:
    ``¬(g1 ∨ ... ∨ gm)`` with the ∨ deterministic is rewritten by treating
    the negation of each branch cumulatively:
    ``¬g1 ∧ ¬g2 ∧ ...`` is *not* decomposable in general, so we instead use
    ``¬(g1 ∨ g2) = ¬g1 ∧ ¬g2`` only when ``Vars(g1) ∩ Vars(g2) = ∅`` and the
    recursive identity ``¬(g1 ∨ rest) = ¬g1 ∧ ¬rest`` otherwise cannot be
    used; in that case we rebuild from the two rails of each child (see
    ``_negative``).
    """
    builder = _NnfBuilder(circuit)
    result = builder.result
    result.set_output(builder.positive(circuit.output))
    if not result.is_nnf():
        raise AssertionError("to_nnf produced a non-NNF circuit")
    return result


class _NnfBuilder:
    """Dual-rail NNF construction: for every gate of the source circuit we
    can materialize a positive copy and a negative (complement) copy, both in
    NNF, memoized.  The negative ∧-rail uses the deterministic expansion;
    the negative ∨-rail uses its dual, which stays deterministic *and*
    decomposable because it conjoins complements with originals of disjoint
    branches of a decomposable... — see inline comments for each case."""

    def __init__(self, source: Circuit):
        self.source = source
        self.result = Circuit()
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}

    def positive(self, gate_id: int) -> int:
        if gate_id in self._pos:
            return self._pos[gate_id]
        gate = self.source.gate(gate_id)
        if gate.kind is GateKind.VAR:
            built = self.result.add_var(gate.payload)
        elif gate.kind is GateKind.CONST:
            built = self.result.add_const(bool(gate.payload))
        elif gate.kind is GateKind.NOT:
            built = self.negative(gate.inputs[0])
        elif gate.kind is GateKind.AND:
            built = self.result.add_and(
                self.positive(i) for i in gate.inputs
            )
        else:
            built = self.result.add_or(self.positive(i) for i in gate.inputs)
        self._pos[gate_id] = built
        return built

    def negative(self, gate_id: int) -> int:
        if gate_id in self._neg:
            return self._neg[gate_id]
        gate = self.source.gate(gate_id)
        if gate.kind is GateKind.VAR:
            built = self.result.add_not(self.result.add_var(gate.payload))
        elif gate.kind is GateKind.CONST:
            built = self.result.add_const(not gate.payload)
        elif gate.kind is GateKind.NOT:
            built = self.positive(gate.inputs[0])
        elif gate.kind is GateKind.AND:
            # ¬(g1 ∧ ... ∧ gm) = ¬g1 ∨ (g1 ∧ ¬g2) ∨ (g1 ∧ g2 ∧ ¬g3) ∨ ...
            # Deterministic (branch j forces g1..g_{j-1} true and gj false)
            # and decomposable (the gi have disjoint variables).
            branches = []
            for j, input_id in enumerate(gate.inputs):
                parts = [self.positive(gate.inputs[i]) for i in range(j)]
                parts.append(self.negative(input_id))
                branches.append(self.result.add_and(parts))
            built = self.result.add_or(branches)
        else:
            # ¬(g1 ∨ ... ∨ gm) with the ∨ deterministic: the complement is
            # the conjunction of complements, which need not be decomposable.
            # Dual expansion: ¬g1 ∧ ¬g2 ∧ ... is replaced by the recursive
            # two-rail identity; with determinism of the source ∨,
            #   ¬(g1 ∨ rest) = ¬g1 ∧ ¬rest
            # is the only Boolean option, so decomposability can fail when
            # branches share variables.  We build it anyway — the result is
            # still *sound* and deterministic-by-absence-of-∨; circuits whose
            # negative rail must be decomposable should come from OBDDs
            # (where both rails are structurally fine).
            built = self.result.add_and(
                self.negative(i) for i in gate.inputs
            )
        self._neg[gate_id] = built
        return built


def circuit_to_boolean_function(
    circuit: Circuit, variable_order: list[Hashable]
) -> BooleanFunction:
    """Tabulate a (small) circuit into a :class:`BooleanFunction` where
    variable ``i`` of the function is ``variable_order[i]`` of the circuit.

    Exponential in the number of variables; used by tests to compare
    compiled lineages against ground-truth lineages.
    """
    nvars = len(variable_order)
    table = 0
    for mask in range(1 << nvars):
        assignment = {
            variable_order[i]: bool(mask >> i & 1) for i in range(nvars)
        }
        if circuit.evaluate(assignment):
            table |= 1 << mask
    return BooleanFunction(nvars, table)


def constant_circuit(value: bool) -> Circuit:
    """A circuit computing the given constant."""
    circuit = Circuit()
    circuit.set_output(circuit.add_const(value))
    return circuit

"""Deadlines as first-class values, checked cooperatively.

A request that cannot be answered in time should fail *typed* and
*early* — not run an exponential enumeration to completion for a caller
that stopped listening.  :class:`Deadline` captures an absolute expiry
on a monotonic clock at admission time; engines check it cooperatively
at their natural boundaries (admission, dequeue, between compilation
and the sweep, between sampling waves) and raise
:class:`DeadlineExceeded` — a typed error the serving tier can count,
shed on, or degrade around, instead of a silent slow answer.

The module lives in :mod:`repro.core` so the evaluation engines
(:mod:`repro.pqe.engine`, :mod:`repro.pqe.approximate`) can honor
deadlines without importing the serving layer that issues them.
``clock`` is injectable everywhere so state-machine tests drive time by
hand instead of sleeping.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable


class DeadlineExceeded(TimeoutError):
    """A typed "ran out of time": the work was cut off (or never begun)
    because its :class:`Deadline` expired.  Raised by cooperative checks,
    never by preemption — in-flight floating-point work is either
    finished and delivered or not started, so determinism guarantees
    (same seed, same budget, same bits) survive deadline enforcement."""


class Deadline:
    """An absolute expiry on a monotonic clock.

    Built once at admission from a relative latency budget
    (``Deadline(deadline_ms)``), then carried with the request and
    checked wherever work could be abandoned.  Comparisons and
    :meth:`latest` let shared sweeps (one sampling pass serving a whole
    microbatch subgroup) run under the *least* restrictive member
    deadline: the sweep aborts only once nobody could use its result.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(
        self,
        deadline_ms: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not (isinstance(deadline_ms, (int, float))
                and math.isfinite(deadline_ms) and deadline_ms > 0):
            raise ValueError(
                f"deadline_ms must be a positive finite number, got "
                f"{deadline_ms!r}"
            )
        self._clock = clock
        self._expires_at = clock() + deadline_ms / 1e3

    @property
    def expires_at(self) -> float:
        """The absolute expiry, in the clock's seconds."""
        return self._expires_at

    def remaining_ms(self) -> float:
        """Milliseconds until expiry (negative once expired)."""
        return (self._expires_at - self._clock()) * 1e3

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def expire(self) -> None:
        """Force immediate expiry (cooperative cancellation).

        Hedged requests use this to retire the losing attempt: the next
        cooperative :meth:`check` the loser runs raises
        :class:`DeadlineExceeded`, so the abandoned work stops at a
        determinism-safe boundary instead of being preempted mid-float.
        Idempotent; never un-expires.
        """
        self._expires_at = min(self._expires_at, self._clock())

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed.

        ``context`` names the boundary that ran the check (``"sampling
        wave"``, ``"compilation"``), so a served error says where the
        time went.
        """
        if self.expired():
            where = f" at {context}" if context else ""
            raise DeadlineExceeded(
                f"deadline exceeded{where} "
                f"({-self.remaining_ms():.3f} ms past expiry)"
            )

    @staticmethod
    def latest(deadlines: Iterable["Deadline"]) -> "Deadline":
        """The member with the latest expiry (for shared sweeps).

        :raises ValueError: on an empty iterable.
        """
        chosen = None
        for deadline in deadlines:
            if chosen is None or deadline._expires_at > chosen._expires_at:
                chosen = deadline
        if chosen is None:
            raise ValueError("latest() of no deadlines")
        return chosen

    def __repr__(self) -> str:
        return f"Deadline(remaining_ms={self.remaining_ms():.3f})"

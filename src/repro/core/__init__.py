"""Core combinatorics: Boolean functions, the Euler characteristic, the
± transformation, fragmentability, canonical forms and the named functions
of the paper."""

from repro.core.boolean_function import BooleanFunction
from repro.core.formula import FormulaSyntaxError, parse, to_formula
from repro.core.euler import (
    achievable_monotone_euler_values,
    bjorner_kalai_maximizer,
    count_zero_euler_functions,
    euler_characteristic,
    max_monotone_euler,
    monotone_euler_extremes,
    monotone_function_with_euler,
    upper_slice,
)
from repro.core.fragmentation import (
    Fragmentation,
    NegOrTemplate,
    fragment,
    fragment_via_matching,
    is_fragmentable,
    pair_function,
)
from repro.core.transformation import (
    Step,
    apply_step,
    apply_steps,
    are_equivalent,
    canonicalize,
    chainkill_steps,
    chainswap_steps,
    fetch_pair,
    invert_steps,
    is_canonical_form,
    minimize_to_even,
    reduce_to_bottom,
    transform,
    verify_steps,
)

__all__ = [
    "BooleanFunction",
    "Fragmentation",
    "NegOrTemplate",
    "Step",
    "achievable_monotone_euler_values",
    "apply_step",
    "apply_steps",
    "are_equivalent",
    "bjorner_kalai_maximizer",
    "canonicalize",
    "chainkill_steps",
    "chainswap_steps",
    "count_zero_euler_functions",
    "euler_characteristic",
    "FormulaSyntaxError",
    "parse",
    "to_formula",
    "fetch_pair",
    "fragment",
    "fragment_via_matching",
    "invert_steps",
    "is_canonical_form",
    "is_fragmentable",
    "max_monotone_euler",
    "minimize_to_even",
    "monotone_euler_extremes",
    "monotone_function_with_euler",
    "pair_function",
    "reduce_to_bottom",
    "transform",
    "upper_slice",
    "verify_steps",
]

"""Fragmentable Boolean functions and ¬-∨-templates (Section 4).

Definition 4.1: a ¬-∨-template is a circuit whose internal nodes are ¬- or
∨-gates and whose leaves are *holes*; substituting Boolean functions into
the holes yields a "hybrid" circuit, called deterministic when every ∨-gate
is (its children capture pairwise-disjoint functions).  Definition 4.2:
``phi`` is *fragmentable* when some template filled with **degenerate**
functions is deterministic and equivalent to ``phi``.

Proposition 5.8 constructs such a template from any ≃-derivation
``⊥ = phi_0 ~> ... ~> phi_n = phi``:

* a ``+(nu, l)`` step appends ``T_i = T_{i-1} ∨ hole_i``;
* a ``-(nu, l)`` step appends ``T_i = ¬(¬T_{i-1} ∨ hole_i)``;

with leaf function ``psi_i`` satisfied exactly by ``{nu, nu^(l)}`` (which
is degenerate: it does not depend on ``l``).  Combined with Proposition 5.9
(``e = 0 ⇒ phi ≃ ⊥``) this proves Proposition 5.1 / Corollary 5.4:
**fragmentable ⇔ zero Euler characteristic**, and :func:`fragment` below is
the computable witness promised by Corollary 5.12.

Section 7's d-DNNF refinement is also here: when the subgraph of
``G_V[phi]`` induced by the satisfying valuations has a perfect matching
(``phi ∼−* ⊥``), :func:`fragment_via_matching` produces a *negation-free*
(pure ∨) template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core import valuations as _val
from repro.core.boolean_function import BooleanFunction
from repro.core.transformation import (
    Step,
    invert_steps,
    reduce_to_bottom,
)


@dataclass(frozen=True)
class Hole:
    """A template leaf, holding the index of the function to substitute."""

    index: int


@dataclass(frozen=True)
class OrNode:
    """A template ∨-gate."""

    children: tuple["TemplateNode", ...]


@dataclass(frozen=True)
class NotNode:
    """A template ¬-gate."""

    child: "TemplateNode"


TemplateNode = Union[Hole, OrNode, NotNode]


class NegOrTemplate:
    """A ¬-∨-template (Definition 4.1) with ``num_holes`` holes.

    A template consisting of a single hole is allowed (and is how the base
    case ``⊥`` of Proposition 5.8 is represented).
    """

    def __init__(self, root: TemplateNode, num_holes: int):
        self.root = root
        self.num_holes = num_holes
        seen = _collect_holes(root)
        if seen != set(range(num_holes)):
            raise ValueError(
                f"template must use holes 0..{num_holes - 1} exactly; "
                f"found {sorted(seen)}"
            )

    @classmethod
    def single_hole(cls) -> "NegOrTemplate":
        """The one-leaf template (also the root), per Definition 4.1."""
        return cls(Hole(0), 1)

    def substitute(self, leaves: list[BooleanFunction]) -> BooleanFunction:
        """``T[phi_0, ..., phi_n]``: the Boolean function of the hybrid
        circuit obtained by filling the holes."""
        if len(leaves) != self.num_holes:
            raise ValueError(
                f"expected {self.num_holes} leaf functions, got {len(leaves)}"
            )
        return _substitute(self.root, leaves)

    def is_deterministic_with(self, leaves: list[BooleanFunction]) -> bool:
        """Whether every ∨-gate of ``T[leaves]`` is deterministic — the
        condition of Definition 4.1 (checked semantically, gate by gate)."""
        if len(leaves) != self.num_holes:
            raise ValueError(
                f"expected {self.num_holes} leaf functions, got {len(leaves)}"
            )
        try:
            _check_deterministic(self.root, leaves)
        except _NotDeterministic:
            return False
        return True

    def count_gates(self) -> dict[str, int]:
        """Numbers of ∨-gates, ¬-gates and holes (for the benches)."""
        counts = {"or": 0, "not": 0, "hole": 0}
        _count(self.root, counts)
        return counts

    def __repr__(self) -> str:
        gates = self.count_gates()
        return (
            f"NegOrTemplate({self.num_holes} holes, "
            f"{gates['or']} ∨, {gates['not']} ¬)"
        )


class _NotDeterministic(Exception):
    pass


def _collect_holes(node: TemplateNode) -> set[int]:
    if isinstance(node, Hole):
        return {node.index}
    if isinstance(node, NotNode):
        return _collect_holes(node.child)
    result: set[int] = set()
    for child in node.children:
        result |= _collect_holes(child)
    return result


def _substitute(
    node: TemplateNode, leaves: list[BooleanFunction]
) -> BooleanFunction:
    if isinstance(node, Hole):
        return leaves[node.index]
    if isinstance(node, NotNode):
        return ~_substitute(node.child, leaves)
    children = [_substitute(child, leaves) for child in node.children]
    result = children[0]
    for child in children[1:]:
        result = result | child
    return result


def _check_deterministic(
    node: TemplateNode, leaves: list[BooleanFunction]
) -> BooleanFunction:
    if isinstance(node, Hole):
        return leaves[node.index]
    if isinstance(node, NotNode):
        return ~_check_deterministic(node.child, leaves)
    children = [_check_deterministic(child, leaves) for child in node.children]
    for i, first in enumerate(children):
        for second in children[i + 1 :]:
            if not first.is_disjoint(second):
                raise _NotDeterministic
    result = children[0]
    for child in children[1:]:
        result = result | child
    return result


def _count(node: TemplateNode, counts: dict[str, int]) -> None:
    if isinstance(node, Hole):
        counts["hole"] += 1
    elif isinstance(node, NotNode):
        counts["not"] += 1
        _count(node.child, counts)
    else:
        counts["or"] += 1
        for child in node.children:
            _count(child, counts)


@dataclass
class Fragmentation:
    """A witness that ``phi`` is fragmentable: a template plus degenerate
    leaf functions such that the substitution is deterministic and equals
    ``phi`` (Definition 4.2).  ``verify`` re-checks all three conditions."""

    template: NegOrTemplate
    leaves: list[BooleanFunction]
    phi: BooleanFunction

    def verify(self) -> bool:
        """Degenerate leaves + deterministic ∨-gates + correct function."""
        if any(leaf.is_nondegenerate() for leaf in self.leaves):
            return False
        if not self.template.is_deterministic_with(self.leaves):
            return False
        return self.template.substitute(self.leaves) == self.phi


def pair_function(nvars: int, step: Step) -> BooleanFunction:
    """The leaf ``psi_i`` of Proposition 5.8: satisfied exactly by the two
    adjacent valuations of the step — degenerate because it does not depend
    on the flipped variable."""
    first, second = step.pair
    return BooleanFunction.from_satisfying(nvars, [first, second])


def fragmentation_from_steps(
    phi: BooleanFunction, upward_steps: list[Step]
) -> Fragmentation:
    """Proposition 5.8: replay a ≃-derivation ``⊥ ~> ... ~> phi`` into a
    template with degenerate leaves.

    Hole 0 carries ``⊥`` itself (a degenerate function); hole ``i + 1``
    carries the pair function of step ``i``.
    """
    template_root: TemplateNode = Hole(0)
    leaves: list[BooleanFunction] = [BooleanFunction.bottom(phi.nvars)]
    for step in upward_steps:
        hole = Hole(len(leaves))
        leaves.append(pair_function(phi.nvars, step))
        if step.sign > 0:
            template_root = OrNode((template_root, hole))
        else:
            template_root = NotNode(OrNode((NotNode(template_root), hole)))
    fragmentation = Fragmentation(
        NegOrTemplate(template_root, len(leaves)), leaves, phi
    )
    if not fragmentation.verify():
        raise AssertionError(
            "internal error: fragmentation failed verification"
        )
    return fragmentation


def fragment(phi: BooleanFunction) -> Fragmentation:
    """Corollary 5.12: compute a fragmentation witness for any ``phi`` with
    ``e(phi) = 0``.

    Short-circuits for degenerate functions (single-hole template, as noted
    after Definition 4.2) and otherwise replays the inverse of
    :func:`repro.core.transformation.reduce_to_bottom`.

    :raises ValueError: if ``e(phi) != 0`` (by Proposition 4.6 no witness
        exists).
    """
    if phi.euler_characteristic() != 0:
        raise ValueError(
            "only functions with zero Euler characteristic are fragmentable "
            "(Corollary 5.4)"
        )
    if phi.is_degenerate():
        return Fragmentation(NegOrTemplate.single_hole(), [phi], phi)
    downward = reduce_to_bottom(phi)
    return fragmentation_from_steps(phi, invert_steps(downward))


def is_fragmentable(phi: BooleanFunction) -> bool:
    """Corollary 5.4: fragmentable ⇔ zero Euler characteristic.  (The
    forward implication is Proposition 4.6; the backward one is realized
    constructively by :func:`fragment`.)"""
    return phi.euler_characteristic() == 0


def fragment_via_matching(
    phi: BooleanFunction, matching: list[tuple[int, int]]
) -> Fragmentation:
    """Section 7 (``phi ∼−* ⊥``): when the satisfying valuations decompose
    into adjacent pairs — a perfect matching of the colored subgraph of
    ``G_V[phi]`` — the template is a pure disjunction with no ¬-gates, so
    the compiled lineage is a d-DNNF.

    :param matching: adjacent pairs of valuation masks covering ``SAT(phi)``
        exactly once each.
    :raises ValueError: if the pairs do not tile ``SAT(phi)``.
    """
    covered: set[int] = set()
    leaves: list[BooleanFunction] = []
    for first, second in matching:
        if (first ^ second).bit_count() != 1:
            raise ValueError(f"pair ({first:#b}, {second:#b}) is not adjacent")
        if not (phi(first) and phi(second)):
            raise ValueError("matching pairs must be satisfying valuations")
        if first in covered or second in covered:
            raise ValueError("matching pairs overlap")
        covered.update((first, second))
        leaves.append(BooleanFunction.from_satisfying(phi.nvars, [first, second]))
    if covered != set(phi.satisfying_masks()):
        raise ValueError("matching does not cover SAT(phi) exactly")
    if not leaves:
        return Fragmentation(NegOrTemplate.single_hole(), [phi], phi)
    root: TemplateNode = Hole(0)
    for index in range(1, len(leaves)):
        root = OrNode((root, Hole(index)))
    fragmentation = Fragmentation(NegOrTemplate(root, len(leaves)), leaves, phi)
    if not fragmentation.verify():
        raise AssertionError("internal error: matching fragmentation invalid")
    return fragmentation

"""The Euler characteristic of a Boolean function and related facts.

Definition 2.2 of the paper defines ``e(phi) = sum_{nu |= phi} (-1)^|nu|``.
The paper's safety criterion for H+-queries (Corollary 3.9) is ``e(phi) = 0``,
and its main theorem says every H-query with ``e(phi) = 0`` compiles to d-D
circuits in polynomial time.  This module gathers the characteristic itself
plus the algebraic identities the proofs lean on (Proposition 4.6), the exact
count of zero-Euler functions (footnote 6), and the extremal values over
monotone functions needed by Proposition 6.4 / Theorem C.2.
"""

from __future__ import annotations

import math

from repro.core.boolean_function import BooleanFunction


def euler_characteristic(phi: BooleanFunction) -> int:
    """``e(phi)``; convenience wrapper around the method."""
    return phi.euler_characteristic()


def euler_of_negation(phi: BooleanFunction) -> int:
    """``e(¬phi) = -e(phi)`` (used in Proposition 4.6).

    This holds because ``e(⊤) = sum_nu (-1)^|nu| = 0`` for nvars >= 1, so the
    models of ``phi`` and ``¬phi`` have opposite signed counts.
    """
    return (~phi).euler_characteristic()


def euler_of_disjoint_or(phi: BooleanFunction, psi: BooleanFunction) -> int:
    """``e(phi ∨ psi) = e(phi) + e(psi)`` whenever ``phi`` and ``psi`` are
    disjoint (Proposition 4.6, fact (3)).

    :raises ValueError: if the two functions are not disjoint.
    """
    if not phi.is_disjoint(psi):
        raise ValueError("euler_of_disjoint_or requires disjoint functions")
    return (phi | psi).euler_characteristic()


def count_zero_euler_functions(k: int) -> int:
    """Footnote 6: the number of Boolean functions on ``V = {0..k}`` with
    ``e(phi) = 0`` is ``sum_j binom(2^k, j)^2 = binom(2^{k+1}, 2^k)``.

    A function chooses independently which even-size valuations and which
    odd-size valuations to satisfy; there are ``2^k`` of each kind, and
    ``e = 0`` iff the two chosen counts coincide (Vandermonde collapses the
    sum of squared binomials to the central binomial coefficient).
    """
    if k < 1:
        raise ValueError(f"the paper fixes k >= 1, got {k}")
    half = 1 << k
    return math.comb(2 * half, half)


def count_zero_euler_functions_by_enumeration(k: int) -> int:
    """Brute-force companion of :func:`count_zero_euler_functions` used by
    tests and the Figure-1 bench: enumerate all ``2^{2^{k+1}}`` functions and
    count the ones with zero Euler characteristic.  Only sensible for
    ``k <= 3``."""
    nvars = k + 1
    if nvars > 4:
        raise ValueError("exhaustive enumeration is limited to k <= 3")
    count = 0
    for table in range(1 << (1 << nvars)):
        if BooleanFunction(nvars, table).euler_characteristic() == 0:
            count += 1
    return count


def upper_slice(k: int, threshold: int) -> BooleanFunction:
    """The monotone function satisfied by all valuations of size at least
    ``threshold`` (the shape of the Björner–Kalai maximizers, Theorem C.2)."""
    n = k + 1
    return BooleanFunction.from_callable(n, lambda s: len(s) >= threshold)


def slice_euler_value(k: int, threshold: int) -> int:
    """``e`` of the upper slice ``{nu : |nu| >= threshold}`` in closed form.

    The alternating partial sum ``sum_{s >= t} (-1)^s binom(n, s)`` telescopes
    to ``(-1)^t binom(n - 1, t - 1)`` for ``t >= 1`` (and to 0 for ``t = 0``),
    with ``n = k + 1`` variables.
    """
    n = k + 1
    if threshold <= 0:
        return 0
    if threshold > n:
        return 0
    sign = -1 if threshold & 1 else 1
    return sign * math.comb(n - 1, threshold - 1)


def max_monotone_euler(k: int) -> int:
    """Maximum of ``|e(phi)|`` over monotone ``phi`` on ``V = {0..k}``.

    By Theorem C.2 (Björner–Kalai [7]) the maximizers are upper slices, so
    the value is the largest ``|slice_euler_value|``; tests verify this
    against exhaustive enumeration of all monotone functions for small k.
    """
    if k < 1:
        raise ValueError(f"the paper fixes k >= 1, got {k}")
    n = k + 1
    return max(abs(slice_euler_value(k, t)) for t in range(n + 1))


def bjorner_kalai_maximizer(k: int) -> BooleanFunction:
    """A monotone function achieving the maximal ``|e|`` (Theorem C.2)."""
    n = k + 1
    best_threshold = max(
        range(n + 1), key=lambda t: abs(slice_euler_value(k, t))
    )
    return upper_slice(k, best_threshold)


def monotone_euler_extremes(k: int) -> tuple[int, int]:
    """``(min, max)`` of the *signed* ``e(phi)`` over monotone ``phi``.

    Computed over the upper slices, whose signed values are
    ``(-1)^t binom(k, t - 1)``; note that the signed extremes need not be
    symmetric.  Tests cross-check this against exhaustive enumeration of all
    monotone functions for ``k <= 4`` (Dedekind-ideal enumeration).
    """
    if k < 1:
        raise ValueError(f"the paper fixes k >= 1, got {k}")
    n = k + 1
    values = [slice_euler_value(k, t) for t in range(n + 1)]
    return (min(values), max(values))


def achievable_monotone_euler_values(k: int) -> range:
    """Every integer in ``[min, max]`` of :func:`monotone_euler_extremes` is
    the Euler characteristic of some monotone function (Lemma C.1: peel
    maximal satisfying valuations off an extremal function one at a time;
    each removal changes ``e`` by exactly one and preserves monotonicity, and
    the walk passes 0 at ``⊥``).  Returned as an inclusive integer range.
    """
    low, high = monotone_euler_extremes(k)
    return range(low, high + 1)


def monotone_function_with_euler(k: int, target: int) -> BooleanFunction:
    """Construct a monotone function on ``{0..k}`` whose Euler characteristic
    is exactly ``target`` (the constructive content of Lemma C.1).

    Starting from an extremal upper slice of the right sign, repeatedly
    remove one *maximal* satisfying valuation (which keeps the function
    monotone and moves ``e`` by exactly ±1) until the target is reached.

    :raises ValueError: if ``target`` is outside the achievable range.
    """
    low, high = monotone_euler_extremes(k)
    if not low <= target <= high:
        raise ValueError(
            f"e = {target} is not achievable by a monotone function for k = {k}"
        )
    n = k + 1
    if target == 0:
        return BooleanFunction.bottom(n)
    start_threshold = min(
        (t for t in range(n + 1)
         if (slice_euler_value(k, t) >= target > 0)
         or (slice_euler_value(k, t) <= target < 0)),
        key=lambda t: abs(slice_euler_value(k, t)),
    )
    phi = upper_slice(k, start_threshold)
    # Peel inclusion-minimal models one at a time (Lemma C.1; the paper's
    # "maximal size" is phrased in the simplicial-complex convention, which
    # is the complement of ours).  Removing a minimal model keeps the model
    # set up-closed, i.e. the function monotone, and moves e by exactly +-1;
    # the walk ends at e(⊥) = 0, so by the discrete intermediate value
    # property it must pass through every integer between 0 and the starting
    # value -- in particular through the target.
    while phi.euler_characteristic() != target:
        chosen = _smallest_model(phi)
        phi = BooleanFunction(n, phi.table & ~(1 << chosen))
    return phi


def _smallest_model(phi: BooleanFunction) -> int:
    """A satisfying valuation of minimal size (hence inclusion-minimal, so
    its removal preserves monotonicity)."""
    return min(phi.satisfying_masks(), key=lambda m: (m.bit_count(), m))

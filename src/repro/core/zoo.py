"""The paper's named Boolean functions, plus searchers for the figure
witnesses whose exact colorings the text does not pin down.

* :func:`phi_9` — Example 3.3: the function behind Dalvi–Suciu's query
  ``q_9``, the simplest safe H+-query needing Möbius inversion.
* :func:`phi_max_euler` — Section 6.1: all even-size valuations,
  ``e = 2^k`` (a value unreachable by monotone functions).
* :func:`find_phi_no_pm` — Figure 5's ``phi_noPM`` (k = 4, non-monotone):
  ``e = 0`` yet *neither* induced subgraph has a perfect matching, with the
  paper's stated witnesses: colored node ``{3,4}`` isolated among colored
  nodes and uncolored node ``{0,3,4}`` isolated among uncolored ones.  The
  text dump loses the figure's colors, so we search for a function with
  exactly these properties (see DESIGN.md §3).
* :func:`find_phi_one_neg` — Figure 7's ``phi_oneneg`` (k = 5, monotone):
  ``e = 0``, the colored subgraph has no perfect matching *because the top
  valuation would have to be matched with both 01234 and 01345*, while the
  uncolored subgraph has one.  Again found by constraint search.
"""

from __future__ import annotations

import itertools
import random

from repro.core import valuations as _val
from repro.core.boolean_function import BooleanFunction
from repro.matching.graph import ColoredGraph
from repro.matching.perfect_matching import has_perfect_matching


def phi_9() -> BooleanFunction:
    """Example 3.3: ``(2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2)`` on ``V={0,1,2,3}``."""
    return BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}, {0, 1, 2}])


def phi_max_euler(k: int) -> BooleanFunction:
    """Section 6.1's ``phi_maxEuler``: satisfied exactly by the even-size
    valuations; ``e = 2^k``, beyond any monotone function's range — the
    witness that Proposition 6.4 does not cover all of H."""
    return BooleanFunction(
        k + 1, _val.even_parity_table(k + 1)
    )


# ----------------------------------------------------------------------
# Figure 5: phi_noPM (k = 4, non-monotone)
# ----------------------------------------------------------------------


def phi_no_pm_constraints() -> tuple[int, list[int], list[int]]:
    """The fixed part of the Figure-5 search, from the paper's text:

    * ``{3,4}`` is satisfying but all its neighbors are not (so it is
      isolated in the colored subgraph);
    * ``{0,3,4}`` is non-satisfying but all its *other* neighbors are
      satisfying (so it is isolated in the uncolored subgraph).

    Returns ``(nvars, forced_true_masks, forced_false_masks)``.
    """
    nvars = 5
    pair_34 = _val.set_to_mask({3, 4})
    node_034 = _val.set_to_mask({0, 3, 4})
    forced_true = [pair_34]
    forced_false = [node_034]
    # Neighbors of {3,4} other than {0,3,4} must be false; {0,3,4} is
    # already forced false.
    for var in range(nvars):
        neighbor = _val.flip(pair_34, var)
        if neighbor != node_034 and neighbor not in forced_false:
            forced_false.append(neighbor)
    # Neighbors of {0,3,4} other than {3,4} must be true; {3,4} is already
    # forced true.
    for var in range(nvars):
        neighbor = _val.flip(node_034, var)
        if neighbor != pair_34 and neighbor not in forced_true:
            forced_true.append(neighbor)
    return nvars, forced_true, forced_false


def is_phi_no_pm_witness(phi: BooleanFunction) -> bool:
    """Whether ``phi`` has every property Figure 5 claims for
    ``phi_noPM``."""
    if phi.nvars != 5 or phi.euler_characteristic() != 0:
        return False
    colored_graph = ColoredGraph(phi)
    pair_34 = _val.set_to_mask({3, 4})
    node_034 = _val.set_to_mask({0, 3, 4})
    if pair_34 not in colored_graph.isolated_colored_nodes():
        return False
    if node_034 not in colored_graph.isolated_uncolored_nodes():
        return False
    if has_perfect_matching(colored_graph.colored_subgraph()):
        return False
    if has_perfect_matching(colored_graph.uncolored_subgraph()):
        return False
    return True


def find_phi_no_pm(seed: int = 0, attempts: int = 200_000) -> BooleanFunction:
    """Search for a Figure-5 witness ``phi_noPM``.

    The two isolation constraints pin 12 of the 32 valuations; the
    remaining 20 are filled randomly subject to ``e = 0`` (balance the
    even/odd model counts) until both induced subgraphs lack a perfect
    matching.  With the forced isolated nodes, most balanced completions
    qualify, so the search succeeds quickly.

    :raises RuntimeError: if no witness is found within ``attempts``.
    """
    nvars, forced_true, forced_false = phi_no_pm_constraints()
    rng = random.Random(seed)
    fixed = set(forced_true) | set(forced_false)
    free = [m for m in range(1 << nvars) if m not in fixed]
    base_table = 0
    for mask in forced_true:
        base_table |= 1 << mask
    base_euler = sum(_val.parity(m) for m in forced_true)
    for _ in range(attempts):
        chosen = [m for m in free if rng.random() < 0.5]
        euler = base_euler + sum(_val.parity(m) for m in chosen)
        if euler != 0:
            continue
        table = base_table
        for mask in chosen:
            table |= 1 << mask
        phi = BooleanFunction(nvars, table)
        if is_phi_no_pm_witness(phi):
            return phi
    raise RuntimeError("no phi_noPM witness found; increase attempts")


# ----------------------------------------------------------------------
# Figure 7: phi_oneneg (k = 5, monotone)
# ----------------------------------------------------------------------


def is_phi_one_neg_witness(phi: BooleanFunction) -> bool:
    """Whether ``phi`` has every property Figure 7 claims for
    ``phi_oneneg``: monotone, ``e = 0``, colored subgraph without a perfect
    matching for the stated reason (both ``{0,1,2,3,4}`` and
    ``{0,1,3,4,5}`` are colored with the top valuation as their only
    colored neighbor), uncolored subgraph with one."""
    if phi.nvars != 6 or phi.euler_characteristic() != 0:
        return False
    if not phi.is_monotone():
        return False
    top = (1 << 6) - 1
    node_a = _val.set_to_mask({0, 1, 2, 3, 4})
    node_b = _val.set_to_mask({0, 1, 3, 4, 5})
    if not (phi(top) and phi(node_a) and phi(node_b)):
        return False
    for node in (node_a, node_b):
        for var in range(6):
            neighbor = _val.flip(node, var)
            if neighbor != top and phi(neighbor):
                return False
    colored_graph = ColoredGraph(phi)
    if has_perfect_matching(colored_graph.colored_subgraph()):
        return False
    if not has_perfect_matching(colored_graph.uncolored_subgraph()):
        return False
    return True


def find_phi_one_neg(max_extra: int = 6) -> BooleanFunction:
    """Search for a Figure-7 witness ``phi_oneneg``.

    By the forced structure, ``SAT`` contains the up-closures of the
    minimal models ``{0,1,2,3,4}`` and ``{0,1,3,4,5}`` and of some extra
    antichain of valuations incomparable with both and not below their
    size-4 shadows.  We sweep antichains of up to ``max_extra`` extra
    generators in increasing total size, checking ``e = 0`` and the
    matching facts exactly.  The first hit is returned (the paper says the
    smallest such function has these two blocked size-5 models).

    :raises RuntimeError: if no witness exists within the sweep budget.
    """
    nvars = 6
    node_a = _val.set_to_mask({0, 1, 2, 3, 4})
    node_b = _val.set_to_mask({0, 1, 3, 4, 5})
    base = BooleanFunction.from_satisfying(
        nvars, [node_a, node_b]
    ).up_closure()
    # Candidate extra generators: valuations that are not supersets of the
    # forbidden shadows — i.e. adding them must not color any size-4 subset
    # of node_a or node_b, so candidates must not be subsets of node_a or
    # node_b, and their up-closure must avoid those size-4 subsets, which
    # holds iff the candidate is not below any of them.
    forbidden: set[int] = set()
    for node in (node_a, node_b):
        for var in range(6):
            neighbor = _val.flip(node, var)
            if neighbor != (1 << 6) - 1:
                forbidden.add(neighbor)

    def closure_ok(generators: tuple[int, ...]) -> BooleanFunction | None:
        phi = BooleanFunction.from_satisfying(
            nvars, [node_a, node_b, *generators]
        ).up_closure()
        if any(phi(bad) for bad in forbidden):
            return None
        return phi

    candidates = [
        m
        for m in range(1 << nvars)
        if m not in (node_a, node_b)
        and not any(m & bad == m for bad in forbidden)  # not ⊆ a shadow
    ]
    # Sweep by number of extra generators, then lexicographically.
    for extra in range(0, max_extra + 1):
        for generators in itertools.combinations(candidates, extra):
            phi = closure_ok(generators)
            if phi is None:
                continue
            if phi.euler_characteristic() != 0:
                continue
            if is_phi_one_neg_witness(phi):
                return phi
    del base
    raise RuntimeError("no phi_oneneg witness found within the sweep budget")

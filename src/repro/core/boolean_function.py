"""Boolean functions on the fixed variable set ``V = {0, ..., k}``.

This module implements the paper's central combinatorial object: a Boolean
function ``phi : 2^V -> {False, True}`` (Section 2).  A function is stored as
an immutable *truth table bitmask*: an ``int`` with ``2^nvars`` meaningful
bits, where bit ``m`` is set iff the valuation encoded by mask ``m``
satisfies the function.  This makes every core operation (conjunction,
disjunction, negation, cofactors, dependence tests, Euler characteristic)
a handful of machine-word bit operations even for ``k`` around 16.

The public entry point is :class:`BooleanFunction`.  Key notions from the
paper implemented here:

* ``DEP(phi)`` and (non)degeneracy (Definition 2.1);
* the Euler characteristic ``e(phi) = sum_{nu |= phi} (-1)^|nu|``
  (Definition 2.2);
* monotonicity, the unique minimized DNF ``phi_DNF`` (prime implicants /
  minimal models) and the unique minimized CNF ``phi_CNF`` (prime
  implicates, computed as minimal transversals of the prime implicants) for
  monotone functions (Section 2).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.core import valuations as _val


class BooleanFunction:
    """An immutable Boolean function on variables ``{0, ..., nvars - 1}``.

    Instances are hashable and compared by (nvars, truth table).  All
    operators return new instances; the two operands of a binary operator
    must be declared on the same number of variables.

    >>> x0, x1 = BooleanFunction.variable(0, 2), BooleanFunction.variable(1, 2)
    >>> f = x0 | x1
    >>> f.sat_count()
    3
    >>> f.euler_characteristic()
    -1
    """

    __slots__ = ("_nvars", "_table", "_memo")

    def __init__(self, nvars: int, table: int):
        if nvars < 0:
            raise ValueError(f"nvars must be non-negative, got {nvars}")
        size = 1 << nvars
        full = (1 << size) - 1
        if table < 0 or table > full:
            raise ValueError(
                f"truth table {table:#x} out of range for {nvars} variables"
            )
        self._nvars = nvars
        self._table = table
        #: Cache for derived immutable facts (Euler characteristic,
        #: dependency set, monotonicity, minimized DNF) — the function
        #: itself never changes, so these are computed at most once.
        self._memo: dict[str, object] = {}

    def _cached(self, key: str, compute: Callable[[], object]):
        """Memoize a derived fact under ``key`` (values may be falsy but
        are never ``None``)."""
        value = self._memo.get(key)
        if value is None:
            value = self._memo[key] = compute()
        return value

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def bottom(cls, nvars: int) -> "BooleanFunction":
        """The function ``⊥`` mapping every valuation to False."""
        return cls(nvars, 0)

    @classmethod
    def top(cls, nvars: int) -> "BooleanFunction":
        """The function ``⊤`` mapping every valuation to True."""
        return cls(nvars, (1 << (1 << nvars)) - 1)

    @classmethod
    def variable(cls, var: int, nvars: int) -> "BooleanFunction":
        """The projection function of variable ``var``."""
        if not 0 <= var < nvars:
            raise ValueError(f"variable {var} out of range for {nvars} variables")
        table = 0
        for mask in range(1 << nvars):
            if mask >> var & 1:
                table |= 1 << mask
        return cls(nvars, table)

    @classmethod
    def from_satisfying(
        cls, nvars: int, satisfying: Iterable[int | Iterable[int]]
    ) -> "BooleanFunction":
        """Build a function from its set of satisfying valuations.

        Valuations may be given as int masks or as iterables of variables.

        >>> f = BooleanFunction.from_satisfying(2, [{0}, {0, 1}])
        >>> sorted(map(sorted, f.satisfying_sets()))
        [[0], [0, 1]]
        """
        table = 0
        limit = 1 << nvars
        for valuation in satisfying:
            mask = _val.as_mask(valuation)
            if mask >= limit:
                raise ValueError(
                    f"valuation {mask:#x} mentions variables outside {{0..{nvars - 1}}}"
                )
            table |= 1 << mask
        return cls(nvars, table)

    @classmethod
    def from_callable(
        cls, nvars: int, predicate: Callable[[frozenset[int]], bool]
    ) -> "BooleanFunction":
        """Tabulate ``predicate`` over all valuations (given as frozensets)."""
        table = 0
        for mask in range(1 << nvars):
            if predicate(_val.mask_to_set(mask)):
                table |= 1 << mask
        return cls(nvars, table)

    @classmethod
    def from_dnf(
        cls, nvars: int, clauses: Iterable[Iterable[int]]
    ) -> "BooleanFunction":
        """Monotone DNF: each clause is a set of variables, the function is
        the disjunction of their conjunctions.

        >>> f = BooleanFunction.from_dnf(3, [{0, 1}, {2}])
        >>> f.is_monotone()
        True
        """
        result = cls.bottom(nvars)
        for clause in clauses:
            term = cls.top(nvars)
            for var in clause:
                term &= cls.variable(var, nvars)
            result |= term
        return result

    @classmethod
    def from_cnf(
        cls, nvars: int, clauses: Iterable[Iterable[int]]
    ) -> "BooleanFunction":
        """Monotone CNF: each clause is a set of variables, the function is
        the conjunction of their disjunctions.

        >>> phi = BooleanFunction.from_cnf(4, [{2, 3}, {0, 3}, {1, 3}, {0, 1, 2}])
        >>> phi.euler_characteristic()
        0
        """
        result = cls.top(nvars)
        for clause in clauses:
            disjunct = cls.bottom(nvars)
            for var in clause:
                disjunct |= cls.variable(var, nvars)
            result &= disjunct
        return result

    @classmethod
    def exactly(cls, nvars: int, valuation: int | Iterable[int]) -> "BooleanFunction":
        """The function ``phi_nu`` satisfied only by the given valuation
        (used throughout Appendix B.1)."""
        return cls.from_satisfying(nvars, [valuation])

    @classmethod
    def random(
        cls, nvars: int, rng: random.Random, density: float = 0.5
    ) -> "BooleanFunction":
        """A random function where each valuation independently satisfies
        with probability ``density`` (for tests and property checks)."""
        table = 0
        for mask in range(1 << nvars):
            if rng.random() < density:
                table |= 1 << mask
        return cls(nvars, table)

    @classmethod
    def random_monotone(cls, nvars: int, rng: random.Random) -> "BooleanFunction":
        """A random monotone function, built as the up-closure of a random
        set of generator valuations."""
        generators = [
            mask for mask in range(1 << nvars) if rng.random() < 0.5 / (nvars + 1)
        ]
        if rng.random() < 0.5:
            generators.append(rng.randrange(1 << nvars))
        return cls.from_satisfying(nvars, generators).up_closure()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nvars(self) -> int:
        """Number of variables of the ambient set ``V``."""
        return self._nvars

    @property
    def table(self) -> int:
        """The raw truth-table bitmask."""
        return self._table

    def __call__(self, valuation: int | Iterable[int]) -> bool:
        """Evaluate the function on a valuation (``nu |= phi``)."""
        mask = _val.as_mask(valuation)
        if mask >= 1 << self._nvars:
            raise ValueError(
                f"valuation {mask:#x} mentions variables outside the domain"
            )
        return bool(self._table >> mask & 1)

    def satisfying_masks(self) -> Iterator[int]:
        """Iterate over satisfying valuations as int masks, ascending."""
        table = self._table
        while table:
            low = table & -table
            yield low.bit_length() - 1
            table ^= low

    def satisfying_sets(self) -> Iterator[frozenset[int]]:
        """Iterate over ``SAT(phi)`` as frozensets of variables."""
        for mask in self.satisfying_masks():
            yield _val.mask_to_set(mask)

    def sat_count(self) -> int:
        """``#phi``: the number of satisfying valuations."""
        return self._table.bit_count()

    def is_bottom(self) -> bool:
        """Whether the function is ``⊥``."""
        return self._table == 0

    def is_top(self) -> bool:
        """Whether the function is ``⊤``."""
        return self._table == (1 << (1 << self._nvars)) - 1

    # ------------------------------------------------------------------
    # Logical operations
    # ------------------------------------------------------------------

    def _check_same_domain(self, other: "BooleanFunction") -> None:
        if not isinstance(other, BooleanFunction):
            raise TypeError(f"expected BooleanFunction, got {type(other).__name__}")
        if other._nvars != self._nvars:
            raise ValueError(
                f"mismatched variable sets: {self._nvars} vs {other._nvars}"
            )

    def __and__(self, other: "BooleanFunction") -> "BooleanFunction":
        self._check_same_domain(other)
        return BooleanFunction(self._nvars, self._table & other._table)

    def __or__(self, other: "BooleanFunction") -> "BooleanFunction":
        self._check_same_domain(other)
        return BooleanFunction(self._nvars, self._table | other._table)

    def __xor__(self, other: "BooleanFunction") -> "BooleanFunction":
        self._check_same_domain(other)
        return BooleanFunction(self._nvars, self._table ^ other._table)

    def __invert__(self) -> "BooleanFunction":
        full = (1 << (1 << self._nvars)) - 1
        return BooleanFunction(self._nvars, self._table ^ full)

    def implies(self, other: "BooleanFunction") -> bool:
        """Whether ``phi <= phi'`` pointwise (every model of self models other)."""
        self._check_same_domain(other)
        return self._table & ~other._table == 0

    def is_disjoint(self, other: "BooleanFunction") -> bool:
        """Whether ``phi ∧ phi' = ⊥`` (disjointness, used for determinism)."""
        self._check_same_domain(other)
        return self._table & other._table == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self._nvars == other._nvars and self._table == other._table

    def __hash__(self) -> int:
        return hash((self._nvars, self._table))

    # ------------------------------------------------------------------
    # Structural notions from the paper
    # ------------------------------------------------------------------

    def depends_on(self, var: int) -> bool:
        """Definition 2.1: whether some valuation flips the value when the
        membership of ``var`` is flipped."""
        if not 0 <= var < self._nvars:
            raise ValueError(f"variable {var} out of range")
        positive, negative = self.cofactors(var)
        return positive != negative

    def dependency_set(self) -> frozenset[int]:
        """``DEP(phi)``: the set of variables the function depends on."""
        return self._cached(
            "dependency_set",
            lambda: frozenset(
                v for v in range(self._nvars) if self.depends_on(v)
            ),
        )

    def is_degenerate(self) -> bool:
        """Whether ``DEP(phi)`` is a proper subset of ``V`` (Definition 2.1)."""
        return len(self.dependency_set()) < self._nvars

    def is_nondegenerate(self) -> bool:
        """Whether the function depends on every variable of ``V``."""
        return not self.is_degenerate()

    def cofactors(self, var: int) -> tuple["BooleanFunction", "BooleanFunction"]:
        """Shannon cofactors ``(phi[var := True], phi[var := False])``, each
        returned as a function on the *same* variable set (the cofactor no
        longer depends on ``var``)."""
        if not 0 <= var < self._nvars:
            raise ValueError(f"variable {var} out of range")
        positive_table = 0
        negative_table = 0
        bit = 1 << var
        for mask in range(1 << self._nvars):
            if mask & bit:
                continue
            neg_val = self._table >> mask & 1
            pos_val = self._table >> (mask | bit) & 1
            if pos_val:
                positive_table |= (1 << mask) | (1 << (mask | bit))
            if neg_val:
                negative_table |= (1 << mask) | (1 << (mask | bit))
        return (
            BooleanFunction(self._nvars, positive_table),
            BooleanFunction(self._nvars, negative_table),
        )

    def restrict(self, assignment: dict[int, bool]) -> "BooleanFunction":
        """Fix some variables to constants; the result stays on ``nvars``
        variables but no longer depends on the fixed ones."""
        current = self
        for var, value in assignment.items():
            positive, negative = current.cofactors(var)
            current = positive if value else negative
        return current

    def is_monotone(self) -> bool:
        """Whether ``nu ⊆ nu'`` implies ``phi(nu) <= phi(nu')``.

        Checked edge-wise on the hypercube: adding any single variable to a
        satisfying valuation must keep it satisfying.
        """
        return self._cached(
            "is_monotone",
            lambda: all(
                negative.implies(positive)
                for positive, negative in map(
                    self.cofactors, range(self._nvars)
                )
            ),
        )

    def euler_characteristic(self) -> int:
        """Definition 2.2: ``e(phi) = sum over nu |= phi of (-1)^|nu|``.

        Computed as ``#even-models - #odd-models`` with two popcounts against
        a precomputed parity table.
        """
        def compute() -> int:
            even_mask = _val.even_parity_table(self._nvars)
            even_models = (self._table & even_mask).bit_count()
            odd_models = (self._table & ~even_mask).bit_count()
            return even_models - odd_models

        return self._cached("euler_characteristic", compute)

    # ------------------------------------------------------------------
    # Monotone normal forms (Section 2)
    # ------------------------------------------------------------------

    def up_closure(self) -> "BooleanFunction":
        """Smallest monotone function above this one (close ``SAT`` upward)."""
        table = self._table
        for var in range(self._nvars):
            bit = 1 << var
            shifted = 0
            for mask in range(1 << self._nvars):
                if table >> mask & 1:
                    shifted |= 1 << (mask | bit)
            table |= shifted
        return BooleanFunction(self._nvars, table)

    def minimal_models(self) -> list[frozenset[int]]:
        """Inclusion-minimal satisfying valuations.

        For a monotone function these are exactly the clauses of the unique
        minimized DNF ``phi_DNF`` (its prime implicants).
        """
        models = list(self.satisfying_masks())
        minimal: list[int] = []
        for mask in sorted(models, key=_val.popcount):
            if not any(sub & mask == sub for sub in minimal):
                minimal.append(mask)
        return [_val.mask_to_set(mask) for mask in minimal]

    def minimized_dnf(self) -> list[frozenset[int]]:
        """The unique minimized (positive) DNF of a monotone function, as a
        list of clauses, each a frozenset of variables.

        :raises ValueError: if the function is not monotone.
        """
        if not self.is_monotone():
            raise ValueError("minimized DNF is only defined for monotone functions")
        return list(
            self._cached("minimized_dnf", lambda: tuple(self.minimal_models()))
        )

    def minimized_cnf(self) -> list[frozenset[int]]:
        """The unique minimized (positive) CNF of a monotone function.

        The prime implicates of a monotone function are the inclusion-minimal
        transversals (hitting sets) of its prime implicants; with at most
        ``2^nvars`` candidate clauses we compute them by direct enumeration.

        :raises ValueError: if the function is not monotone.
        """
        if not self.is_monotone():
            raise ValueError("minimized CNF is only defined for monotone functions")
        if self.is_top():
            return []
        if self.is_bottom():
            return [frozenset()]
        implicant_masks = [_val.set_to_mask(c) for c in self.minimal_models()]
        transversals: list[int] = []
        candidates = sorted(range(1 << self._nvars), key=_val.popcount)
        for candidate in candidates:
            if all(candidate & imp for imp in implicant_masks):
                if not any(t & candidate == t for t in transversals):
                    transversals.append(candidate)
        return [_val.mask_to_set(t) for t in transversals]

    # ------------------------------------------------------------------
    # Variable renaming / symmetry
    # ------------------------------------------------------------------

    def permute(self, permutation: Sequence[int]) -> "BooleanFunction":
        """Apply a permutation of the variables: variable ``i`` of the result
        plays the role of variable ``permutation[i]`` of the original."""
        if sorted(permutation) != list(range(self._nvars)):
            raise ValueError(f"{permutation!r} is not a permutation of the variables")
        table = 0
        for mask in range(1 << self._nvars):
            image = 0
            for new_var, old_var in enumerate(permutation):
                if mask >> old_var & 1:
                    image |= 1 << new_var
            if self._table >> mask & 1:
                table |= 1 << image
        return BooleanFunction(self._nvars, table)

    def canonical_form_under_permutation(self) -> int:
        """Smallest truth table among all variable permutations of the
        function: a canonical representative of its isomorphism class.

        Exponential in ``nvars`` (it tries all permutations); meant for the
        small, fixed query arities of the paper.
        """
        best = None
        for perm in itertools.permutations(range(self._nvars)):
            candidate = self.permute(perm)._table
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        shown = [
            "{" + ",".join(map(str, sorted(s))) + "}"
            for s in itertools.islice(self.satisfying_sets(), 6)
        ]
        suffix = ", ..." if self.sat_count() > 6 else ""
        return (
            f"BooleanFunction(nvars={self._nvars}, "
            f"sat=[{', '.join(shown)}{suffix}])"
        )

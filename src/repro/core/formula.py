"""A tiny Boolean-expression front end for :class:`BooleanFunction`.

The paper writes its functions as formulas over the variables ``0..k``
(e.g. ``phi_9 = (2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2)``); this module parses
that surface syntax so examples, tests and interactive use can construct
functions the way the paper prints them.

Grammar (standard precedence ``! > & > ^ > |``, parentheses free)::

    expr   := xor ('|' xor)*
    xor    := term ('^' term)*
    term   := factor ('&' factor)*
    factor := '!' factor | '(' expr ')' | VAR | '0' literal... | 'T' | 'F'

Variables are decimal indices; ``T``/``F`` (or ``1``/``0`` when not a
variable index — to avoid ambiguity the constants must be written as
``T``/``F``) denote the constants.  The unicode connectives ``∨ ∧ ¬ ⊕``
are accepted as aliases.
"""

from __future__ import annotations

from repro.core.boolean_function import BooleanFunction

_ALIASES = {
    "∨": "|",
    "∧": "&",
    "¬": "!",
    "⊕": "^",
    "+": "|",
    "*": "&",
    "~": "!",
}


class FormulaSyntaxError(ValueError):
    """Raised on malformed formula strings."""


class _Parser:
    def __init__(self, text: str, nvars: int):
        normalized = "".join(_ALIASES.get(ch, ch) for ch in text)
        self.tokens = self._tokenize(normalized)
        self.position = 0
        self.nvars = nvars

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        index = 0
        while index < len(text):
            ch = text[index]
            if ch.isspace():
                index += 1
                continue
            if ch in "|&^!()TF":
                tokens.append(ch)
                index += 1
                continue
            if ch.isdigit():
                start = index
                while index < len(text) and text[index].isdigit():
                    index += 1
                tokens.append(text[start:index])
                continue
            raise FormulaSyntaxError(f"unexpected character {ch!r}")
        return tokens

    def _peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise FormulaSyntaxError("unexpected end of formula")
        self.position += 1
        return token

    def parse(self) -> BooleanFunction:
        result = self._expr()
        if self._peek() is not None:
            raise FormulaSyntaxError(
                f"trailing tokens from {self._peek()!r}"
            )
        return result

    def _expr(self) -> BooleanFunction:
        result = self._xor()
        while self._peek() == "|":
            self._take()
            result = result | self._xor()
        return result

    def _xor(self) -> BooleanFunction:
        result = self._term()
        while self._peek() == "^":
            self._take()
            result = result ^ self._term()
        return result

    def _term(self) -> BooleanFunction:
        result = self._factor()
        while self._peek() == "&":
            self._take()
            result = result & self._factor()
        return result

    def _factor(self) -> BooleanFunction:
        token = self._take()
        if token == "!":
            return ~self._factor()
        if token == "(":
            inner = self._expr()
            if self._take() != ")":
                raise FormulaSyntaxError("missing closing parenthesis")
            return inner
        if token == "T":
            return BooleanFunction.top(self.nvars)
        if token == "F":
            return BooleanFunction.bottom(self.nvars)
        if token.isdigit():
            variable = int(token)
            if variable >= self.nvars:
                raise FormulaSyntaxError(
                    f"variable {variable} out of range for nvars={self.nvars}"
                )
            return BooleanFunction.variable(variable, self.nvars)
        raise FormulaSyntaxError(f"unexpected token {token!r}")


def parse(text: str, nvars: int) -> BooleanFunction:
    """Parse a formula over variables ``0..nvars-1``.

    >>> phi = parse("(2|3) & (0|3) & (1|3) & (0|1|2)", 4)
    >>> phi.euler_characteristic()
    0
    """
    return _Parser(text, nvars).parse()


def to_formula(phi: BooleanFunction) -> str:
    """Render a function as a formula string.

    Monotone functions print as their unique minimized DNF; general
    functions as the (possibly long) exact-model DNF with negated
    variables.  ``parse(to_formula(phi), phi.nvars) == phi`` always.
    """
    if phi.is_bottom():
        return "F"
    if phi.is_top():
        return "T"
    if phi.is_monotone():
        clauses = [
            " & ".join(str(v) for v in sorted(clause)) or "T"
            for clause in phi.minimized_dnf()
        ]
        return " | ".join(f"({c})" for c in clauses)
    terms = []
    for model in phi.satisfying_masks():
        literals = []
        for variable in range(phi.nvars):
            if model >> variable & 1:
                literals.append(str(variable))
            else:
                literals.append(f"!{variable}")
        terms.append("(" + " & ".join(literals) + ")")
    return " | ".join(terms)

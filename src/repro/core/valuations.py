"""Utilities for Boolean valuations over the variable set ``V = {0, ..., k}``.

Throughout this package (and the paper), a *valuation* of a variable set
``V`` is simply a subset of ``V``: the variables it contains are the ones set
to ``True``.  Internally we encode a valuation as an ``int`` bitmask where
bit ``i`` is set iff variable ``i`` belongs to the valuation.  This module
collects the small, heavily reused helpers for manipulating such masks:
conversions, popcounts, hypercube adjacency and simple paths in the
hypercube graph ``G_V`` of Definition 5.6.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def set_to_mask(valuation: Iterable[int]) -> int:
    """Encode a valuation given as an iterable of variable indices.

    >>> set_to_mask({0, 2})
    5
    """
    mask = 0
    for var in valuation:
        if var < 0:
            raise ValueError(f"variable indices must be non-negative, got {var}")
        mask |= 1 << var
    return mask


def mask_to_set(mask: int) -> frozenset[int]:
    """Decode a bitmask into the frozenset of variables it contains.

    >>> sorted(mask_to_set(5))
    [0, 2]
    """
    if mask < 0:
        raise ValueError(f"valuation masks must be non-negative, got {mask}")
    return frozenset(i for i in range(mask.bit_length()) if mask >> i & 1)


def as_mask(valuation: int | Iterable[int]) -> int:
    """Coerce either an int mask or an iterable of variables into a mask."""
    if isinstance(valuation, int):
        if valuation < 0:
            raise ValueError(f"valuation masks must be non-negative, got {valuation}")
        return valuation
    return set_to_mask(valuation)


def popcount(mask: int) -> int:
    """Number of variables in the valuation (``|nu|`` in the paper)."""
    return mask.bit_count()


def parity(mask: int) -> int:
    """``(-1)^{|nu|}``: +1 for even-size valuations, -1 for odd-size ones."""
    return -1 if mask.bit_count() & 1 else 1


def flip(mask: int, var: int) -> int:
    """The valuation ``nu^(l)`` of the paper: membership of ``var`` flipped."""
    return mask ^ (1 << var)


def all_valuations(nvars: int) -> Iterator[int]:
    """Iterate over all ``2^nvars`` valuation masks of ``{0..nvars-1}``."""
    return iter(range(1 << nvars))


def valuations_of_size(nvars: int, size: int) -> Iterator[int]:
    """Iterate over all valuations of ``{0..nvars-1}`` with exactly ``size``
    variables, in lexicographic mask order (Gosper's hack)."""
    if size < 0 or size > nvars:
        return
    if size == 0:
        yield 0
        return
    mask = (1 << size) - 1
    limit = 1 << nvars
    while mask < limit:
        yield mask
        # Gosper's hack: next integer with the same popcount.
        lowest = mask & -mask
        ripple = mask + lowest
        mask = ripple | ((mask ^ ripple) >> (lowest.bit_length() + 1))


def neighbors(mask: int, nvars: int) -> Iterator[int]:
    """All valuations adjacent to ``mask`` in the hypercube graph ``G_V``,
    i.e. those differing in the membership of exactly one variable."""
    for var in range(nvars):
        yield mask ^ (1 << var)


def hamming_distance(mask_a: int, mask_b: int) -> int:
    """Number of variables on which the two valuations disagree."""
    return (mask_a ^ mask_b).bit_count()


def hypercube_path(mask_a: int, mask_b: int) -> list[int]:
    """A simple path from ``mask_a`` to ``mask_b`` in the hypercube ``G_V``.

    The path flips the differing variables one at a time in increasing
    variable order, so it has length ``hamming_distance(a, b)`` and visits
    ``hamming_distance(a, b) + 1`` pairwise-distinct valuations.  This is the
    canonical path used by the fetching lemma (Lemma 5.11).
    """
    path = [mask_a]
    current = mask_a
    diff = mask_a ^ mask_b
    var = 0
    while diff:
        if diff & 1:
            current ^= 1 << var
            path.append(current)
        diff >>= 1
        var += 1
    return path


def is_simple_hypercube_path(path: list[int]) -> bool:
    """Check that ``path`` is a simple path of ``G_V``: consecutive masks at
    Hamming distance one, and no repeated valuation."""
    if not path:
        return False
    if len(set(path)) != len(path):
        return False
    return all(
        hamming_distance(path[i], path[i + 1]) == 1 for i in range(len(path) - 1)
    )


def subsets_of(mask: int) -> Iterator[int]:
    """Iterate over all subsets of the valuation ``mask`` (itself included),
    using the standard sub-mask enumeration trick."""
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def even_parity_table(nvars: int) -> int:
    """Truth-table bitmask (see :mod:`repro.core.boolean_function`) whose
    positions are exactly the even-size valuations of ``{0..nvars-1}``.

    Built by the standard doubling recurrence: extending the variable set by
    one variable swaps the parity of the extended half.
    """
    table = 1  # nvars == 0: the empty valuation is even.
    size = 1
    for _ in range(nvars):
        odd = ((1 << size) - 1) ^ table
        table |= odd << size
        size <<= 1
    return table
